"""Legacy setup shim (this environment lacks the ``wheel`` package, so the
PEP 660 editable-install path is unavailable; ``pip install -e .`` uses
``setup.py develop`` instead)."""

from setuptools import setup

setup()
