"""SHARD-1: multi-process scatter-gather vs single-process execution.

The acceptance claim of ``src/repro/shard/`` (see ``docs/sharding.md``):
on the **partitioned-scan** shape — a guarded selection whose per-tuple
cost scans the database-global PREFIX domain — a 4-worker shard pool
beats single-process execution of the same engine by >= 2.5x at the
largest benchmarked size.

Why this shape: the direct engine prices the query at ``N x |prefix
domain(D)|`` candidate checks, and both factors shrink with the
partition — each shard checks its ``~N/4`` tuples against its *own*
partition's prefix domain (sound because the guard roots every
quantified prefix in the locally stored tuple).  Total work drops
roughly quadratically with the shard count, so the pool wins even on a
single core, where the four worker processes time-slice; the measured
speedup is algorithmic, not parallel hardware.

The comparison is controlled: both sides run the **direct** engine (the
coordinator pins ``worker_engine="direct"``), so the ratio isolates the
scatter-gather machinery.  Caches cannot flatter either side — the
reference path gets a fresh ``AutomatonCache`` per run, and the shard
pool is fed a *different* seed-variant database per repeat, so no
worker-side whole-result cache entry is ever reused.

``--write-baseline`` commits the speedup ratios to ``BENCH_shard.json``
via ``benchmarks/_regress.py``; ``--compare`` exits non-zero when any
measured ratio degrades by more than the baseline's threshold (1.3x) —
``make bench-shard`` runs the full gate and ``make test`` the
``--smoke`` subset.
"""

import random
import statistics
import time

import pytest

from repro.core.query import Query, StringDatabase
from repro.engine.cache import AutomatonCache
from repro.engine.explain import execute_plan
from repro.engine.planner import plan_query

from _common import print_table, write_explain_json
import _regress

#: The partitioned-scan query: keep the strings none of whose prefixes
#: end in the rare marker character.  The universal quantifier scans the
#: whole PREFIX domain for every marker-free tuple (most of them), which
#: is what makes single-process cost superlinear in the database.
QUERY = "R(x) & forall prefix y: (!(y <<= x) | !last(y, 'a'))"
ALPHABET = "01a"

SHARDS = 4

#: Seed-variant databases per size; each timing repeat uses a different
#: variant so worker-side caches never serve a repeat.
FULL_VARIANTS = 3
SMOKE_VARIANTS = 1

FULL_SIZES = [150, 250, 400]
#: Subset of FULL_SIZES, so the committed baseline gates smoke runs too.
SMOKE_SIZES = [150]

#: Acceptance bar at the largest full-sweep size.
FULL_SPEEDUP = 2.5


def make_db(n: int, seed: int) -> StringDatabase:
    """``n`` distinct strings, ~8% carrying the rare ``'a'`` marker.

    Lengths 8-24 keep the per-shard prefix closures nearly disjoint, so
    partitioning genuinely shrinks each worker's quantifier domain.
    """
    rng = random.Random(seed)
    rows = set()
    while len(rows) < n:
        s = "".join(rng.choice("01") for _ in range(rng.randint(8, 24)))
        if rng.random() < 0.08:
            i = rng.randrange(len(s) + 1)
            s = s[:i] + "a" + s[i:]
        rows.add(s)
    return StringDatabase(ALPHABET, {"R": rows})


def run_sweep(sizes, variants: int) -> list[dict]:
    """Measure reference vs sharded on every size; one pool for the sweep."""
    from repro.shard import ShardCoordinator

    rows = []
    with ShardCoordinator(shards=SHARDS, worker_engine="direct") as coordinator:
        for n in sizes:
            dbs = [make_db(n, 1000 * n + v) for v in range(variants)]
            for v, db in enumerate(dbs):
                coordinator.register_database(f"scan{n}v{v}", db)
            ref_times, shard_times, agree, out_rows = [], [], True, 0
            for db in dbs:
                query = Query(QUERY, alphabet=db.alphabet)
                ref_plan = plan_query(
                    query.formula, query.structure, db.db, force="direct"
                )
                t0 = time.perf_counter()
                reference = execute_plan(ref_plan, db.db, cache=AutomatonCache())
                ref_times.append(time.perf_counter() - t0)
                shard_plan = plan_query(
                    query.formula, query.structure, db.db, force="sharded"
                )
                t0 = time.perf_counter()
                sharded = execute_plan(shard_plan, db.db, cache=AutomatonCache())
                shard_times.append(time.perf_counter() - t0)
                agree = agree and sharded.as_set() == reference.as_set()
                out_rows = len(reference.as_set())
            reference_s = statistics.median(ref_times)
            optimized_s = statistics.median(shard_times)
            rows.append({
                "shape": "partitioned_scan",
                "n": n,
                "reference_s": reference_s,
                "optimized_s": optimized_s,
                "speedup": reference_s / optimized_s,
                "agree": agree,
                "rows": out_rows,
            })
    return rows


def entries_of(rows: list[dict]) -> dict[str, dict]:
    """Regression-gate entries (see ``benchmarks/_regress.py``)."""
    return {
        f"{r['shape']}/n={r['n']}": {
            "speedup": round(r["speedup"], 3),
            "reference_s": round(r["reference_s"], 6),
            "optimized_s": round(r["optimized_s"], 6),
        }
        for r in rows
    }


def conservative_entries(sweeps: list[list[dict]]) -> dict[str, dict]:
    """Per-key minimum speedup across several sweeps, so normal jitter
    sits inside the gate's 1.3x threshold instead of tripping it."""
    merged: dict[str, dict] = {}
    for sweep in sweeps:
        for key, entry in entries_of(sweep).items():
            kept = merged.get(key)
            if kept is None or entry["speedup"] < kept["speedup"]:
                merged[key] = entry
    return merged


def _print_rows(rows: list[dict]) -> None:
    print_table(
        f"Scatter-gather ({SHARDS} shard workers) vs single-process direct",
        ["shape", "n", "single s", "sharded s", "speedup", "agree", "rows"],
        [
            (
                r["shape"],
                r["n"],
                f"{r['reference_s']:.4f}",
                f"{r['optimized_s']:.4f}",
                f"{r['speedup']:.2f}x",
                r["agree"],
                r["rows"],
            )
            for r in rows
        ],
    )


# ------------------------------------------------------------------- pytest


@pytest.mark.slow
def test_shard_speedup_sweep(benchmark):
    """The acceptance sweep: agreement everywhere, >= 2.5x at the top."""
    rows = benchmark.pedantic(
        lambda: run_sweep(FULL_SIZES, FULL_VARIANTS), rounds=1, iterations=1
    )
    _print_rows(rows)
    assert all(r["agree"] for r in rows)
    assert rows[-1]["speedup"] >= FULL_SPEEDUP


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="minimal sizes")
    parser.add_argument("--explain-json", metavar="PATH", default=None)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the full sweep and (re)write BENCH_shard.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate the measured speedups against BENCH_shard.json",
    )
    args = parser.parse_args(argv)

    smoke = args.smoke and not args.write_baseline
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    variants = SMOKE_VARIANTS if smoke else FULL_VARIANTS
    rows = run_sweep(sizes, variants)
    _print_rows(rows)
    entries = entries_of(rows)
    write_explain_json(args.explain_json, {"rows": rows, "entries": entries})

    if not all(r["agree"] for r in rows):
        print("FAIL: sharded and single-process answers disagree")
        return 1
    if not smoke and rows[-1]["speedup"] < FULL_SPEEDUP:
        print(
            f"FAIL: partitioned-scan speedup {rows[-1]['speedup']:.2f}x "
            f"< required {FULL_SPEEDUP:g}x at n={rows[-1]['n']} "
            f"with {SHARDS} workers"
        )
        return 1
    if args.write_baseline:
        extra = [run_sweep(sizes, variants) for _ in range(2)]
        _regress.write_baseline(
            _regress.baseline_path("shard"),
            "shard",
            conservative_entries([rows, *extra]),
        )
        return 0
    if args.compare:
        return _regress.gate("shard", entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
