"""SRV-1: the asyncio front end — concurrent-client latency and throughput.

The serving claim of ``docs/service.md``: the asyncio TCP front end
multiplexes many concurrent client connections onto a small bounded
worker pool — at moderate concurrency, closed-loop throughput *rises*
with the client count (in-flight requests pipeline the submit/wake
handshake and the socket round-trip), and at a 512-connection storm
(one request per fresh connection) it stays within a constant factor of
the single-client loop instead of collapsing.  This
benchmark measures it: ``N`` concurrent :class:`AsyncServiceClient`
connections each run a closed loop (send one request, await the reply,
send the next) over a mixed workload against one in-process
:class:`AsyncTCPQueryServer`, for ``N`` in ``1, 64`` (smoke) or
``1, 64, 512`` (full), reporting req/s and p50/p95/p99 latency.

The workload mixes the core query shapes with SQL-pattern shapes from
Section 4 of the paper — ``matches()`` atoms compiled by
:func:`repro.sql.similar_to_regex_text` (SIMILAR TO, full regular) and
:func:`repro.sql.like_to_regex_text` with an ``ESCAPE`` character
(star-free), run under ``S_reg``.  Before timing, every workload query
is run both plain and streamed (``row_batch``/``done`` frames) and the
answers are asserted identical — the correctness half of the streaming
claim.

``--write-baseline`` commits per-level speedup ratios
(``throughput(N) / throughput(1)``, measured in the same run on the same
machine) to ``BENCH_service.json`` via ``benchmarks/_regress.py``;
``--compare`` exits non-zero when any measured ratio degrades by more
than the baseline's threshold (1.3x).  ``make bench-service`` runs the
full gate and ``make test`` the ``--smoke`` subset.

Standalone::

    python benchmarks/bench_service.py [--smoke] [--compare]
        [--write-baseline] [--explain-json PATH]
"""

import asyncio
import threading
import time

import pytest

from repro.core import StringDatabase
from repro.engine import AutomatonCache
from repro.engine.metrics import METRICS
from repro.service import (
    AsyncServiceClient,
    AsyncTCPQueryServer,
    QueryService,
    ServiceConfig,
)
from repro.sql import like_to_regex_text, similar_to_regex_text

from _common import print_table, write_explain_json
import _regress

#: Core workload shapes (structure ``S``): joins, negation, quantified
#: prefix tests — the mix the service bench has always used.
CORE_QUERIES = [
    ("R(x) & last(x, '0')", "S"),
    ("R(x) & last(x, '1')", "S"),
    ("R(x) & !S(x)", "S"),
    ("S(y) | R(y)", "S"),
    ("R(x) & exists adom y: S(y) & y <<= x", "S"),
    ("S(y) & exists adom x: R(x) & y <<= x", "S"),
    ("exists x: R(x) & last(x, '0')", "S"),
    ("R(x) & S(y) & y <<= x", "S"),
]

#: SQL-pattern shapes (Section 4): SIMILAR TO reaches all regular
#: languages, LIKE with ESCAPE stays star-free.  Both become
#: ``matches()`` atoms under ``S_reg``.
PATTERN_QUERIES = [
    (f"R(x) & matches(x, '{similar_to_regex_text('(00)*')}')", "S_reg"),
    (f"R(x) & matches(x, '{similar_to_regex_text('0%(11)*')}')", "S_reg"),
    (f"R(x) & matches(x, '{like_to_regex_text('0%!1', '!')}')", "S_reg"),
    (f"S(y) & matches(y, '{like_to_regex_text('0%', None)}')", "S_reg"),
]

WORKLOAD = CORE_QUERIES + PATTERN_QUERIES

POOL_WORKERS = 8
MAX_PENDING = 256

FULL_LEVELS = [1, 64, 512]
SMOKE_LEVELS = [1, 64]

#: Closed-loop requests per level (split across the clients), sized so
#: the single-client level still makes a few hundred round-trips.  High
#: levels get at least MIN_PER_CLIENT requests per connection so the
#: measurement is steady-state multiplexing, not just connection setup.
FULL_TOTAL = 512
SMOKE_TOTAL = 96
MIN_PER_CLIENT = 4

STREAM_PAGE = 3  # small on purpose: several row_batch frames per answer


def make_db() -> StringDatabase:
    return StringDatabase(
        "01",
        {
            "R": {"0110", "001", "11", "0101", "1001", "00110",
                  "0000", "0011", "101", "1100"},
            "S": {"0", "01", "1", "00"},
        },
    )


def start_server():
    """An :class:`AsyncTCPQueryServer` on an ephemeral port, in a thread.

    Returns ``(server, thread, port)``; stop with :func:`stop_server`.
    """
    service = QueryService(ServiceConfig(
        workers=POOL_WORKERS,
        max_pending=MAX_PENDING,
        backpressure="block",
        cache=AutomatonCache(maxsize=512),
    ))
    service.register_database("main", make_db())
    server = AsyncTCPQueryServer(("127.0.0.1", 0), service)
    thread = threading.Thread(
        target=server.serve_forever, name="bench-service-loop", daemon=True
    )
    thread.start()
    return server, thread, server.server_address[1]


def stop_server(server, thread) -> None:
    server.shutdown()
    thread.join(timeout=10)
    server.close_service()


# --------------------------------------------------------------- the driver


async def _client_loop(port, queries, latencies, failures):
    """One closed-loop client: send, await, repeat over its share."""
    client = await AsyncServiceClient.connect(
        "127.0.0.1", port, timeout=30.0, read_timeout=120.0
    )
    try:
        for src, structure in queries:
            t0 = time.perf_counter()
            response = await client.run(src, "main", structure=structure)
            latencies.append(time.perf_counter() - t0)
            if not response.get("ok"):
                failures.append(response.get("error"))
    finally:
        await client.close()


async def _drive(port, clients, total):
    """``total`` requests split round-robin across ``clients`` loops."""
    shares = [[] for _ in range(clients)]
    for i in range(total):
        shares[i % clients].append(WORKLOAD[i % len(WORKLOAD)])
    latencies: list[float] = []
    failures: list[dict] = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _client_loop(port, share, latencies, failures)
        for share in shares if share
    ))
    return time.perf_counter() - t0, latencies, failures


async def _check_stream_agreement(port):
    """Every workload query: streamed rows == plain rows (order aside)."""
    client = await AsyncServiceClient.connect("127.0.0.1", port)
    try:
        for src, structure in WORKLOAD:
            plain = await client.run(src, "main", structure=structure)
            assert plain.get("ok"), (src, plain.get("error"))
            streamed: list = []
            batches = 0
            async for frame in client.run_stream(
                src, "main", page_size=STREAM_PAGE, structure=structure
            ):
                if frame.get("frame") == "row_batch":
                    streamed.extend(frame["rows"])
                    batches += 1
                else:
                    assert frame.get("ok"), (src, frame.get("error"))
                    assert frame["row_count"] == len(streamed)
                    assert frame["batches"] == batches
            expected = sorted(map(tuple, plain["rows"]))
            got = sorted(map(tuple, streamed))
            assert got == expected, f"streamed rows diverged for {src!r}"
    finally:
        await client.close()


def percentile(values, pct):
    ordered = sorted(values)
    index = round(pct / 100 * (len(ordered) - 1))
    return ordered[index]


def run_levels(levels, total) -> list[dict]:
    """Measure every concurrency level against one warm server."""
    server, thread, port = start_server()
    try:
        # Warm-up: caches (plans, automata) fill, and the streamed-vs-
        # plain agreement check doubles as the correctness pass.
        asyncio.run(_check_stream_agreement(port))
        rows = []
        for clients in levels:
            elapsed, latencies, failures = asyncio.run(
                _drive(port, clients, max(total, clients * MIN_PER_CLIENT))
            )
            assert not failures, f"clients={clients}: {failures[:3]}"
            rows.append({
                "clients": clients,
                "requests": len(latencies),
                "elapsed_s": elapsed,
                "req_per_s": len(latencies) / elapsed,
                "p50_ms": percentile(latencies, 50) * 1000,
                "p95_ms": percentile(latencies, 95) * 1000,
                "p99_ms": percentile(latencies, 99) * 1000,
            })
        return rows
    finally:
        stop_server(server, thread)


def entries_of(rows: list[dict]) -> dict[str, dict]:
    """Regression-gate entries: throughput at N clients vs 1 client."""
    base = rows[0]["req_per_s"]
    return {
        f"clients={r['clients']}": {
            "speedup": round(r["req_per_s"] / base, 3),
            "req_per_s": round(r["req_per_s"], 1),
            "p50_ms": round(r["p50_ms"], 3),
            "p99_ms": round(r["p99_ms"], 3),
        }
        for r in rows
        if r["clients"] > 1
    }


def conservative_entries(sweeps: list[list[dict]]) -> dict[str, dict]:
    """Per-key minimum speedup across several sweeps, so normal jitter
    sits inside the gate's 1.3x threshold instead of tripping it."""
    merged: dict[str, dict] = {}
    for sweep in sweeps:
        for key, entry in entries_of(sweep).items():
            kept = merged.get(key)
            if kept is None or entry["speedup"] < kept["speedup"]:
                merged[key] = entry
    return merged


def _print_rows(rows: list[dict]) -> None:
    print_table(
        f"asyncio front end — closed-loop clients vs one "
        f"{POOL_WORKERS}-worker pool",
        ["clients", "requests", "req/s", "p50 ms", "p95 ms", "p99 ms"],
        [
            (
                r["clients"],
                r["requests"],
                f"{r['req_per_s']:.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p95_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
            )
            for r in rows
        ],
    )


# ------------------------------------------------------------------- pytest


@pytest.mark.slow
def test_service_concurrent_clients(benchmark):
    """Smoke sweep: answers agree streamed-vs-plain, no failed requests,
    and concurrency does not lose to the single-client loop."""
    rows = benchmark.pedantic(
        lambda: run_levels(SMOKE_LEVELS, SMOKE_TOTAL), rounds=1, iterations=1
    )
    _print_rows(rows)
    assert rows[-1]["req_per_s"] > 0.5 * rows[0]["req_per_s"]


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="levels 1 and 64 only, fewer requests")
    parser.add_argument("--explain-json", metavar="PATH", default=None)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the full sweep and (re)write BENCH_service.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate the measured speedups against BENCH_service.json",
    )
    args = parser.parse_args(argv)

    smoke = args.smoke and not args.write_baseline
    levels = SMOKE_LEVELS if smoke else FULL_LEVELS
    total = SMOKE_TOTAL if smoke else FULL_TOTAL
    METRICS.reset()

    rows = run_levels(levels, total)
    _print_rows(rows)
    entries = entries_of(rows)
    base = rows[0]["req_per_s"]
    for r in rows[1:]:
        print(f"clients={r['clients']}: {r['req_per_s'] / base:.2f}x "
              f"the single-client throughput")
    print(f"(streamed and plain answers identical across "
          f"{len(WORKLOAD)} workload queries)")

    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_service",
            "workload": [src for src, _ in WORKLOAD],
            "levels": levels,
            "total_requests": total,
            "results": rows,
            "entries": entries,
            "metrics": METRICS.snapshot(),
        },
    )

    if args.write_baseline:
        extra = [run_levels(levels, total) for _ in range(2)]
        _regress.write_baseline(
            _regress.baseline_path("service"),
            "service",
            conservative_entries([rows, *extra]),
        )
        return 0
    if args.compare:
        return _regress.gate("service", entries)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
