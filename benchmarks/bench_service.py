"""SRV-1: the concurrent query service — batched pool vs serial round-trips.

The serving claim of ``docs/service.md``: with queries cached (plans in
the prepared registry, automata in the shared
:class:`~repro.engine.cache.AutomatonCache`), per-request *submit/wake
handshakes* dominate, and an 8-worker pool fed a whole batch at once
(:meth:`~repro.service.service.QueryService.execute_batch`) pays that
handshake once per batch instead of once per request.  This benchmark
measures it: the same mixed workload through

* **serial** — one worker, one submit-and-wait round-trip per request
  (the unpipelined client pattern), and
* **batched** — eight workers sharing the same automaton cache, the
  whole batch submitted before any wait,

asserts the answers are identical request-for-request, and reports
throughput and latency percentiles.  (On the single-core CI box the win
is pipelining, not parallel CPU: the GIL serializes engine work, so the
speedup band is modest — the assertion is ``batched > serial``, with the
answer-equality check carrying the correctness half of the claim.)

Standalone::

    python benchmarks/bench_service.py [--smoke] [--explain-json PATH]
"""

import statistics
import time

import pytest

from repro.core import Query, StringDatabase
from repro.engine import AutomatonCache
from repro.engine.metrics import METRICS
from repro.service import QueryService, RunRequest, ServiceConfig

from _common import print_table, standalone_args, write_explain_json

QUERIES = [
    "R(x) & last(x, '0')",
    "R(x) & last(x, '1')",
    "R(x) & !S(x)",
    "S(y) | R(y)",
    "R(x) & exists adom y: S(y) & y <<= x",
    "S(y) & exists adom x: R(x) & y <<= x",
    "exists x: R(x) & last(x, '0')",
    "R(x) & S(y) & y <<= x",
]

POOL_WORKERS = 8


def make_db():
    return StringDatabase(
        "01",
        {
            "R": {"0110", "001", "11", "0101", "1001", "00110"},
            "S": {"0", "01", "1"},
        },
    )


def make_requests(copies: int) -> list:
    return [
        RunRequest(query=src, database="main")
        for _ in range(copies)
        for src in QUERIES
    ]


def make_service(workers: int, cache: AutomatonCache, depth: int) -> QueryService:
    svc = QueryService(
        ServiceConfig(workers=workers, max_pending=depth, cache=cache)
    )
    svc.register_database("main", make_db())
    return svc


def run_serial(svc, requests):
    """One submit-and-wait round-trip per request."""
    latencies = []
    responses = []
    t0 = time.perf_counter()
    for request in requests:
        s = time.perf_counter()
        responses.append(svc.execute(request))
        latencies.append(time.perf_counter() - s)
    return time.perf_counter() - t0, responses, latencies

def run_batched(svc, requests):
    """Submit the whole batch, then collect; per-request latency is the
    service-reported queue wait + execution time."""
    t0 = time.perf_counter()
    responses = svc.execute_batch(requests)
    elapsed = time.perf_counter() - t0
    latencies = [r.queue_seconds + r.exec_seconds for r in responses]
    return elapsed, responses, latencies


def percentile(values, pct):
    ordered = sorted(values)
    index = round(pct / 100 * (len(ordered) - 1))
    return ordered[index]


def check_answers(responses, expected, mode):
    assert all(r.ok for r in responses), (
        f"{mode}: request failed: "
        f"{[r.error.to_dict() for r in responses if not r.ok][:3]}"
    )
    got = [r.rows for r in responses]
    assert got == expected, f"{mode}: answers diverged from serial ground truth"


def latency_row(mode, workers, n, seconds, latencies):
    return {
        "mode": mode,
        "workers": workers,
        "requests": n,
        "median_s": seconds,
        "req_per_s": n / seconds,
        "p50_ms": percentile(latencies, 50) * 1000,
        "p95_ms": percentile(latencies, 95) * 1000,
        "p99_ms": percentile(latencies, 99) * 1000,
    }


# --------------------------------------------------------- pytest-benchmark


@pytest.fixture
def warm_services():
    cache = AutomatonCache(maxsize=512)
    requests = make_requests(2)
    depth = len(requests) + POOL_WORKERS
    serial = make_service(1, cache, depth)
    pool = make_service(POOL_WORKERS, cache, depth)
    run_serial(serial, requests)
    run_batched(pool, requests)
    yield serial, pool, requests
    serial.close()
    pool.close()


def test_service_serial_roundtrips(benchmark, warm_services):
    serial, _, requests = warm_services
    benchmark(lambda: run_serial(serial, requests))


def test_service_batched_pool(benchmark, warm_services):
    _, pool, requests = warm_services
    benchmark(lambda: run_batched(pool, requests))


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    args = standalone_args(
        "Concurrent query service: batched 8-worker pool vs serial "
        "round-trips on one shared automaton cache",
        argv,
    )
    copies = 2 if args.smoke else 4
    rounds = 3 if args.smoke else 5
    requests = make_requests(copies)
    depth = len(requests) + POOL_WORKERS

    cache = AutomatonCache(maxsize=512)
    serial_svc = make_service(1, cache, depth)
    pool_svc = make_service(POOL_WORKERS, cache, depth)
    METRICS.reset()

    # Serial ground truth straight from the library, and a warm-up pass
    # through each service so plans and automata are cached for both.
    db = make_db()
    truth = {
        src: [list(t) for t in Query(src).run(db).rows()] for src in QUERIES
    }
    expected = [truth[r.query] for r in requests]
    run_serial(serial_svc, requests)
    run_batched(pool_svc, requests)

    serial_times, batched_times = [], []
    serial_lat, batched_lat = [], []
    for _ in range(rounds):
        elapsed, responses, lat = run_serial(serial_svc, requests)
        check_answers(responses, expected, "serial")
        serial_times.append(elapsed)
        serial_lat.extend(lat)

        elapsed, responses, lat = run_batched(pool_svc, requests)
        check_answers(responses, expected, "batched")
        batched_times.append(elapsed)
        batched_lat.extend(lat)

    n = len(requests)
    rows = [
        latency_row("serial", 1, n, statistics.median(serial_times), serial_lat),
        latency_row("batched", POOL_WORKERS, n,
                    statistics.median(batched_times), batched_lat),
    ]
    speedup = rows[1]["req_per_s"] / rows[0]["req_per_s"]

    print_table(
        f"Service throughput — {n} mixed requests x {rounds} rounds, "
        "shared automaton cache",
        ["mode", "workers", "req/s", "p50 ms", "p95 ms", "p99 ms"],
        [
            (
                r["mode"],
                r["workers"],
                f"{r['req_per_s']:.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p95_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
            )
            for r in rows
        ],
    )
    print(f"\nbatched/serial speedup: {speedup:.2f}x "
          f"(answers identical across {rounds * 2 * n} requests)")

    cache_stats = cache.stats()
    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_service",
            "queries": QUERIES,
            "rounds": rounds,
            "requests_per_round": n,
            "results": rows,
            "speedup": speedup,
            "cache": cache_stats,
            "metrics": METRICS.snapshot(),
        },
    )

    serial_svc.close()
    pool_svc.close()

    assert speedup > 1.0, (
        f"batched pool did not beat serial round-trips ({speedup:.2f}x)"
    )
    assert cache_stats["hits"] > 0, "shared automaton cache saw no reuse"
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
