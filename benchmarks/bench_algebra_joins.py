"""ALG-1: set-at-a-time algebra executor vs naive ``Select(Product)``.

The acceptance claim of the algebra engine (``docs/algebra_engine.md``):
on a 2-relation equi-join workload the fused hash join beats the naive
``Product`` + tuple-at-a-time ``Select`` plan by >= 10x at the largest
benchmarked database size, and EXPLAIN for the same query shows a
``HashJoin`` node instead of ``Select(Product(...))``.

The standalone entry point emits JSON (``--explain-json``) with per-size
rows/sec for both paths and the peak intermediate relation size, feeding
the BENCH trajectory; ``make bench-algebra-smoke`` runs the minimal
sweep and asserts the fused plan wins at all.
"""

import pytest

from repro.database import random_database
from repro.algebra.compile import compile_query
from repro.algebra.exec import AlgebraExecutor
from repro.algebra.optimize import optimize, optimize_for_execution
from repro.logic import parse_formula
from repro.logic.transform import flatten_terms
from repro.strings import BINARY
from repro.structures.catalog import S as S_factory

from _common import measure, print_table, standalone_args, write_explain_json

QUERY = "R(x,y) & S(y,z)"
SIZES = [50, 100, 200, 400]
#: Acceptance bar at the largest size (the smoke sweep only asserts > 1x:
#: sub-millisecond naive runs make the ratio noisy at tiny sizes).
FULL_SPEEDUP = 10.0


def _db(n: int):
    return random_database(BINARY, {"R": 2, "S": 2}, n, max_len=4, seed=11)


def _plans(db):
    """(naive Select-over-Product plan, fused hash-join plan, columns)."""
    structure = S_factory(BINARY)
    formula = flatten_terms(parse_formula(QUERY))
    compiled = compile_query(formula, structure, db.schema)
    return (
        optimize(compiled.plan),
        optimize_for_execution(compiled.plan),
        compiled.columns,
        structure,
    )


@pytest.mark.parametrize("n", SIZES[:3])
def test_alg_naive_product_select(benchmark, n):
    db = _db(n)
    naive, _fused, _cols, structure = _plans(db)
    benchmark(lambda: naive.evaluate(db, structure))


@pytest.mark.parametrize("n", SIZES)
def test_alg_fused_hash_join(benchmark, n):
    db = _db(n)
    _naive, fused, _cols, structure = _plans(db)
    benchmark(lambda: AlgebraExecutor(structure, db).run(fused))


def test_alg_join_speedup(benchmark):
    """The acceptance sweep: agreement at every size, >= 10x at the top."""
    rows = benchmark.pedantic(
        lambda: run_sweep(SIZES), rounds=1, iterations=1
    )
    print_table(
        "Equi-join: naive Select(Product) vs fused hash join",
        ["n", "out rows", "naive s", "fused s", "speedup", "peak rows"],
        [
            (
                r["n"],
                r["rows"],
                f"{r['naive_s']:.4f}",
                f"{r['fused_s']:.4f}",
                f"{r['speedup']:.1f}x",
                r["peak_intermediate"],
            )
            for r in rows
        ],
    )
    assert all(r["agree"] for r in rows)
    assert rows[-1]["speedup"] >= FULL_SPEEDUP


def run_sweep(sizes) -> list[dict]:
    """Measure both paths at each size; shared by pytest and standalone."""
    out = []
    for n in sizes:
        db = _db(n)
        naive, fused, _cols, structure = _plans(db)
        naive_rows = [None]
        fused_rows = [None]
        naive_s = measure(lambda: naive_rows.__setitem__(
            0, naive.evaluate(db, structure)), repeats=1)

        def fused_run():
            executor = AlgebraExecutor(structure, db)  # no memo carry-over
            fused_rows[0] = executor.run(fused)

        fused_s = measure(fused_run, repeats=1)
        result, stats = fused_rows[0]
        in_rows = len(db.relation("R")) + len(db.relation("S"))
        out.append(
            {
                "n": n,
                "rows": len(result),
                "agree": naive_rows[0] == result,
                "naive_s": naive_s,
                "fused_s": fused_s,
                "speedup": naive_s / max(fused_s, 1e-9),
                "naive_rows_per_s": in_rows / max(naive_s, 1e-9),
                "fused_rows_per_s": in_rows / max(fused_s, 1e-9),
                # The fused peak is the largest materialized relation; the
                # naive plan conceptually visits every Product pair.
                "peak_intermediate": stats.total_rows(),
                "naive_pairs_checked": len(db.relation("R"))
                * len(db.relation("S")),
            }
        )
    return out


# --------------------------------------------------------- standalone entry


def main(argv=None) -> int:
    from repro import Query
    from repro.engine import METRICS, global_cache

    args = standalone_args(
        "Algebra engine: fused hash joins vs naive Product+Select", argv
    )
    sizes = SIZES[:2] if args.smoke else SIZES
    METRICS.reset()
    global_cache().reset()
    rows = run_sweep(sizes)
    print_table(
        "Equi-join: naive Select(Product) vs fused hash join",
        ["n", "out rows", "naive s", "fused s", "speedup", "peak rows"],
        [
            (
                r["n"],
                r["rows"],
                f"{r['naive_s']:.4f}",
                f"{r['fused_s']:.4f}",
                f"{r['speedup']:.1f}x",
                r["peak_intermediate"],
            )
            for r in rows
        ],
    )
    assert all(r["agree"] for r in rows), "fused plan changed the answer"
    floor = 1.0 if args.smoke else FULL_SPEEDUP
    top = rows[-1]["speedup"]
    assert top >= floor, f"speedup {top:.1f}x below the {floor:.0f}x bar"

    # The acceptance EXPLAIN: the planner picks the algebra engine on the
    # largest database and its physical tree contains a HashJoin node.
    db = _db(sizes[-1])
    report = Query(QUERY, structure="S").explain(db)
    tree = report.to_dict()["tree"]

    def kinds(node):
        yield node["kind"]
        for child in node["children"]:
            yield from kinds(child)

    explain_kinds = sorted(set(kinds(tree)))
    print(f"planner chose: {report.plan.engine}; "
          f"EXPLAIN node kinds: {explain_kinds}")
    assert report.plan.engine == "algebra"
    assert "HashJoin" in explain_kinds

    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_algebra_joins",
            "query": QUERY,
            "rows": rows,
            "explain": report.to_dict(),
            "metrics": METRICS.snapshot(),
        },
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
