"""THM-7 / THM-8 / COR-8-9: the intermediate calculi's safety toolkit.

* Theorem 7: constructive range restriction for RC(S_left) and RC(S_reg);
* Theorem 8: safe RC(S_left) = RA(S_left), safe RC(S_reg) = RA(S_reg);
* Corollary 8: state-safety and CQ safety decidable;
* Corollary 9: effective syntax.

One representative execution per claim, benchmarked and asserted.
"""

import pytest

from repro.algebra import compile_query
from repro.database import random_database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.dsl import prefix, rel
from repro.logic.terms import Var
from repro.safety import (
    ConjunctiveQuery,
    cq_is_safe,
    enumerate_safe_queries,
    is_safe_on,
    range_restrict,
)
from repro.strings import BINARY
from repro.structures import S_left, S_reg

from _common import print_table

ALGEBRA_CORPUS = [
    ("S_left", "exists adom x: R(x) & eq(add_first(x, '1'), y)"),
    ("S_left", "exists adom x: R(x) & eq(trim_first(x, '0'), y)"),
    ("S_reg", "R(x) & matches(x, '(00)*')"),
    ("S_reg", "R(x) & psuffix(eps, x, '(0|1)(0|1)')"),
]

RANGE_CORPUS = [
    ("S_left", "exists adom y: R(y) & eq(add_first(y, '1'), x)"),
    ("S_reg", "R(x) & matches(x, '(01)*0?')"),
]


def _structure(name):
    return {"S_left": S_left, "S_reg": S_reg}[name](BINARY)


@pytest.mark.parametrize(
    "sname,text", ALGEBRA_CORPUS, ids=[t for _s, t in ALGEBRA_CORPUS]
)
def test_thm8_algebra_equivalence(benchmark, sname, text):
    structure = _structure(sname)
    db = random_database(BINARY, {"R": 1}, 4, max_len=3, seed=6)
    formula = parse_formula(text)
    compiled = compile_query(formula, structure, db.schema, slack=2)
    got = benchmark(lambda: compiled.evaluate(db))
    expected = AutomataEngine(structure, db).run(formula)
    assert got == expected.as_set()


def test_thm7_cor8_cor9_summary(benchmark):
    def check():
        rows = []
        for sname, text in RANGE_CORPUS:
            structure = _structure(sname)
            rr = range_restrict(parse_formula(text), structure, slack=2)
            ok = all(
                rr.agrees_with_original_on(
                    random_database(BINARY, {"R": 1}, 4, max_len=3, seed=s)
                )
                for s in range(3)
            )
            rows.append((sname, "Thm 7 range restriction", "agrees" if ok else "FAIL"))
        for sname in ("S_left", "S_reg"):
            structure = _structure(sname)
            db = random_database(BINARY, {"R": 1}, 4, max_len=3, seed=1)
            safe = is_safe_on(parse_formula("R(x)"), structure, db)
            unsafe = is_safe_on(parse_formula("!R(x)"), structure, db)
            rows.append(
                (sname, "Cor 8 state-safety", "decides" if safe and not unsafe else "FAIL")
            )
            cq_safe = ConjunctiveQuery(
                ("x",), (rel("R", "y"),), prefix(Var("x"), Var("y")), ("y",)
            )
            cq_unsafe = ConjunctiveQuery(
                ("x",), (rel("R", "y"),), prefix(Var("y"), Var("x")), ("y",)
            )
            verdicts = cq_is_safe(cq_safe, structure) and not cq_is_safe(
                cq_unsafe, structure
            )
            rows.append((sname, "Cor 8 CQ safety", "decides" if verdicts else "FAIL"))
            enumerated = list(
                enumerate_safe_queries(structure, db.schema, limit=4)
            )
            all_safe = all(
                isinstance(q.evaluate(db), frozenset) for q in enumerated
            )
            rows.append(
                (sname, "Cor 9 effective syntax", "enumerates" if all_safe else "FAIL")
            )
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    print_table(
        "Theorems 7/8, Corollaries 8/9: the intermediate calculi",
        ["calculus", "claim", "result"],
        rows,
    )
    assert all("FAIL" not in r[2] for r in rows)
