"""PROP-5: NP-hard queries live inside RC(S_len) (3-colorability).

Proposition 5: every MSO query is expressible in RC(S_len) over
bounded-width databases — so RC(S_len) contains NP-complete queries.  We
run the 3-colorability sentence on width-1 graph encodings of growing
size and compare against the brute-force baseline: correctness must
agree, and the RC(S_len) cost must grow exponentially (it enumerates
color strings over the LENGTH domain), while brute force stays cheap at
these sizes — the "shape" of NP-hardness through the query language.
"""

import pytest

from repro.database import cycle_graph, complete_graph, graph_database, random_graph
from repro.mso import (
    is_three_colorable_bruteforce,
    is_three_colorable_via_rc_slen,
)
from repro.strings import BINARY

from _common import growth_ratios, measure, print_table

CASES = [
    ("K3", 3, complete_graph(3), True),
    ("C4", 4, cycle_graph(4), True),
    ("K4", 4, complete_graph(4), False),
    ("C5", 5, cycle_graph(5), True),
]


@pytest.mark.parametrize("name,n,edges,expected", CASES, ids=[c[0] for c in CASES])
def test_prop5_three_colorability(benchmark, name, n, edges, expected):
    db = graph_database(n, edges, BINARY)
    assert db.width() == 1
    # Single round: the non-colorable case scans the whole exponential
    # LENGTH domain (that cost *is* the measurement).
    got = benchmark.pedantic(
        lambda: is_three_colorable_via_rc_slen(db), rounds=1, iterations=1
    )
    assert got is expected
    assert is_three_colorable_bruteforce(n, edges) is expected


def test_prop5_exponential_shape(benchmark):
    sizes = [3, 4, 5]

    def sweep():
        rows = []
        for n in sizes:
            edges = cycle_graph(n)
            db = graph_database(n, edges, BINARY)
            t_query = measure(lambda: is_three_colorable_via_rc_slen(db), repeats=1)
            t_brute = measure(
                lambda: is_three_colorable_bruteforce(n, edges), repeats=1
            )
            rows.append((n, t_query, t_brute))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Proposition 5: 3-colorability as an RC(S_len) query (width-1 DBs)",
        ["vertices", "RC(S_len) seconds", "brute force seconds"],
        [(n, f"{tq:.4f}", f"{tb:.6f}") for n, tq, tb in rows],
    )
    query_times = [tq for _n, tq, _tb in rows]
    ratios = growth_ratios(query_times)
    print(f"query-time growth ratios: {['%.1f' % r for r in ratios]} "
          "(color-string domain doubles per vertex, three quantifiers)")
    # Exponential shape: strictly growing, last ratio substantial.
    assert query_times[-1] > query_times[0]
    assert ratios[-1] > 2.0, ratios
    # Brute force is orders of magnitude cheaper at these sizes.
    assert rows[-1][1] > 50 * rows[-1][2]
