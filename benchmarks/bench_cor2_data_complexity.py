"""COR-2: RC(S) data complexity is AC0 (operationally: low-degree polynomial).

Corollary 2 of the paper: RC(S) queries have AC0 data complexity — in
particular polynomial, and neither parity nor connectivity is
expressible.  We measure a fixed collapsed RC(S) query across a database
size sweep (fitted exponent should be a small constant, far from
exponential growth), and verify the parity separator: the parity
language's minimal DFA is *not* aperiodic, so parity is not an S-definable
language (the AC0 lower-bound face of the corollary).
"""

import pytest

from repro.automata import DFA, is_star_free
from repro.database import random_database
from repro.eval import DirectEngine
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S

from _common import fitted_exponent, growth_ratios, measure, print_table

#: A collapsed RC(S) query with one join and a prefix-restricted witness.
QUERY = parse_formula(
    "forall adom x: R(x) -> "
    "(exists adom y: S(y) & y <<= x) | last(x, '1')"
)

SIZES = [25, 50, 100, 200, 400]


def _db(n: int):
    return random_database(BINARY, {"R": 1, "S": 1}, n, max_len=10, seed=11)


@pytest.mark.parametrize("n", SIZES)
def test_cor2_rc_s_eval(benchmark, n):
    engine = DirectEngine(S(BINARY), _db(n), slack=0)
    benchmark(lambda: engine.decide(QUERY))


def test_cor2_polynomial_shape_and_parity(benchmark):
    def sweep():
        return [
            measure(lambda n=n: DirectEngine(S(BINARY), _db(n), slack=0).decide(QUERY))
            for n in SIZES
        ]

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent = fitted_exponent(SIZES, times)
    print_table(
        "Corollary 2: RC(S) data complexity (polynomial scaling)",
        ["n", "seconds"],
        [(n, f"{t:.5f}") for n, t in zip(SIZES, times)],
    )
    print(f"fitted exponent: {exponent:.2f} (expected small constant; "
          f"growth ratios {['%.2f' % r for r in growth_ratios(times)]})")
    assert exponent < 3.0

    # Parity (even number of 1s) is not aperiodic => not S-definable.
    parity = DFA(
        BINARY.symbols,
        [0, 1],
        0,
        [0],
        {0: {"0": 0, "1": 1}, 1: {"0": 1, "1": 0}},
    )
    assert not is_star_free(parity)
    print("parity language is not star-free -> not expressible in RC(S) "
          "(the corollary's separator)")
