"""KERNEL-1: dense integer-coded automata kernel vs the legacy dict path.

The acceptance claim of ``src/repro/automata/kernel.py`` (see
``docs/automata_kernel.md``): on the product-chain + minimize pipeline —
the normalization chain every RC(S_reg) query bottoms out in — the dense
kernel beats the legacy dict-of-dicts path by >= 5x at the largest
benchmarked size.  Three more shapes cover the other converted hot
paths: subset construction, minimization alone, and the SQL LIKE
compile-and-match pipeline.

Every shape measures *both* paths in the same run and records the
speedup ratio; ``--write-baseline`` commits the ratios to
``BENCH_kernel.json`` via ``benchmarks/_regress.py`` and ``--compare``
exits non-zero when any measured ratio has degraded by more than the
baseline's threshold (1.3x) — the machine-portable regression gate that
``make bench-compare`` (and the ``--smoke`` variant inside ``make
test``) runs.
"""

import random

import pytest

from repro.automata import legacy
from repro.automata.dfa import DFA
from repro.automata.kernel import (
    determinize_minimized,
    intersect_all_minimized,
    minimize_dfa,
)
from repro.automata.nfa import EPSILON, NFA
from repro.sql.like import compile_like_dense, parse_like
from repro.strings.alphabet import Alphabet

from _common import measure, print_table, write_explain_json
import _regress

ALPHABET = tuple("abcd")
LIKE_ALPHABET = Alphabet("abcd")

#: Sweep sizes per shape (smoke sizes are a subset, so one committed
#: baseline serves both the full gate and the ``make test`` smoke gate).
FULL_SIZES = {
    "product_chain": [10, 16, 24, 32],
    "determinize": [16, 20, 24],
    "minimize": [16, 24, 32],
    "like_pipeline": [150, 300],
}
SMOKE_SIZES = {
    "product_chain": [16],
    "determinize": [20],
    "minimize": [24],
    "like_pipeline": [150],
}

#: Acceptance bar on product-chain + minimize at the largest size.
FULL_SPEEDUP = 5.0

#: Timing repeats per cell (median taken; the first run absorbs warm-up).
REPEATS = 5

#: NFAs per determinize cell — batched so each cell is well above the
#: timer's noise floor.
NFA_BATCH = 4

LIKE_PATTERNS = [
    "%ab%",
    "a_c%",
    "%a%b%c%",
    "ab%cd",
    "%_b_%",
    "abc_%d%",
    "%ab%cd%ab%",
    "a_b_c_%d%",
    "%abcd%dcba%",
    "__%ab%__",
    "%a_b%c_d%",
    "ab_cd%ab_cd%",
]


# ------------------------------------------------------------ workload makers


def _random_dfa(rng: random.Random, n: int, density: float = 0.9) -> DFA:
    transitions = {}
    for q in range(n):
        row = {a: rng.randrange(n) for a in ALPHABET if rng.random() < density}
        if row:
            transitions[q] = row
    accepting = [q for q in range(n) if rng.random() < 0.3]
    return DFA(ALPHABET, range(n), 0, accepting or [n - 1], transitions)


def _random_nfa(rng: random.Random, n: int) -> NFA:
    transitions = {}
    for q in range(n):
        row = {}
        for sym in ALPHABET + (EPSILON,):
            if rng.random() < 0.4:
                row[sym] = {rng.randrange(n) for _ in range(rng.randrange(1, 3))}
        if row:
            transitions[q] = row
    accepting = [q for q in range(n) if rng.random() < 0.3]
    return NFA(ALPHABET, range(n), {0}, accepting or [n - 1], transitions)


def _rows(rng: random.Random, count: int) -> list[str]:
    return [
        "".join(rng.choice("abcd") for _ in range(rng.randrange(0, 24)))
        for _ in range(count)
    ]


def _legacy_chain_minimize(dfas) -> DFA:
    cur = dfas[0]
    for d in dfas[1:]:
        cur = legacy.product(cur, d, lambda a, b: a and b).trim_unreachable()
    return cur.minimize()


def _legacy_like_batch(patterns, rows) -> int:
    hits = 0
    for pattern in patterns:
        # The pre-kernel pipeline: Thompson NFA -> dict-of-frozensets
        # subset construction -> Moore minimize -> dict-DFA matching.
        dfa = parse_like(pattern).to_nfa(LIKE_ALPHABET).determinize().minimize()
        hits += sum(1 for row in rows if dfa.accepts(row))
    return hits


def _kernel_like_batch(patterns, rows) -> int:
    # The shipped pipeline: lru_cached dense compile + flat-array
    # matching.  The cache is deliberately left warm across repeats —
    # memoized compilation is part of what the kernel path buys.
    hits = 0
    for pattern in patterns:
        dense = compile_like_dense(pattern, LIKE_ALPHABET)
        hits += sum(1 for row in rows if dense.accepts(row))
    return hits


# ------------------------------------------------------------------ the sweep


def _measure_shape(shape: str, n: int) -> dict:
    """One (shape, size) cell: time legacy and kernel, check agreement."""
    rng = random.Random(1000 + n)
    legacy_out = [None]
    kernel_out = [None]
    if shape == "product_chain":
        dfas = [_random_dfa(rng, n) for _ in range(3)]
        legacy_s = measure(
            lambda: legacy_out.__setitem__(0, _legacy_chain_minimize(dfas)),
            repeats=REPEATS,
        )
        kernel_s = measure(
            lambda: kernel_out.__setitem__(0, intersect_all_minimized(dfas)),
            repeats=REPEATS,
        )
        agree = legacy_out[0].num_states == kernel_out[0].num_states
    elif shape == "determinize":
        nfas = [_random_nfa(rng, n) for _ in range(NFA_BATCH)]
        legacy_s = measure(
            lambda: legacy_out.__setitem__(
                0, [a.determinize().minimize() for a in nfas]
            ),
            repeats=REPEATS,
        )
        kernel_s = measure(
            lambda: kernel_out.__setitem__(
                0, [determinize_minimized(a) for a in nfas]
            ),
            repeats=REPEATS,
        )
        agree = all(
            l.num_states == k.num_states
            for l, k in zip(legacy_out[0], kernel_out[0])
        )
    elif shape == "minimize":
        left, right = _random_dfa(rng, n), _random_dfa(rng, n)
        blown_up = legacy.product(left, right, lambda a, b: a and b)
        legacy_s = measure(
            lambda: legacy_out.__setitem__(0, blown_up.minimize()),
            repeats=REPEATS,
        )

        def kernel_run():
            blown_up._dense_cache = None  # time the conversion too
            kernel_out[0] = minimize_dfa(blown_up)

        kernel_s = measure(kernel_run, repeats=REPEATS)
        agree = legacy_out[0].num_states == kernel_out[0].num_states
    elif shape == "like_pipeline":
        rows = _rows(rng, n)
        compile_like_dense.cache_clear()  # pay compile once, inside the timing
        legacy_s = measure(
            lambda: legacy_out.__setitem__(
                0, _legacy_like_batch(LIKE_PATTERNS, rows)
            ),
            repeats=REPEATS,
        )
        kernel_s = measure(
            lambda: kernel_out.__setitem__(
                0, _kernel_like_batch(LIKE_PATTERNS, rows)
            ),
            repeats=REPEATS,
        )
        agree = legacy_out[0] == kernel_out[0]
    else:  # pragma: no cover - guarded by the sizes tables
        raise ValueError(shape)
    return {
        "shape": shape,
        "n": n,
        "legacy_s": legacy_s,
        "kernel_s": kernel_s,
        "speedup": legacy_s / max(kernel_s, 1e-9),
        "agree": agree,
    }


def run_sweep(sizes: dict[str, list[int]]) -> list[dict]:
    """Measure every (shape, size) cell; shared by pytest and standalone."""
    return [
        _measure_shape(shape, n)
        for shape, shape_sizes in sizes.items()
        for n in shape_sizes
    ]


def entries_of(rows: list[dict]) -> dict[str, dict]:
    """Regression-gate entries (see ``benchmarks/_regress.py``)."""
    return {
        f"{r['shape']}/n={r['n']}": {
            "speedup": round(r["speedup"], 3),
            "reference_s": round(r["legacy_s"], 6),
            "optimized_s": round(r["kernel_s"], 6),
        }
        for r in rows
    }


def conservative_entries(sweeps: list[list[dict]]) -> dict[str, dict]:
    """Per-key minimum speedup across several sweeps.

    Baselines are written from the *worst* of a few runs so that normal
    timing jitter sits inside the gate's 1.3x threshold instead of
    tripping it.
    """
    merged: dict[str, dict] = {}
    for sweep in sweeps:
        for key, entry in entries_of(sweep).items():
            kept = merged.get(key)
            if kept is None or entry["speedup"] < kept["speedup"]:
                merged[key] = entry
    return merged


def _print_rows(rows: list[dict]) -> None:
    print_table(
        "Dense kernel vs legacy dict-DFA path",
        ["shape", "n", "legacy s", "kernel s", "speedup", "agree"],
        [
            (
                r["shape"],
                r["n"],
                f"{r['legacy_s']:.4f}",
                f"{r['kernel_s']:.4f}",
                f"{r['speedup']:.1f}x",
                r["agree"],
            )
            for r in rows
        ],
    )


# ------------------------------------------------------------------- pytest


@pytest.mark.parametrize("n", FULL_SIZES["product_chain"][:3])
def test_kernel_legacy_product_chain(benchmark, n):
    rng = random.Random(1000 + n)
    dfas = [_random_dfa(rng, n) for _ in range(3)]
    benchmark(lambda: _legacy_chain_minimize(dfas))


@pytest.mark.parametrize("n", FULL_SIZES["product_chain"])
def test_kernel_dense_product_chain(benchmark, n):
    rng = random.Random(1000 + n)
    dfas = [_random_dfa(rng, n) for _ in range(3)]
    benchmark(lambda: intersect_all_minimized(dfas))


def test_kernel_speedup_sweep(benchmark):
    """The acceptance sweep: agreement everywhere, >= 5x at the top."""
    rows = benchmark.pedantic(lambda: run_sweep(FULL_SIZES), rounds=1, iterations=1)
    _print_rows(rows)
    assert all(r["agree"] for r in rows)
    chain = [r for r in rows if r["shape"] == "product_chain"]
    assert chain[-1]["speedup"] >= FULL_SPEEDUP


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="minimal sizes")
    parser.add_argument("--explain-json", metavar="PATH", default=None)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the full sweep and (re)write BENCH_kernel.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate the measured speedups against BENCH_kernel.json",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke and not args.write_baseline else FULL_SIZES
    rows = run_sweep(sizes)
    _print_rows(rows)
    entries = entries_of(rows)
    write_explain_json(args.explain_json, {"rows": rows, "entries": entries})

    if not all(r["agree"] for r in rows):
        print("FAIL: kernel and legacy paths disagree")
        return 1
    if not args.smoke:
        chain = [r for r in rows if r["shape"] == "product_chain"]
        if chain[-1]["speedup"] < FULL_SPEEDUP:
            print(
                f"FAIL: product-chain speedup {chain[-1]['speedup']:.1f}x "
                f"< required {FULL_SPEEDUP:g}x at n={chain[-1]['n']}"
            )
            return 1
    if args.write_baseline:
        extra = [run_sweep(sizes) for _ in range(2)]
        _regress.write_baseline(
            _regress.baseline_path("kernel"),
            "kernel",
            conservative_entries([rows, *extra]),
        )
        return 0
    if args.compare:
        return _regress.gate("kernel", entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
