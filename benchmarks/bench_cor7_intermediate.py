"""THM-6 / COR-7: the intermediate calculi keep low data complexity.

Theorem 6 extends the restricted quantifier collapse to RC(S_left) and
RC(S_reg); Corollary 7 gives AC0 / NC1 data complexity.  We re-run the
Corollary 2 harness for both intermediate calculi: collapse agreement on
natural-quantifier sentences, and a polynomial scaling sweep — the shape
claim is "both intermediate calculi evaluate like RC(S), nothing like the
exponential RC(S_len) LENGTH domains".
"""

import pytest

from repro.database import random_database
from repro.eval import AutomataEngine, DirectEngine, collapse
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S_left, S_reg

from _common import fitted_exponent, measure, print_table

SENTENCES = {
    "S_left": "forall x: R(x) -> exists y: eq(add_first(x, '1'), y) & !S(y)",
    "S_reg": "forall x: R(x) -> matches(x, '(0|1)(0|1)*') | x = eps",
}

SCALING_QUERIES = {
    "S_left": "forall adom x: R(x) -> exists adom y: S(y) & eq(add_first(y, '0'), x) | last(x, '1')",
    "S_reg": "forall adom x: R(x) -> matches(x, '(00)*1(0|1)*') | exists adom y: S(y) & y <<= x",
}

SIZES = [25, 50, 100, 200]


def _structure(name):
    return {"S_left": S_left, "S_reg": S_reg}[name](BINARY)


@pytest.mark.parametrize("name", ["S_left", "S_reg"])
def test_cor7_collapse_agreement(benchmark, name):
    structure = _structure(name)
    formula = parse_formula(SENTENCES[name])
    q = collapse(formula, structure)

    def check():
        oks = []
        for seed in range(3):
            db = random_database(BINARY, {"R": 1, "S": 1}, 4, max_len=3, seed=seed)
            natural = AutomataEngine(structure, db).decide(formula)
            collapsed = DirectEngine(structure, db, slack=min(q.slack, 3)).decide(
                q.formula
            )
            oks.append(natural == collapsed)
        return oks

    oks = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(oks), (name, oks)


@pytest.mark.parametrize("name", ["S_left", "S_reg"])
def test_cor7_scaling(benchmark, name):
    structure = _structure(name)
    formula = parse_formula(SCALING_QUERIES[name])

    def sweep():
        times = []
        for n in SIZES:
            db = random_database(BINARY, {"R": 1, "S": 1}, n, max_len=8, seed=13)
            engine = DirectEngine(structure, db, slack=0)
            times.append(measure(lambda: engine.decide(formula), repeats=1))
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent = fitted_exponent(SIZES, times)
    print_table(
        f"Corollary 7: RC({name}) data-complexity sweep",
        ["n", "seconds"],
        [(n, f"{t:.5f}") for n, t in zip(SIZES, times)],
    )
    print(f"fitted exponent: {exponent:.2f} (polynomial, like RC(S))")
    assert exponent < 3.0
