"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure / table / claim of the paper (see
DESIGN.md's experiment index and EXPERIMENTS.md for results).  The paper
is a theory paper, so "regenerating a figure" means measuring the
operational content of the theorem — scaling exponents, decision
procedure outcomes, engine agreement — and printing the reconstructed
figure row by row.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import math
import time
from collections.abc import Callable, Sequence

from repro.database import Database, random_database, unary_database
from repro.strings import BINARY


def db_sweep(sizes: Sequence[int], arities: dict[str, int] | None = None, max_len: int = 6):
    """Deterministic databases of growing size."""
    arities = arities or {"R": 1, "S": 1}
    return {
        n: random_database(BINARY, arities, tuples_per_relation=n, max_len=max_len, seed=7)
        for n in sizes
    }


def measure(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def fitted_exponent(sizes: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(size).

    ~1 for linear algorithms, ~2 for quadratic, etc.  Sub-millisecond
    noise makes small sweeps fuzzy; the benchmarks assert *bands*, not
    exact values.
    """
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def growth_ratios(times: Sequence[float]) -> list[float]:
    """Consecutive ratios t[i+1] / t[i]."""
    return [b / a if a > 0 else float("inf") for a, b in zip(times, times[1:])]


def standalone_args(description: str, argv: Sequence[str] | None = None) -> argparse.Namespace:
    """Arguments for a benchmark's standalone (non-pytest) entry point.

    ``--smoke`` runs the minimal sizes only; ``--explain-json PATH`` dumps
    the run's metrics (and EXPLAIN trees where applicable) as JSON — what
    ``make bench-smoke`` asserts parses.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke", action="store_true", help="minimal sizes (CI smoke run)"
    )
    parser.add_argument(
        "--explain-json",
        metavar="PATH",
        default=None,
        help="write metrics + explain output as JSON to PATH",
    )
    return parser.parse_args(argv)


def write_explain_json(path: str | None, payload: dict) -> None:
    """Dump a benchmark's JSON payload (metrics snapshot, explains, rows)."""
    if path is None:
        return
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True, default=str)
    print(f"wrote metrics JSON to {path}")


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a reconstructed paper table (shown under ``pytest -s``)."""
    print(f"\n--- {title} ---")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
