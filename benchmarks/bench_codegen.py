"""CODEGEN-1: compiled fused pipelines vs the interpreted algebra executor.

The acceptance claim of the codegen backend (``docs/codegen_engine.md``):
on a fused scan→select→project→join shape, running the generated Python
pipeline (warm closure cache — compilation already paid) is at least
**2x** faster than walking the same optimized plan through the
interpreted :class:`~repro.algebra.exec.AlgebraExecutor`, and the
planner's argmin picks ``codegen`` for that shape once the closure is
warm, with a ``CodegenPipeline`` node in EXPLAIN.

Two workload shapes:

``fused_join``
    ``R(x,y) & S(y,z) & last(x, '0')`` — the plan interleaves adom
    prefix expansion, an inlined ``last`` predicate, projections, and
    two hash joins.  The compiled pipeline fuses each scan→select→
    project chain into one loop body and builds each join's hash table
    once; the interpreter pays per-node dispatch, per-row checker
    dictionaries, and an intermediate ``frozenset`` per operator.

``columnar_scan``
    ``W(x,x,y)`` over a wide ternary relation — compiles to
    ``project(select[eq(c0, c1)](W))``, the shape the numpy columnar
    path vectorizes (one object-dtype array, a mask, no per-row Python
    at all).  Falls back to the (still fused) pure loop when numpy is
    unavailable, so the speedup bar holds either way.

Both sides answer from the same optimized plan and the benchmark
asserts row agreement at every size.  ``--write-baseline`` commits the
speedup ratios to ``BENCH_codegen.json`` via ``benchmarks/_regress.py``;
``--compare`` exits non-zero when any measured ratio degrades by more
than the baseline's threshold (1.3x) — ``make bench-codegen`` runs the
full gate and ``make test`` the ``--smoke`` subset.
"""

import pytest

from repro.algebra.codegen import closure_cache, get_pipeline
from repro.algebra.exec import AlgebraExecutor, compile_for_execution
from repro.database import random_database
from repro.logic import parse_formula
from repro.logic.canonical import canonicalize
from repro.strings import BINARY
from repro.structures.catalog import S as S_factory

from _common import measure, print_table, write_explain_json
import _regress

#: Acceptance bar at the largest full-sweep size, both shapes.
FULL_SPEEDUP = 2.0

#: (shape, query, relation arities, max string length, seed,
#:  full sizes, smoke sizes).
SHAPES = [
    (
        "fused_join",
        "R(x,y) & S(y,z) & last(x, '0')",
        {"R": 2, "S": 2},
        4,
        11,
        [100, 200, 400],
        [100],
    ),
    (
        "columnar_scan",
        "W(x,x,y)",
        {"W": 3},
        6,
        7,
        [1000, 2000, 4000],
        [1000],
    ),
]


def _shape(name: str):
    for row in SHAPES:
        if row[0] == name:
            return row
    raise KeyError(name)


def _db(shape: str, n: int):
    _name, _q, arities, max_len, seed, _full, _smoke = _shape(shape)
    return random_database(BINARY, arities, n, max_len=max_len, seed=seed)


def _compiled(shape: str, db):
    """(optimized plan, warm GeneratedPipeline, structure, formula)."""
    structure = S_factory(BINARY)
    formula = canonicalize(parse_formula(_shape(shape)[1]))
    _compiled_q, plan = compile_for_execution(
        formula, structure, db.schema, slack=0
    )
    pipeline, detail = get_pipeline(formula, structure, db.schema, slack=0)
    assert pipeline is not None, f"{shape}: codegen rejected the plan: {detail}"
    return plan, pipeline, structure, formula


def run_shape(shape: str, n: int) -> dict:
    """Median times for one shape at one size, interpreted vs compiled.

    The compiled side times only ``pipeline.run`` — the closure is warm,
    which is the steady state the planner's amortized cost model prices
    (repeated/prepared queries).  The interpreted side gets a fresh
    executor per run so no memo carries over between repeats.
    """
    db = _db(shape, n)
    plan, pipeline, structure, _formula = _compiled(shape, db)
    interp_rows = [None]
    compiled_rows = [None]

    def interp_run():
        interp_rows[0] = AlgebraExecutor(structure, db).run(plan)[0]

    def compiled_run():
        compiled_rows[0] = pipeline.run(db)[0]

    interp_s = measure(interp_run, repeats=3)
    compiled_s = measure(compiled_run, repeats=3)
    return {
        "shape": shape,
        "n": n,
        "rows": len(compiled_rows[0]),
        "agree": interp_rows[0] == compiled_rows[0],
        "interp_s": interp_s,
        "compiled_s": compiled_s,
        "speedup": interp_s / max(compiled_s, 1e-9),
        "source_lines": pipeline.line_count,
        "numpy_stages": pipeline.np_stages,
    }


def run_sweep(smoke: bool) -> list[dict]:
    return [
        run_shape(shape, n)
        for shape, _q, _a, _m, _s, full_sizes, smoke_sizes in SHAPES
        for n in (smoke_sizes if smoke else full_sizes)
    ]


def entries_of(rows: list[dict]) -> dict[str, dict]:
    """Regression-gate entries (see ``benchmarks/_regress.py``)."""
    return {
        f"{r['shape']}/n={r['n']}": {
            "speedup": round(r["speedup"], 3),
            "reference_s": round(r["interp_s"], 6),
            "optimized_s": round(r["compiled_s"], 6),
        }
        for r in rows
    }


def conservative_entries(sweeps: list[list[dict]]) -> dict[str, dict]:
    """Per-key minimum speedup across several sweeps, so normal jitter
    sits inside the gate's 1.3x threshold instead of tripping it."""
    merged: dict[str, dict] = {}
    for sweep in sweeps:
        for key, entry in entries_of(sweep).items():
            kept = merged.get(key)
            if kept is None or entry["speedup"] < kept["speedup"]:
                merged[key] = entry
    return merged


def _top_rows(rows: list[dict]) -> list[dict]:
    """The largest-size row of each shape (where the 2x bar applies)."""
    tops = {shape: sizes[-1] for shape, _q, _a, _m, _s, sizes, _sm in SHAPES}
    return [r for r in rows if r["n"] == tops[r["shape"]]]


def _print_rows(rows: list[dict]) -> None:
    print_table(
        "Fused compiled pipeline (warm closure) vs interpreted executor",
        ["shape", "n", "out rows", "interp s", "compiled s", "speedup",
         "src lines", "np stages"],
        [
            (
                r["shape"],
                r["n"],
                r["rows"],
                f"{r['interp_s']:.4f}",
                f"{r['compiled_s']:.4f}",
                f"{r['speedup']:.2f}x",
                r["source_lines"],
                r["numpy_stages"],
            )
            for r in rows
        ],
    )


def check_planner_flips(n: int) -> dict:
    """The acceptance EXPLAIN: once the closure is warm, auto planning
    picks ``codegen`` on the fused-join shape and the physical tree is a
    ``CodegenPipeline`` node carrying the generated-source line count."""
    from repro.core import Query
    from repro.engine import global_cache

    db = _db("fused_join", n)
    query = Query(_shape("fused_join")[1], structure="S")
    # Warm the exact closure the auto plan will key on (slack=0), then
    # drop the cached *result* so the traced run executes the pipeline
    # instead of answering from the result cache (closures live in their
    # own cache and survive the reset — the planner still sees them).
    query.result(db, engine="codegen", slack=0)
    global_cache().reset()
    report = query.explain(db)
    tree = report.to_dict()["tree"]

    def kinds(node):
        yield node["kind"]
        for child in node["children"]:
            yield from kinds(child)

    explain_kinds = sorted(set(kinds(tree)))
    print(f"planner chose: {report.plan.engine}; "
          f"EXPLAIN node kinds: {explain_kinds}")
    assert report.plan.engine == "codegen", (
        f"warm closure did not flip the planner (chose {report.plan.engine}; "
        f"costs {report.plan.costs})"
    )
    assert "CodegenPipeline" in explain_kinds
    assert "source_lines" in tree["annotations"]
    return {"engine": report.plan.engine, "explain": report.to_dict()}


# ------------------------------------------------------------------- pytest


@pytest.mark.parametrize("n", [100, 200, 400])
def test_codegen_fused_join(benchmark, n):
    db = _db("fused_join", n)
    _plan, pipeline, _structure, _formula = _compiled("fused_join", db)
    benchmark(lambda: pipeline.run(db))


@pytest.mark.parametrize("n", [1000, 2000])
def test_codegen_columnar_scan(benchmark, n):
    db = _db("columnar_scan", n)
    _plan, pipeline, _structure, _formula = _compiled("columnar_scan", db)
    benchmark(lambda: pipeline.run(db))


def test_codegen_speedup(benchmark):
    """The acceptance sweep: agreement at every size, >= 2x at the top."""
    rows = benchmark.pedantic(
        lambda: run_sweep(smoke=False), rounds=1, iterations=1
    )
    _print_rows(rows)
    assert all(r["agree"] for r in rows)
    assert all(r["speedup"] >= FULL_SPEEDUP for r in _top_rows(rows))


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    import argparse

    from repro.engine import METRICS, global_cache

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="minimal sizes")
    parser.add_argument("--explain-json", metavar="PATH", default=None)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the full sweep and (re)write BENCH_codegen.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate the measured speedups against BENCH_codegen.json",
    )
    args = parser.parse_args(argv)

    METRICS.reset()
    global_cache().reset()
    closure_cache().reset()
    smoke = args.smoke and not args.write_baseline
    rows = run_sweep(smoke)
    _print_rows(rows)
    sizes = _shape("fused_join")[6 if smoke else 5]
    proof = check_planner_flips(sizes[-1])
    entries = entries_of(rows)
    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_codegen",
            "rows": rows,
            "entries": entries,
            "explain": proof["explain"],
            "metrics": METRICS.snapshot(),
            "closure_cache": closure_cache().stats(),
        },
    )

    if not all(r["agree"] for r in rows):
        print("FAIL: compiled pipeline and interpreted executor disagree")
        return 1
    floor = 1.0 if smoke else FULL_SPEEDUP
    for r in _top_rows(rows):
        if r["speedup"] < floor:
            print(
                f"FAIL: {r['shape']} speedup {r['speedup']:.2f}x < "
                f"required {floor:g}x at n={r['n']}"
            )
            return 1
    if args.write_baseline:
        extra = [run_sweep(smoke=False) for _ in range(2)]
        _regress.write_baseline(
            _regress.baseline_path("codegen"),
            "codegen",
            conservative_entries([rows, *extra]),
        )
        return 0
    if args.compare:
        return _regress.gate("codegen", entries)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
