"""Baseline writer / comparator for benchmark regression gating.

A benchmark that wants a regression gate measures a *speedup ratio*
(optimized path vs reference path, both timed in the same run on the
same machine) per workload key and stores those ratios in a committed
``BENCH_<name>.json`` baseline.  Gating on ratios rather than absolute
seconds makes the gate machine-portable: a slower CI box slows both
paths, the ratio survives.

Baseline format::

    {
      "bench": "kernel",
      "threshold": 1.3,
      "entries": {
        "product_chain/n=32": {"speedup": 7.2,
                               "reference_s": 0.48, "optimized_s": 0.066},
        ...
      }
    }

``compare`` flags a key when the current speedup has degraded by more
than ``threshold`` relative to the committed one (``baseline >
threshold * current``).  Keys measured now but absent from the baseline
are ignored (new workloads need a baseline refresh, not a failure);
baseline keys not measured now are only checked when present in the
current run, so a ``--smoke`` subset gates just the entries it ran.
"""

from __future__ import annotations

import json
import os

DEFAULT_THRESHOLD = 1.3


def baseline_path(name: str) -> str:
    """``BENCH_<name>.json`` at the repository root."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, f"BENCH_{name}.json")


def load_baseline(path: str) -> dict | None:
    """The parsed baseline, or ``None`` when none has been committed."""
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def write_baseline(
    path: str,
    name: str,
    entries: dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> None:
    """Write ``entries`` (key -> {"speedup": ..., ...}) as the baseline."""
    payload = {
        "bench": name,
        "threshold": threshold,
        "entries": {key: dict(value) for key, value in sorted(entries.items())},
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote baseline {path} ({len(entries)} entries)")


def compare(baseline: dict, entries: dict[str, dict]) -> list[str]:
    """Regression messages for current ``entries`` against ``baseline``.

    Empty list means every measured key is within ``threshold`` of its
    committed speedup.
    """
    threshold = float(baseline.get("threshold", DEFAULT_THRESHOLD))
    committed = baseline.get("entries", {})
    problems = []
    for key, current in sorted(entries.items()):
        ref = committed.get(key)
        if ref is None:
            continue  # new workload: needs a baseline refresh, not a failure
        base_speedup = float(ref["speedup"])
        cur_speedup = float(current["speedup"])
        if base_speedup > threshold * cur_speedup:
            problems.append(
                f"{key}: speedup {cur_speedup:.2f}x is >{threshold:g}x worse "
                f"than committed {base_speedup:.2f}x"
            )
    return problems


def gate(name: str, entries: dict[str, dict]) -> int:
    """Compare against the committed baseline; 0 = pass, 1 = regression.

    A missing baseline fails too — the gate is only meaningful once
    ``BENCH_<name>.json`` is committed (write it with the benchmark's
    ``--write-baseline`` flag).
    """
    path = baseline_path(name)
    baseline = load_baseline(path)
    if baseline is None:
        print(f"no committed baseline at {path}; run with --write-baseline first")
        return 1
    problems = compare(baseline, entries)
    if problems:
        print(f"REGRESSION against {os.path.basename(path)}:")
        for p in problems:
            print(f"  {p}")
        # Full per-shape table, not just the aggregate verdict: CI logs
        # must be enough to see *which* shapes drifted and by how much.
        committed = baseline.get("entries", {})
        print("per-shape observed vs committed speedups:")
        for key, current in sorted(entries.items()):
            ref = committed.get(key)
            cur_speedup = float(current["speedup"])
            if ref is None:
                print(f"  {key}: {cur_speedup:.2f}x (no committed baseline)")
                continue
            base_speedup = float(ref["speedup"])
            ratio = cur_speedup / base_speedup if base_speedup else float("inf")
            print(
                f"  {key}: {cur_speedup:.2f}x vs committed "
                f"{base_speedup:.2f}x ({ratio:.2f} of baseline)"
            )
        return 1
    checked = sum(1 for k in entries if k in baseline.get("entries", {}))
    print(
        f"bench-compare: {checked} entries within "
        f"{baseline.get('threshold', DEFAULT_THRESHOLD):g}x of "
        f"{os.path.basename(path)}"
    )
    return 0
