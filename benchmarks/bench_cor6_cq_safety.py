"""THM-5 / COR-6: safety of conjunctive queries is decidable.

The decision runs as an S_len sentence (finiteness definable with
parameters + decidable theory, both via the automata engine over the
empty database).  We decide a corpus of safe and unsafe CQs, verify each
verdict empirically on random databases, and benchmark the decision.
"""

import pytest

from repro.database import random_database
from repro.logic.dsl import el, last, len_le, prefix, rel, sprefix
from repro.logic.formulas import TrueF
from repro.logic.terms import Var
from repro.safety import ConjunctiveQuery, cq_is_safe, union_is_safe
from repro.strings import BINARY
from repro.structures import S, S_len

from _common import print_table

x, y, z = Var("x"), Var("y"), Var("z")

CORPUS = [
    ("Q(x) :- R(x)", ConjunctiveQuery(("x",), (rel("R", "x"),), TrueF()), S, True),
    (
        "Q(x) :- R(y), x <<= y",
        ConjunctiveQuery(("x",), (rel("R", "y"),), prefix(x, y), ("y",)),
        S,
        True,
    ),
    (
        "Q(x) :- R(y), y <<= x",
        ConjunctiveQuery(("x",), (rel("R", "y"),), prefix(y, x), ("y",)),
        S,
        False,
    ),
    (
        "Q(x) :- R(y), last(x,'0')",
        ConjunctiveQuery(("x",), (rel("R", "y"),), last(x, "0"), ("y",)),
        S,
        False,
    ),
    (
        "Q(x) :- R(y), el(x,y)",
        ConjunctiveQuery(("x",), (rel("R", "y"),), el(x, y), ("y",)),
        S_len,
        True,
    ),
    (
        "Q(x) :- R(y), |x|<=|y|",
        ConjunctiveQuery(("x",), (rel("R", "y"),), len_le(x, y), ("y",)),
        S_len,
        True,
    ),
    (
        "Q(x,z) :- E(x,y), z << x",
        ConjunctiveQuery(
            ("x", "z"), (rel("E", "x", "y"),), sprefix(z, x), ("y",)
        ),
        S,
        True,
    ),
]


@pytest.mark.parametrize(
    "name,cq,factory,expected", CORPUS, ids=[c[0] for c in CORPUS]
)
def test_cor6_decide(benchmark, name, cq, factory, expected):
    structure = factory(BINARY)
    got = benchmark(lambda: cq_is_safe(cq, structure))
    assert got is expected


def test_cor6_verdicts_match_reality(benchmark):
    def check():
        rows = []
        for name, cq, factory, expected in CORPUS:
            structure = factory(BINARY)
            verdict = cq_is_safe(cq, structure)
            # Empirically: safe CQs are finite on random DBs; unsafe ones
            # have a witness database with infinite output.
            empirical = all(
                cq.evaluate(
                    structure,
                    random_database(BINARY, {"R": 1, "E": 2}, 3, max_len=3, seed=s),
                ).is_finite()
                for s in range(2)
            )
            consistent = verdict <= empirical  # safe verdict implies finite
            rows.append((name, "safe" if verdict else "unsafe", consistent))
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    print_table(
        "Corollary 6: CQ safety verdicts",
        ["conjunctive query", "verdict", "verdict consistent"],
        rows,
    )
    assert all(r[2] for r in rows)
    # Unions: safe iff all disjuncts safe.
    safe_cq = CORPUS[0][1]
    unsafe_cq = CORPUS[2][1]
    assert union_is_safe([safe_cq, safe_cq], S(BINARY))
    assert not union_is_safe([safe_cq, unsafe_cq], S(BINARY))
