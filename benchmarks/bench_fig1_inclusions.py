"""FIG-1: the expressiveness inclusion diagram.

Figure 1 of the paper orders the calculi::

                    RC_concat
                        |
                    RC(S_len)
                    /        \\
            RC(S_left)     RC(S_reg)      (incomparable)
                    \\        /
                      RC(S)

This bench verifies each edge and each separation with executable
witnesses:

* ``(aa)*``-style non-star-free languages are definable in S_reg / S_len
  but star-free checking proves they are outside S and S_left
  (language-definability characterizations, Sections 4 and 7);
* the ``f_a`` graph is available in S_left and S_len but rejected by the
  S and S_reg signatures, and its S_left evaluation differs from anything
  prefix-local (the Section 7 separation);
* equal length is definable in S_len only;
* RC_concat sits strictly above: it expresses parity via a Turing
  machine (Proposition 1), which no tame calculus can (parity is not
  regular-definable as a *query* in AC0 terms and not star-free as a
  language).
"""

import pytest

from repro import Query, SignatureError, StringDatabase, definable_language, language_is_star_free
from repro.automata import compile_regex, equivalent, is_star_free
from repro.strings import BINARY

from _common import print_table


DB = StringDatabase("01", {"R": {"00", "0000", "000"}})


def _language_witness_results():
    rows = []
    # Star-free LIKE-style language: definable in every calculus.
    for structure in ("S", "S_left", "S_reg", "S_len"):
        q = Query('matches(x, "0(0|1)*")', structure=structure)
        rows.append(("0(0|1)* (star-free)", structure, "definable"))
    # (00)*: regular, not star-free -> S_reg/S_len only.
    for structure in ("S", "S_left"):
        try:
            Query('matches(x, "(00)*")', structure=structure)
            status = "definable (BUG)"
        except SignatureError:
            status = "rejected (star-free only)"
        rows.append(("(00)* (not star-free)", structure, status))
    for structure in ("S_reg", "S_len"):
        q = Query('matches(x, "(00)*")', structure=structure)
        dfa = definable_language(q)
        ok = equivalent(dfa, compile_regex("(00)*", BINARY)) and not is_star_free(dfa)
        rows.append(
            ("(00)* (not star-free)", structure, "definable" if ok else "BUG")
        )
    # f_a: S_left / S_len only.
    for structure, expect in (("S", False), ("S_reg", False), ("S_left", True), ("S_len", True)):
        try:
            Query("eq(add_first(x, '1'), y)", structure=structure)
            got = True
        except SignatureError:
            got = False
        assert got == expect, structure
        rows.append(("f_a graph", structure, "definable" if got else "rejected"))
    # el: S_len only.
    for structure, expect in (("S", False), ("S_left", False), ("S_reg", False), ("S_len", True)):
        try:
            Query("el(x, y)", structure=structure)
            got = True
        except SignatureError:
            got = False
        assert got == expect, structure
        rows.append(("equal length", structure, "definable" if got else "rejected"))
    return rows


def test_fig1_inclusion_diagram(benchmark):
    rows = benchmark(_language_witness_results)
    print_table(
        "Figure 1 (reconstructed): separations between the calculi",
        ["witness", "calculus", "status"],
        rows,
    )
    # The diagram's orderings, as assertions:
    by_key = {(w, s): r for (w, s, r) in rows}
    assert by_key[("(00)* (not star-free)", "S")].startswith("rejected")
    assert by_key[("(00)* (not star-free)", "S_reg")] == "definable"
    assert by_key[("f_a graph", "S_left")] == "definable"
    assert by_key[("f_a graph", "S_reg")] == "rejected"  # incomparability, one way
    assert by_key[("(00)* (not star-free)", "S_left")].startswith("rejected")  # other way
    assert by_key[("equal length", "S_len")] == "definable"


def test_fig1_star_free_dichotomy_on_random_patterns(benchmark):
    """Every S-accepted pattern is star-free; S_reg accepts more."""
    # Note (01)* IS star-free (no 00/11 factors + boundary conditions),
    # while (00)* and even-length are the classic non-aperiodic examples.
    patterns_star_free = ["0.*", ".*1", "0(0|1)*1", "(0|1)(0|1)", "0?1+", "(01)*"]
    patterns_regular = ["(00)*", "((0|1)(0|1))*", "(11)*"]

    def check():
        for p in patterns_star_free:
            q = Query(f'matches(x, "{p}")', structure="S")
            assert language_is_star_free(q)
        for p in patterns_regular:
            with pytest.raises(SignatureError):
                Query(f'matches(x, "{p}")', structure="S")
            q = Query(f'matches(x, "{p}")', structure="S_reg")
            assert not language_is_star_free(q)
        return True

    assert benchmark(check)


def test_fig1_s_left_vs_s_on_queries(benchmark):
    """SELECT a.x FROM R: expressible in RC(S_left), not in RC(S)."""

    def run():
        q = Query(
            "exists adom x: R(x) & eq(add_first(x, '1'), y)", structure="S_left"
        )
        return q.run(DB).rows()

    rows = benchmark(run)
    assert rows == [("100",), ("1000",), ("10000",)]
    with pytest.raises(SignatureError):
        Query("exists adom x: R(x) & eq(add_first(x, '1'), y)", structure="S")
