"""PROP-7: state-safety is decidable for RC(S) and RC(S_len).

Given ``phi`` and ``D``, "is ``phi(D)`` finite?" is decided by compiling
query+database to a convolution automaton and testing language
finiteness.  We benchmark the decision across database sizes and a mixed
safe/unsafe corpus, asserting every verdict.
"""

import pytest

from repro.database import random_database
from repro.logic import parse_formula
from repro.safety import analyze_state_safety
from repro.strings import BINARY
from repro.structures import S, S_len

from _common import fitted_exponent, measure, print_table

CORPUS = [
    ("S", "R(x)", True),
    ("S", "exists adom y: x <<= y", True),
    ("S", "last(x, '0')", False),
    ("S", "!R(x)", False),
    ("S", "exists y: R(y) & y <<= x", False),
    ("S_len", "exists adom y: el(x, y)", True),
    ("S_len", "exists adom y: len_le(y, x)", False),
]

SIZES = [2, 4, 8, 16]


def _structure(name):
    return {"S": S, "S_len": S_len}[name](BINARY)


@pytest.mark.parametrize(
    "sname,text,expected", CORPUS, ids=[t for _s, t, _e in CORPUS]
)
def test_prop7_decide(benchmark, sname, text, expected):
    structure = _structure(sname)
    db = random_database(BINARY, {"R": 1}, 5, max_len=4, seed=9)
    report = benchmark(
        lambda: analyze_state_safety(parse_formula(text), structure, db)
    )
    assert report.safe is expected


def test_prop7_decision_scaling(benchmark):
    formula = parse_formula("exists adom y: x <<= y")
    structure = S(BINARY)

    def sweep():
        times = []
        for n in SIZES:
            db = random_database(BINARY, {"R": 1}, n, max_len=6, seed=4)
            times.append(
                measure(
                    lambda db=db: analyze_state_safety(formula, structure, db),
                    repeats=1,
                )
            )
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent = fitted_exponent(SIZES, times)
    print_table(
        "Proposition 7: state-safety decision cost",
        ["db tuples", "seconds"],
        [(n, f"{t:.5f}") for n, t in zip(SIZES, times)],
    )
    print(f"fitted exponent: {exponent:.2f} (polynomial decision procedure)")
    assert exponent < 3.5
