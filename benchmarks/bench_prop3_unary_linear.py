"""PROP-3: Boolean RC(S) queries on unary databases evaluate in linear time.

The paper (Proposition 3): for unary schemas, Boolean RC(S) queries can
be evaluated in time linear in the database.  Our direct engine achieves
the linear bound for queries whose quantifiers nest through hashed
relation membership (each active-domain pass is O(n) with O(1) atom
checks); we measure such a query across a size sweep and fit the scaling
exponent — the claim is ~1 (band up to 1.5 for interpreter noise).

For contrast we also measure a naively-nested two-quantifier query, which
this engine evaluates quadratically: Proposition 3 says a *smarter*
evaluator exists even for those; the gap is reported, not asserted.
"""

import pytest

from repro.database import unary_database
from repro.eval import DirectEngine
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S

from _common import fitted_exponent, measure, print_table

#: Rank-1 Boolean RC(S) query: every R string ending in 0 is also in S.
LINEAR_QUERY = parse_formula("forall adom x: (R(x) & last(x, '0')) -> S(x)")

#: Rank-2 query (naive evaluation is quadratic; Prop 3 promises better).
NESTED_QUERY = parse_formula(
    "forall adom x: R(x) -> exists adom y: S(y) & y <<= x"
)

SIZES = [100, 200, 400, 800, 1600]


def _database(n: int):
    db = unary_database(BINARY, n, max_len=12, seed=3)
    return db.with_relation(
        "S", [(s,) for (s,) in sorted(db.relation("R"))[: n // 2]]
    )


@pytest.mark.parametrize("n", SIZES)
def test_prop3_unary_boolean_eval(benchmark, n):
    db = _database(n)
    engine = DirectEngine(S(BINARY), db, slack=0)
    benchmark(lambda: engine.decide(LINEAR_QUERY))


def test_prop3_linear_scaling_shape(benchmark):
    def sweep():
        linear_times = []
        nested_times = []
        for n in SIZES:
            db = _database(n)
            engine = DirectEngine(S(BINARY), db, slack=0)
            linear_times.append(measure(lambda: engine.decide(LINEAR_QUERY), repeats=3))
            if n <= 400:
                nested_times.append(
                    measure(lambda: engine.decide(NESTED_QUERY), repeats=1)
                )
        return linear_times, nested_times

    linear_times, nested_times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent = fitted_exponent(SIZES, linear_times)
    print_table(
        "Proposition 3: Boolean RC(S) on unary databases",
        ["n (tuples)", "rank-1 seconds", "rank-2 seconds (naive)"],
        [
            (n, f"{t:.5f}", f"{nested_times[i]:.5f}" if i < len(nested_times) else "-")
            for i, (n, t) in enumerate(zip(SIZES, linear_times))
        ],
    )
    print(f"rank-1 fitted exponent: {exponent:.2f} (paper: linear, ~1)")
    nested_exp = fitted_exponent(SIZES[: len(nested_times)], nested_times)
    print(f"rank-2 naive exponent:  {nested_exp:.2f} (engine is quadratic here; "
          "Prop 3 promises linear with a smarter evaluator)")
    assert exponent < 1.6, f"super-linear scaling: {exponent:.2f}"
