"""DELTA-1: incremental query-after-update vs re-register + cold re-run.

The acceptance claim of ``src/repro/delta/`` (see ``docs/mutability.md``):
after a **small delta** — at most 1% of the database's tuples — answering
a previously-answered query on the new head is at least **5x** faster
than the naive mutable-database story: build the updated database from
scratch, re-register it (fingerprint the content), re-plan, and run the
query against a cold cache.

Two workload shapes, both measured per delta step over a chain:

``untouched_promote``
    A selection on ``R`` while the deltas touch only ``S``.  The
    optimized path applies the delta (O(|delta|) through the MVCC
    store) and answers from the whole-result cache via transition-chain
    promotion — no engine work at all.  The reference path pays
    fingerprinting, planning, and a cold direct-engine run every step.

``join_maintain``
    A prefix join ``R(x) & S(y) & x <<= y`` while the deltas insert into
    ``S``.  Promotion cannot help (the query reads the touched
    relation); the optimized path runs the ΔQ maintenance rules on the
    cached algebra subplans — work proportional to the delta, not the
    database.  The reference path re-runs the full join cold.

The comparison is controlled: both sides answer the *same* sequence of
database states with the same engine, and the benchmark asserts row
agreement on every step.  A separate (untimed) check drives an
automata-engine query across the chain and asserts via the
``delta.automata_promotions`` counter and the automaton-cache stats
that compiled automata are **promoted, never rebuilt**, across deltas.

``--write-baseline`` commits the speedup ratios to ``BENCH_delta.json``
via ``benchmarks/_regress.py``; ``--compare`` exits non-zero when any
measured ratio degrades by more than the baseline's threshold (1.3x) —
``make bench-delta`` runs the full gate and ``make test`` the
``--smoke`` subset.
"""

import random
import statistics
import time

import pytest

from repro.database.instance import Database
from repro.delta import VersionedDatabase
from repro.engine import global_cache
from repro.engine.cache import database_fingerprint
from repro.engine.explain import execute_plan
from repro.engine.metrics import METRICS
from repro.engine.planner import plan_query
from repro.core.query import Query
from repro.strings import BINARY

from _common import print_table, write_explain_json
import _regress

#: Delta steps per measurement; each step is timed individually.
STEPS = 3

#: Acceptance bar at the largest full-sweep size, both shapes.
FULL_SPEEDUP = 5.0

#: (shape, query, engine, full sizes, smoke sizes).  The join's cold
#: reference cost is quadratic in n (it re-runs the full prefix join
#: every step), so its ladder is much shorter than the selection's —
#: the claim is about the *ratio*, which grows with n in both shapes.
SHAPES = [
    (
        "untouched_promote",
        "R(x) & last(x, '0')",
        "direct",
        [1000, 2000, 4000],
        [1000],
    ),
    (
        "join_maintain",
        "R(x) & S(y) & x <<= y",
        "algebra",
        [80, 120, 160],
        [80],
    ),
]


def make_rows(n: int, seed: int, min_len: int = 4, max_len: int = 12) -> set:
    rng = random.Random(seed)
    rows = set()
    while len(rows) < n:
        rows.add(
            "".join(rng.choice("01") for _ in range(rng.randint(min_len, max_len)))
        )
    return rows


def delta_rows(k: int, seed: int) -> set:
    """``k`` long rows unlikely to collide with the base contents."""
    return make_rows(k, seed, min_len=14, max_len=20)


def as_db(model: dict) -> Database:
    return Database(BINARY, {r: {(s,) for s in rows} for r, rows in model.items()})


def run_shape(shape: str, text: str, engine: str, n: int) -> dict:
    """Median per-step times for one shape at one size.

    The optimized side holds a :class:`VersionedDatabase` and the shared
    automaton cache across the chain; the reference side rebuilds,
    re-fingerprints, re-plans, and re-runs cold on every step.
    """
    model = {
        "R": make_rows(n, seed=7 * n),
        "S": make_rows(n, seed=7 * n + 1),
    }
    vdb = VersionedDatabase(as_db(model))
    query = Query(text)
    cache = global_cache()
    # Warm run: the state a long-lived service is in when a delta lands.
    plan = plan_query(query.formula, query.structure, vdb.head.database, force=engine)
    execute_plan(plan, vdb.head.database, cache=cache)

    k = max(1, n // 100)  # the "small delta": <= 1% of a relation
    ref_times, opt_times, agree = [], [], True
    epoch = vdb.head.plan_epoch
    for step in range(STEPS):
        rows = delta_rows(k, seed=97 * n + step)
        # Optimized: O(|delta|) evolution + incremental answer.  The plan
        # is re-made only when the epoch moved (what the service does).
        t0 = time.perf_counter()
        head = vdb.insert("S", rows)
        if head.plan_epoch != epoch:
            epoch = head.plan_epoch
            plan = plan_query(
                query.formula, query.structure, head.database, force=engine
            )
        optimized = execute_plan(plan, head.database, cache=cache)
        opt_times.append(time.perf_counter() - t0)
        model["S"] |= rows
        # Reference: rebuild + re-register + re-plan + cold re-run.
        t0 = time.perf_counter()
        fresh = as_db(model)
        database_fingerprint(fresh)  # what register_database pays
        from repro.engine.cache import AutomatonCache

        ref_plan = plan_query(query.formula, query.structure, fresh, force=engine)
        reference = execute_plan(ref_plan, fresh, cache=AutomatonCache())
        ref_times.append(time.perf_counter() - t0)
        agree = agree and optimized.as_set() == reference.as_set()
    reference_s = statistics.median(ref_times)
    optimized_s = statistics.median(opt_times)
    return {
        "shape": shape,
        "n": n,
        "delta": k,
        "reference_s": reference_s,
        "optimized_s": optimized_s,
        "speedup": reference_s / optimized_s,
        "agree": agree,
    }


def run_sweep(smoke: bool) -> list[dict]:
    return [
        run_shape(shape, text, engine, n)
        for shape, text, engine, full_sizes, smoke_sizes in SHAPES
        for n in (smoke_sizes if smoke else full_sizes)
    ]


def check_automata_survive(n: int = 400) -> dict:
    """Assert (via counters) that deltas never rebuild cached automata.

    Drives a restricted-quantifier automata query across a delta chain
    whose inserts reuse already-active strings (so the active domain is
    stable and promotion is sound), and requires every step to be served
    by transition-chain promotion — the compiled product automaton moves
    to the new fingerprint instead of being reconstructed.
    """
    model = {"R": make_rows(n, seed=11), "S": make_rows(n, seed=12)}
    vdb = VersionedDatabase(as_db(model))
    query = Query("R(x) & forall prefix y: (!(y <<= x) | !last(y, '1'))")
    first = query.result(vdb.head.database, engine="automata").as_set()
    recycled = sorted(model["R"] - model["S"])
    steps = 0
    promotions0 = METRICS.get("delta.automata_promotions")
    size0 = global_cache().stats()["size"]
    for row in recycled[: STEPS]:
        head = vdb.insert("S", [row])
        out = query.result(head.database, engine="automata").as_set()
        assert out == first, "delta on S changed an R-only answer"
        steps += 1
    promoted = METRICS.get("delta.automata_promotions") - promotions0
    grown = global_cache().stats()["size"] - size0
    # Every step must promote at least the query's root product automaton,
    # and promotion moves entries (put under the new fingerprint) rather
    # than compiling new automata — growth stays bounded by the number of
    # promoted keys, far below a per-step rebuild of the whole pipeline.
    assert promoted >= steps, (
        f"only {promoted} automaton promotions across {steps} deltas — "
        "automata are being rebuilt instead of promoted"
    )
    return {"steps": steps, "promotions": promoted, "cache_growth": grown}


def entries_of(rows: list[dict]) -> dict[str, dict]:
    """Regression-gate entries (see ``benchmarks/_regress.py``)."""
    return {
        f"{r['shape']}/n={r['n']}": {
            "speedup": round(r["speedup"], 3),
            "reference_s": round(r["reference_s"], 6),
            "optimized_s": round(r["optimized_s"], 6),
        }
        for r in rows
    }


def conservative_entries(sweeps: list[list[dict]]) -> dict[str, dict]:
    """Per-key minimum speedup across several sweeps, so normal jitter
    sits inside the gate's 1.3x threshold instead of tripping it."""
    merged: dict[str, dict] = {}
    for sweep in sweeps:
        for key, entry in entries_of(sweep).items():
            kept = merged.get(key)
            if kept is None or entry["speedup"] < kept["speedup"]:
                merged[key] = entry
    return merged


def _print_rows(rows: list[dict]) -> None:
    print_table(
        "Query-after-delta (incremental) vs re-register + cold re-run",
        ["shape", "n", "|delta|", "cold s", "incremental s", "speedup", "agree"],
        [
            (
                r["shape"],
                r["n"],
                r["delta"],
                f"{r['reference_s']:.4f}",
                f"{r['optimized_s']:.4f}",
                f"{r['speedup']:.2f}x",
                r["agree"],
            )
            for r in rows
        ],
    )


# ------------------------------------------------------------------- pytest


def _top_rows(rows: list[dict]) -> list[dict]:
    """The largest-size row of each shape (where the 5x bar applies)."""
    tops = {shape: sizes[-1] for shape, _, _, sizes, _ in SHAPES}
    return [r for r in rows if r["n"] == tops[r["shape"]]]


@pytest.mark.slow
def test_delta_speedup_sweep(benchmark):
    """The acceptance sweep: agreement everywhere, >= 5x at the top."""
    rows = benchmark.pedantic(
        lambda: run_sweep(smoke=False), rounds=1, iterations=1
    )
    _print_rows(rows)
    assert all(r["agree"] for r in rows)
    assert all(r["speedup"] >= FULL_SPEEDUP for r in _top_rows(rows))


@pytest.mark.slow
def test_automata_promoted_not_rebuilt(benchmark):
    proof = benchmark.pedantic(check_automata_survive, rounds=1, iterations=1)
    assert proof["promotions"] >= proof["steps"]


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="minimal sizes")
    parser.add_argument("--explain-json", metavar="PATH", default=None)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the full sweep and (re)write BENCH_delta.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate the measured speedups against BENCH_delta.json",
    )
    args = parser.parse_args(argv)

    smoke = args.smoke and not args.write_baseline
    rows = run_sweep(smoke)
    _print_rows(rows)
    proof = check_automata_survive()
    print(
        f"automata survival: {proof['promotions']} promotions over "
        f"{proof['steps']} deltas, cache grew by {proof['cache_growth']} "
        "entries (no rebuilds)"
    )
    entries = entries_of(rows)
    write_explain_json(
        args.explain_json, {"rows": rows, "entries": entries, "automata": proof}
    )

    if not all(r["agree"] for r in rows):
        print("FAIL: incremental and cold answers disagree")
        return 1
    if not smoke:
        for r in _top_rows(rows):
            if r["speedup"] < FULL_SPEEDUP:
                print(
                    f"FAIL: {r['shape']} speedup {r['speedup']:.2f}x < "
                    f"required {FULL_SPEEDUP:g}x at n={r['n']} "
                    f"(|delta|={r['delta']})"
                )
                return 1
    if args.write_baseline:
        extra = [run_sweep(smoke=False) for _ in range(2)]
        _regress.write_baseline(
            _regress.baseline_path("delta"),
            "delta",
            conservative_entries([rows, *extra]),
        )
        return 0
    if args.compare:
        return _regress.gate("delta", entries)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
