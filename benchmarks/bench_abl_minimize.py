"""ABL-3: ablation — Moore vs Hopcroft minimization.

The convolution engine minimizes after every operation; minimization is
its hot spot.  Moore's refinement is O(n^2 |Sigma|) but trivially
auditable; Hopcroft's is O(n |Sigma| log n).  This bench measures both on
growing machines and asserts they produce identical minimal automata.
"""

import pytest

from repro.automata import DFA, compile_regex, dfa_from_finite_language, equivalent
from repro.automata.hopcroft import hopcroft_minimize
from repro.strings import BINARY

from _common import measure, print_table


def _bloated_machine(n_words: int, seed: int = 3) -> DFA:
    """A deliberately non-minimal DFA: finite language double-complemented."""
    import random

    rng = random.Random(seed)
    words = {
        "".join(rng.choice("01") for _ in range(rng.randint(0, 12)))
        for _ in range(n_words)
    }
    return dfa_from_finite_language(BINARY, words).complement().complement()


SIZES = [20, 40, 80, 160]


@pytest.mark.parametrize("n", SIZES)
def test_abl_moore(benchmark, n):
    dfa = _bloated_machine(n)
    benchmark(lambda: dfa.minimize())


@pytest.mark.parametrize("n", SIZES)
def test_abl_hopcroft(benchmark, n):
    dfa = _bloated_machine(n)
    benchmark(lambda: hopcroft_minimize(dfa))


def test_abl_minimize_comparison(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            dfa = _bloated_machine(n)
            moore = dfa.minimize()
            hop = hopcroft_minimize(dfa)
            assert equivalent(moore, hop)
            assert moore.num_states == hop.num_states
            t_moore = measure(lambda: dfa.minimize(), repeats=1)
            t_hop = measure(lambda: hopcroft_minimize(dfa), repeats=1)
            rows.append((n, dfa.num_states, moore.num_states, t_moore, t_hop))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: DFA minimization algorithms",
        ["words", "input states", "minimal states", "Moore s", "Hopcroft s"],
        [(a, b, c, f"{m:.4f}", f"{h:.4f}") for a, b, c, m, h in rows],
    )
