"""RANF-1: the widened fast-engine regime vs the automata baseline.

The acceptance claim of the RANF translation (``docs/ranf_translation.md``):
on queries the old algebra gate rejected — restricted PREFIX/LENGTH
quantifiers, and gamma-bounded queries whose free variables are not
anchored in a positive database atom — the RANF-translated plan run by
the algebra/codegen engines is at least **5x** faster than the exact
automata engine (the engine the planner had to fall back to before this
translation existed) on at least three shapes at the largest benchmarked
size, and the auto planner now actually *chooses* the fast engine there
(counter-verified via ``planner.backend.*.chosen``).

Six workload shapes, all rejected by the pre-RANF gate
(``algebra_eligible(formula)`` without a structure, plus
``restricted_output_gate``):

``prefix_quant`` / ``prefix_join`` / ``prefix_pair``
    Anchored joins under one or two ``exists prefix`` quantifiers — the
    restricted-quantifiers branch; the finite half fuses into a codegen
    pipeline (``PrefixOp`` expansion + hash joins).

``gamma_join``
    ``eq(x, y) & R(y, z) & !U(x)`` — ``x`` is unanchored, so the old
    direct/algebra gates both refused; the gamma-bounded branch certifies
    ``x`` through the ``eq`` implication and runs a hash join against the
    gamma ball, with the paired "infinite?" query checked first.

``length_quant`` / ``similar_setop``
    LENGTH-quantified and SIMILAR TO set-operation shapes (the SQL
    layer's translation, RC(S_len)/RC(S_reg)).  Newly *eligible*, but the
    automata engine stays genuinely faster here and the sweep records the
    honest sub-1x ratios.  On ``similar_setop`` the cost model correctly
    keeps choosing ``automata`` at the full sizes.  On ``length_quant``
    it does not: the LENGTH membership plan is quadratic
    (body × adom probe) and the automata estimator's state-count units
    are so pessimistic on LENGTH quantifiers (~1e12 vs ~1e5 row-ops)
    that no per-row constant can bridge them — recalibrating those units
    would reshuffle every historical automata-vs-direct decision, so the
    mis-plan is recorded here and tracked in ROADMAP.md instead of
    papered over.

Both sides answer from the same formula at the same slack and the
benchmark asserts row agreement at every size.  ``--write-baseline``
commits the ratios to ``BENCH_ranf.json`` via ``benchmarks/_regress.py``;
``--compare`` exits non-zero when any ratio degrades by more than the
baseline threshold (1.3x) — ``make bench-ranf`` runs the full gate and
``make test`` the ``--smoke`` subset.
"""

import pytest

from repro.database import random_database
from repro.engine.cache import AutomatonCache
from repro.engine.explain import execute_plan
from repro.engine.planner import Planner, algebra_eligible
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.canonical import canonicalize
from repro.sql.similar import similar_to_regex_text
from repro.strings import BINARY
from repro.structures.catalog import by_name

from _common import measure, print_table, write_explain_json
import _regress

#: Acceptance bar at the largest full-sweep size on the fast shapes.
FULL_SPEEDUP = 5.0

#: How many of the shapes marked ``fast`` must clear the bar.
FAST_SHAPES_REQUIRED = 3

_SIM_STARTS_0 = similar_to_regex_text("0%")
_SIM_ENDS_11 = similar_to_regex_text("%11")

#: (shape, query, structure name, relation arities, max string length,
#:  seed, full sizes, smoke sizes, flip expectation).  The flip field is
#:  what the auto planner must do at the shape's top full size:
#:  ``"fast"`` — pick algebra/codegen AND clear the 5x bar (and the >=1x
#:  smoke floor); ``"fast-chosen"`` — pick algebra/codegen (the coverage
#:  proof) with no speed bar; ``"automata"`` — correctly keep automata.
SHAPES = [
    (
        "prefix_quant",
        "R(x) & (exists prefix y: T(y, x))",
        "S",
        {"R": 1, "T": 2},
        16,
        11,
        [500, 1000, 2000],
        [300],
        "fast",
    ),
    (
        "prefix_join",
        "R(x, z) & (exists prefix y: T(y, x))",
        "S",
        {"R": 2, "T": 2},
        16,
        11,
        [500, 1000, 2000],
        [300],
        "fast",
    ),
    (
        "prefix_pair",
        "R(x) & (exists prefix y: T(y, x)) & (exists prefix w: U(w, x))",
        "S",
        {"R": 1, "T": 2, "U": 2},
        16,
        11,
        [500, 1000, 2000],
        [300],
        "fast",
    ),
    (
        "gamma_join",
        "eq(x, y) & R(y, z) & !U(x)",
        "S",
        {"R": 2, "U": 1},
        16,
        11,
        [500, 1000, 2000],
        [300],
        "fast-chosen",
    ),
    (
        "length_quant",
        "R(x) & (exists len y: T(y, x))",
        "S_len",
        {"R": 1, "T": 2},
        8,
        11,
        [100, 200, 400],
        [100],
        "fast-chosen",
    ),
    (
        "similar_setop",
        f'eq(x, y) & R(y) & matches(x, "{_SIM_STARTS_0}")'
        f' & !matches(x, "{_SIM_ENDS_11}")',
        "S_reg",
        {"R": 1},
        16,
        11,
        [250, 500, 1000],
        [250],
        "automata",
    ),
]

_SLACK = 1


def _shape(name: str):
    for row in SHAPES:
        if row[0] == name:
            return row
    raise KeyError(name)


def _db(shape: str, n: int):
    _, _q, _s, arities, max_len, seed, _full, _smoke, _flip = _shape(shape)
    return random_database(BINARY, arities, n, max_len=max_len, seed=seed)


def _parsed(shape: str):
    """(canonical formula, structure) for one shape."""
    _, query, struct_name, *_rest = _shape(shape)
    return canonicalize(parse_formula(query)), by_name(struct_name, BINARY)


def _assert_old_gate_rejected(shape: str, db) -> None:
    """Every benchmarked shape sat outside the pre-RANF fast regime."""
    from repro.engine.backend import restricted_output_gate

    formula, _structure = _parsed(shape)
    old_ok = algebra_eligible(formula) and restricted_output_gate(formula, db)[0]
    assert not old_ok, f"{shape}: the old gate already accepted this query"


def run_shape(shape: str, n: int) -> dict:
    """Median times for one shape at one size, fast engine vs automata.

    The fast side runs the auto plan when the planner picks
    algebra/codegen, else a forced-``algebra`` plan (the slow shapes,
    where automata stays the auto choice and we record the honest
    ratio).  Fresh automaton/result caches per repeat; the RANF
    translation cache stays warm across repeats — the steady state the
    planner's amortized ``ranf_setup`` prices.
    """
    db = _db(shape, n)
    formula, structure = _parsed(shape)
    _assert_old_gate_rejected(shape, db)

    auto_plan = Planner(structure, db).plan(formula, slack=_SLACK)
    if auto_plan.engine in ("algebra", "codegen"):
        fast_plan = auto_plan
    else:
        fast_plan = Planner(structure, db).plan(
            formula, slack=_SLACK, force="algebra"
        )
    fast_rows = [None]
    auto_rows = [None]

    def fast_run():
        result = execute_plan(fast_plan, db, cache=AutomatonCache(maxsize=256))
        fast_rows[0] = result.as_set()

    def automata_run():
        auto_rows[0] = AutomataEngine(structure, db, slack=_SLACK).run(
            formula
        ).as_set()

    fast_s = measure(fast_run, repeats=3)
    automata_s = measure(automata_run, repeats=3)
    return {
        "shape": shape,
        "n": n,
        "rows": len(fast_rows[0]),
        "agree": fast_rows[0] == auto_rows[0],
        "auto_engine": auto_plan.engine,
        "fast_engine": fast_plan.engine,
        "automata_s": automata_s,
        "fast_s": fast_s,
        "speedup": automata_s / max(fast_s, 1e-9),
    }


def run_sweep(smoke: bool) -> list[dict]:
    return [
        run_shape(shape, n)
        for shape, _q, _st, _a, _m, _sd, full, smoke_sizes, _flip in SHAPES
        for n in (smoke_sizes if smoke else full)
    ]


def entries_of(rows: list[dict]) -> dict[str, dict]:
    """Regression-gate entries (see ``benchmarks/_regress.py``)."""
    return {
        f"{r['shape']}/n={r['n']}": {
            "speedup": round(r["speedup"], 3),
            "reference_s": round(r["automata_s"], 6),
            "optimized_s": round(r["fast_s"], 6),
        }
        for r in rows
    }


def conservative_entries(sweeps: list[list[dict]]) -> dict[str, dict]:
    """Per-key minimum speedup across several sweeps, so normal jitter
    sits inside the gate's 1.3x threshold instead of tripping it."""
    merged: dict[str, dict] = {}
    for sweep in sweeps:
        for key, entry in entries_of(sweep).items():
            kept = merged.get(key)
            if kept is None or entry["speedup"] < kept["speedup"]:
                merged[key] = entry
    return merged


def _top_fast_rows(rows: list[dict]) -> list[dict]:
    """The largest-size row of each shape marked fast (the 5x bar)."""
    tops = {
        shape: sizes[-1]
        for shape, _q, _st, _a, _m, _sd, sizes, _sm, flip in SHAPES
        if flip == "fast"
    }
    return [r for r in rows if tops.get(r["shape"]) == r["n"]]


def _print_rows(rows: list[dict]) -> None:
    print_table(
        "RANF-translated fast engine vs exact automata baseline",
        ["shape", "n", "out rows", "auto choice", "fast engine",
         "automata s", "fast s", "speedup"],
        [
            (
                r["shape"],
                r["n"],
                r["rows"],
                r["auto_engine"],
                r["fast_engine"],
                f"{r['automata_s']:.4f}",
                f"{r['fast_s']:.4f}",
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
    )


def check_planner_flips() -> dict:
    """The acceptance EXPLAIN: for every fast shape at its top size the
    auto planner picks algebra/codegen (counter-verified through
    ``planner.backend.*.chosen``) even though the old gate rejected the
    formula, and a forced-algebra EXPLAIN of the gamma shape shows the
    ``RanfPair`` node with its branch annotation."""
    from repro.core import Query
    from repro.engine import METRICS, global_cache

    flips = {}
    for shape, query, struct_name, _a, _m, _sd, sizes, _sm, flip in SHAPES:
        n = sizes[-1]
        db = _db(shape, n)
        _assert_old_gate_rejected(shape, db)
        formula, structure = _parsed(shape)
        global_cache().reset()
        before = METRICS.snapshot()
        plan = Planner(structure, db).plan(formula, slack=_SLACK)
        delta = {
            k: v - before.get(k, 0)
            for k, v in METRICS.snapshot().items()
            if v != before.get(k, 0)
        }
        chosen_counter = f"planner.backend.{plan.engine}.chosen"
        assert delta.get(chosen_counter, 0) >= 1, (
            f"{shape}: {chosen_counter} did not move (delta {delta})"
        )
        if flip in ("fast", "fast-chosen"):
            assert plan.engine in ("algebra", "codegen"), (
                f"{shape}: expected a fast-engine flip at n={n}, "
                f"planner chose {plan.engine} (costs {plan.costs})"
            )
        else:
            assert plan.engine == "automata", (
                f"{shape}: cost model should keep automata at n={n}, "
                f"planner chose {plan.engine} (costs {plan.costs})"
            )
        flips[shape] = {"n": n, "engine": plan.engine, "costs": plan.costs}

    # The RanfPair EXPLAIN proof on the gamma-bounded shape.
    shape = "gamma_join"
    db = _db(shape, _shape(shape)[6][0])
    query = Query(_shape(shape)[1], structure="S")
    global_cache().reset()
    report = query.explain(db, engine="algebra", slack=_SLACK)
    tree = report.to_dict()["tree"]
    assert tree["kind"] == "RanfPair", f"EXPLAIN root is {tree['kind']}"
    assert tree["annotations"]["branch"] == "gamma-bounded"
    return {"flips": flips, "explain": report.to_dict()}


# ------------------------------------------------------------------- pytest


@pytest.mark.parametrize("shape", [s[0] for s in SHAPES])
def test_ranf_shape_agreement(benchmark, shape):
    n = _shape(shape)[7][0]
    row = benchmark.pedantic(
        lambda: run_shape(shape, n), rounds=1, iterations=1
    )
    assert row["agree"]


def test_ranf_speedup(benchmark):
    """The acceptance sweep: agreement at every size, >= 5x at the top
    on at least three fast shapes."""
    rows = benchmark.pedantic(
        lambda: run_sweep(smoke=False), rounds=1, iterations=1
    )
    _print_rows(rows)
    assert all(r["agree"] for r in rows)
    cleared = [r for r in _top_fast_rows(rows) if r["speedup"] >= FULL_SPEEDUP]
    assert len(cleared) >= FAST_SHAPES_REQUIRED


# --------------------------------------------------------------- standalone


def main(argv=None) -> int:
    import argparse

    from repro.engine import METRICS, global_cache

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="minimal sizes")
    parser.add_argument("--explain-json", metavar="PATH", default=None)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="run the full sweep and (re)write BENCH_ranf.json",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="gate the measured speedups against BENCH_ranf.json",
    )
    args = parser.parse_args(argv)

    METRICS.reset()
    global_cache().reset()
    smoke = args.smoke and not args.write_baseline
    rows = run_sweep(smoke)
    _print_rows(rows)
    proof = check_planner_flips() if not smoke else None
    entries = entries_of(rows)
    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_ranf",
            "rows": rows,
            "entries": entries,
            "planner_flips": proof["flips"] if proof else None,
            "explain": proof["explain"] if proof else None,
            "metrics": METRICS.snapshot(),
        },
    )

    if not all(r["agree"] for r in rows):
        print("FAIL: RANF fast engine and automata baseline disagree")
        return 1
    if smoke:
        # Smoke asserts correctness plus a sane floor: the fast shapes
        # must not be slower than automata even at tiny sizes.
        slow = [
            r for r in rows
            if _shape(r["shape"])[8] == "fast" and r["speedup"] < 1.0
        ]
        for r in slow:
            print(
                f"FAIL: {r['shape']} speedup {r['speedup']:.2f}x < 1x "
                f"at smoke size n={r['n']}"
            )
        if slow:
            return 1
        return 0
    cleared = [r for r in _top_fast_rows(rows) if r["speedup"] >= FULL_SPEEDUP]
    if len(cleared) < FAST_SHAPES_REQUIRED:
        print(
            f"FAIL: only {len(cleared)} fast shapes cleared "
            f"{FULL_SPEEDUP:g}x (need {FAST_SHAPES_REQUIRED})"
        )
        return 1
    if args.write_baseline:
        extra = [run_sweep(smoke=False) for _ in range(2)]
        _regress.write_baseline(
            _regress.baseline_path("ranf"),
            "ranf",
            conservative_entries([rows, *extra]),
        )
        return 0
    if args.compare:
        return _regress.gate("ranf", entries)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
