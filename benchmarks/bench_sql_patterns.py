"""SEC-4: LIKE fits RC(S), SIMILAR fits RC(S_reg) — and both run fast.

The paper's Section 4 grounding: LIKE languages are star-free (checked by
the Schuetzenberger test on every compiled pattern), SIMILAR reaches all
regular languages.  We benchmark pattern compilation and matching
throughput, with Python's ``re`` module as the baseline comparator — the
shape claim is that DFA matching is linear and within an order of
magnitude of ``re`` on these workloads.
"""

import random
import re

import pytest

from repro.automata import is_star_free
from repro.sql import compile_like, compile_similar
from repro.strings import BINARY

from _common import measure, print_table, standalone_args, write_explain_json

LIKE_PATTERNS = ["0%", "%1", "%01%", "0_1%0", "%010%1"]
SIMILAR_PATTERNS = ["(00)*", "0%(11)*", "((0|1)(0|1))*", "0+1?0%"]


def _workload(n: int, max_len: int = 30, seed: int = 0) -> list[str]:
    rng = random.Random(seed)
    return [
        "".join(rng.choice("01") for _ in range(rng.randint(0, max_len)))
        for _ in range(n)
    ]


@pytest.mark.parametrize("pattern", LIKE_PATTERNS)
def test_like_compile_and_match(benchmark, pattern):
    strings = _workload(500)
    dfa = compile_like(pattern, BINARY)
    assert is_star_free(dfa)  # Section 4: LIKE is star-free, always
    benchmark(lambda: sum(1 for s in strings if dfa.accepts(s)))


@pytest.mark.parametrize("pattern", SIMILAR_PATTERNS)
def test_similar_compile_and_match(benchmark, pattern):
    strings = _workload(500)
    dfa = compile_similar(pattern, BINARY)
    benchmark(lambda: sum(1 for s in strings if dfa.accepts(s)))


def test_like_vs_re_baseline(benchmark):
    strings = _workload(2000)

    def compare():
        rows = []
        for pattern in LIKE_PATTERNS:
            dfa = compile_like(pattern, BINARY)
            regex = re.compile(
                "^" + pattern.replace("%", ".*").replace("_", ".") + "$"
            )
            t_dfa = measure(lambda: [dfa.accepts(s) for s in strings], repeats=1)
            t_re = measure(lambda: [bool(regex.match(s)) for s in strings], repeats=1)
            matches_dfa = sum(dfa.accepts(s) for s in strings)
            matches_re = sum(bool(regex.match(s)) for s in strings)
            assert matches_dfa == matches_re, pattern
            rows.append((pattern, f"{t_dfa:.4f}", f"{t_re:.4f}", matches_dfa))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_table(
        "LIKE matching: library DFA vs Python re (2000 strings)",
        ["pattern", "dfa s", "re s", "matches"],
        rows,
    )


def test_similar_exceeds_like(benchmark):
    """(00)* is SIMILAR-expressible but no LIKE pattern matches it."""

    def check():
        dfa = compile_similar("(00)*", BINARY)
        assert not is_star_free(dfa)
        # Every LIKE pattern is star-free, so none equals (00)*.
        for pattern in LIKE_PATTERNS + ["%", "", "00%00"]:
            assert is_star_free(compile_like(pattern, BINARY))
        return True

    assert benchmark(check)


# --------------------------------------------------------- standalone entry


def main(argv=None) -> int:
    """Standalone run: compile/match the pattern corpus and dump the
    pattern statistics plus the automata metrics counters as JSON."""
    from repro.engine import METRICS

    args = standalone_args("SQL pattern (LIKE/SIMILAR) throughput", argv)
    n = 100 if args.smoke else 2000
    strings = _workload(n)
    METRICS.reset()
    rows = []
    corpus = [("LIKE", compile_like, LIKE_PATTERNS), (
        "SIMILAR", compile_similar, SIMILAR_PATTERNS)]
    for kind, compiler, patterns in corpus:
        for pattern in patterns:
            with METRICS.timer(f"sql.{kind.lower()}.compile_seconds"):
                dfa = compiler(pattern, BINARY)
            seconds = measure(lambda: [dfa.accepts(s) for s in strings], repeats=1)
            matches = sum(dfa.accepts(s) for s in strings)
            METRICS.inc("sql.patterns_compiled")
            METRICS.inc("sql.pattern_states", dfa.num_states)
            METRICS.inc("sql.matches", matches)
            METRICS.add_time("sql.match_seconds", seconds)
            rows.append(
                {
                    "kind": kind,
                    "pattern": pattern,
                    "states": dfa.num_states,
                    "star_free": is_star_free(dfa),
                    "matches": matches,
                    "seconds": seconds,
                }
            )
    print_table(
        f"SQL patterns over {n} strings",
        ["kind", "pattern", "states", "star-free", "matches", "s"],
        [
            (
                r["kind"],
                r["pattern"],
                r["states"],
                r["star_free"],
                r["matches"],
                f"{r['seconds']:.4f}",
            )
            for r in rows
        ],
    )
    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_sql_patterns",
            "workload_size": n,
            "rows": rows,
            "metrics": METRICS.snapshot(),
        },
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
