"""THM-4: safe RC(S) = RA(S) and safe RC(S_len) = RA(S_len).

Both directions, executed:

* calculus -> algebra: the compiler emits an RA plan whose output matches
  the exact engine tuple-for-tuple on random databases;
* algebra -> calculus: hand-built plans (including ``down``) translate to
  formulas with identical outputs;
* the ``down_i`` cost note (Section 6.2: "very expensive ... unavoidable")
  is measured: the operator's output grows exponentially with the longest
  string.
"""

import pytest

from repro.algebra import (
    BaseRel,
    DownOp,
    PrefixOp,
    Project,
    Select,
    col,
    compile_query,
    to_calculus,
)
from repro.database import Database, random_database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.dsl import last
from repro.strings import BINARY
from repro.structures import S, S_len

from _common import growth_ratios, measure, print_table

CALCULUS_CORPUS = [
    ("S", "R(x) & last(x, '0')"),
    ("S", "exists adom y: E(x, y) & last(y, '1')"),
    ("S", "exists adom y: R(y) & x <<= y"),
    ("S", "R(x) & !S(x)"),
    ("S_len", "R(x) & exists adom y: S(y) & el(x, y)"),
]


def _structure(name):
    return {"S": S, "S_len": S_len}[name](BINARY)


@pytest.mark.parametrize(
    "sname,text", CALCULUS_CORPUS, ids=[t for _s, t in CALCULUS_CORPUS]
)
def test_thm4_compiled_plan_eval(benchmark, sname, text):
    structure = _structure(sname)
    db = random_database(BINARY, {"R": 1, "S": 1, "E": 2}, 4, max_len=3, seed=2)
    compiled = compile_query(parse_formula(text), structure, db.schema, slack=2)
    got = benchmark(lambda: compiled.evaluate(db))
    expected = AutomataEngine(structure, db).run(parse_formula(text))
    assert got == expected.as_set()


def test_thm4_both_directions(benchmark):
    def check():
        rows = []
        # calculus -> algebra
        for sname, text in CALCULUS_CORPUS:
            structure = _structure(sname)
            ok = True
            for seed in range(3):
                db = random_database(
                    BINARY, {"R": 1, "S": 1, "E": 2}, 4, max_len=3, seed=seed
                )
                compiled = compile_query(
                    parse_formula(text), structure, db.schema, slack=2
                )
                expected = AutomataEngine(structure, db).run(parse_formula(text))
                ok = ok and compiled.evaluate(db) == expected.as_set()
            rows.append(("RC->RA", text[:40], "match" if ok else "FAIL"))
        # algebra -> calculus
        plans = [
            ("RA(S)", S(BINARY), Select(BaseRel("R", 1), last(col(0), "0"))),
            ("RA(S)", S(BINARY), Project(PrefixOp(BaseRel("R", 1), 0), (1,))),
            ("RA(S_len)", S_len(BINARY), DownOp(BaseRel("R", 1), 0)),
        ]
        for label, structure, plan in plans:
            db = random_database(BINARY, {"R": 1}, 3, max_len=3, seed=5)
            expected = plan.evaluate(db, structure)
            got = AutomataEngine(structure, db).run(to_calculus(plan))
            rows.append(
                (
                    "RA->RC",
                    f"{label}: {str(plan)[:32]}",
                    "match" if got.as_set() == expected else "FAIL",
                )
            )
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    print_table("Theorem 4: safe RC(M) = RA(M)", ["direction", "query/plan", "result"], rows)
    assert all(r[2] == "match" for r in rows)


def test_thm4_down_operator_blowup(benchmark):
    """The Section 6.2 cost note, measured."""
    lengths = [6, 8, 10, 12]

    def sweep():
        rows = []
        for m in lengths:
            db = Database(BINARY, {"R": {("0" * m,)}})
            plan = DownOp(BaseRel("R", 1), 0)
            t = measure(lambda: plan.evaluate(db, S_len(BINARY)), repeats=1)
            rows.append((m, t, BINARY.count_up_to(m)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "down_i blow-up (RA(S_len))",
        ["|s|", "seconds", "output rows"],
        [(m, f"{t:.5f}", c) for m, t, c in rows],
    )
    ratios = growth_ratios([t for _m, t, _c in rows])
    print(f"growth per +2 length: {['%.1f' % r for r in ratios]} (expected ~4x)")
    assert rows[-1][2] == BINARY.count_up_to(lengths[-1])
    assert ratios[-1] > 2.0
