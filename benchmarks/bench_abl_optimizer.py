"""ABL-2: ablation — algebra plan optimization and CSE evaluation.

The calculus->algebra compiler repeats its ``gamma``-bound subplan once
per bounded column and negation.  This bench quantifies what rewriting
and common-subexpression evaluation recover.  Measured finding (recorded
in EXPERIMENTS.md): the repeated bound subplans are *cheap* relative to
the ``bound x bound`` products the translation genuinely needs, so CSE
and the rewrites give only a modest constant-factor win — the products
are the real cost, exactly as the paper's range-restricted semantics
predicts (the bound is the output-space, and you pay for it once per
bounded column no matter how cleverly you share subtrees).
"""

import pytest

from repro.algebra import compile_query, evaluate_with_cse, optimize
from repro.database import random_database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S

from _common import measure, print_table

QUERY = parse_formula(
    "R(x) & !S(x) & exists adom y: S(y) & y <<= x | R(x) & last(x, '1')"
)
SIZES = [4, 8, 16, 32]


def _setup(n):
    db = random_database(BINARY, {"R": 1, "S": 1}, n, max_len=5, seed=17)
    compiled = compile_query(QUERY, S(BINARY), db.schema, slack=1)
    return db, compiled


@pytest.mark.parametrize("n", SIZES[:2])
def test_abl_naive_plan_eval(benchmark, n):
    db, compiled = _setup(n)
    benchmark.pedantic(
        lambda: compiled.plan.evaluate(db, S(BINARY)), rounds=2, iterations=1
    )


@pytest.mark.parametrize("n", SIZES)
def test_abl_optimized_cse_eval(benchmark, n):
    db, compiled = _setup(n)
    plan = optimize(compiled.plan)
    benchmark(lambda: evaluate_with_cse(plan, db, S(BINARY)))


def test_abl_optimizer_comparison(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            db, compiled = _setup(n)
            structure = S(BINARY)
            expected = AutomataEngine(structure, db).run(QUERY).as_set()
            optimized = optimize(compiled.plan)
            t_naive = measure(
                lambda: compiled.plan.evaluate(db, structure), repeats=1
            )
            t_cse = measure(
                lambda: evaluate_with_cse(compiled.plan, db, structure), repeats=1
            )
            t_both = measure(
                lambda: evaluate_with_cse(optimized, db, structure), repeats=1
            )
            assert compiled.plan.evaluate(db, structure) == expected
            assert evaluate_with_cse(optimized, db, structure) == expected
            rows.append((n, t_naive, t_cse, t_both))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: compiled-plan evaluation strategies",
        ["n", "naive s", "CSE s", "optimize+CSE s", "speedup"],
        [
            (n, f"{a:.4f}", f"{b:.4f}", f"{c:.4f}", f"{a / c:.1f}x")
            for n, a, b, c in rows
        ],
    )
    # CSE must never lose to naive evaluation on these shapes.
    assert all(c <= a * 1.5 for _n, a, _b, c in rows)
