"""ABL-1: ablation — exact automata engine vs collapsed direct engine.

DESIGN.md's key design decision: the convolution-automata engine is the
*reference* semantics (always exact, decides safety, handles natural
quantifiers) and the direct engine is the *practical* evaluator for
collapsed queries.  This ablation quantifies the trade: identical answers,
very different scaling in database size and alphabet size.
"""

import pytest

from repro.database import random_database
from repro.eval import AutomataEngine, DirectEngine, collapse
from repro.logic import parse_formula
from repro.strings import Alphabet, BINARY
from repro.structures import S
from repro.structures.catalog import S as S_factory

from _common import (
    fitted_exponent,
    measure,
    print_table,
    standalone_args,
    write_explain_json,
)

QUERY = "forall x: R(x) -> exists y: y <<= x & S(y)"
SIZES = [2, 4, 8, 16, 32]


def _db(n: int, alphabet=BINARY):
    return random_database(alphabet, {"R": 1, "S": 1}, n, max_len=5, seed=21)


@pytest.mark.parametrize("n", SIZES[:3])
def test_abl_automata_engine(benchmark, n):
    formula = parse_formula(QUERY)
    db = _db(n)
    engine = AutomataEngine(S(BINARY), db)
    benchmark(lambda: engine.decide(formula))


@pytest.mark.parametrize("n", SIZES)
def test_abl_direct_engine(benchmark, n):
    structure = S(BINARY)
    q = collapse(parse_formula(QUERY), structure, slack=2)
    db = _db(n)
    engine = DirectEngine(structure, db, slack=q.slack)
    benchmark(lambda: engine.decide(q.formula))


def test_abl_engines_compared(benchmark):
    structure = S(BINARY)
    formula = parse_formula(QUERY)
    q = collapse(formula, structure, slack=2)

    def sweep():
        rows = []
        for n in SIZES:
            db = _db(n)
            t_auto = measure(
                lambda: AutomataEngine(structure, db).decide(formula), repeats=1
            )
            t_direct = measure(
                lambda: DirectEngine(structure, db, slack=q.slack).decide(q.formula),
                repeats=1,
            )
            same = AutomataEngine(structure, db).decide(formula) == DirectEngine(
                structure, db, slack=q.slack
            ).decide(q.formula)
            rows.append((n, t_auto, t_direct, same))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: automata (exact) vs direct (collapsed) engine",
        ["n", "automata s", "direct s", "answers agree"],
        [(n, f"{a:.4f}", f"{d:.4f}", s) for n, a, d, s in rows],
    )
    assert all(r[3] for r in rows)
    auto_exp = fitted_exponent(SIZES, [a for _n, a, _d, _s in rows])
    direct_exp = fitted_exponent(SIZES, [d for _n, _a, d, _s in rows])
    print(f"automata exponent: {auto_exp:.2f}; direct exponent: {direct_exp:.2f}")

    # Alphabet-size ablation: the convolution column alphabet grows as
    # (|Sigma|+1)^arity, the direct engine only linearly in |Sigma|.
    alpha_rows = []
    for symbols in ["01", "0123", "012345"]:
        alphabet = Alphabet(symbols)
        structure_a = S_factory(alphabet)
        db = _db(4, alphabet)
        t_auto = measure(
            lambda: AutomataEngine(structure_a, db).decide(formula), repeats=1
        )
        t_direct = measure(
            lambda: DirectEngine(structure_a, db, slack=2).decide(q.formula),
            repeats=1,
        )
        alpha_rows.append((len(symbols), f"{t_auto:.4f}", f"{t_direct:.4f}"))
    print_table(
        "Ablation: alphabet size (n=4 tuples)",
        ["|Sigma|", "automata s", "direct s"],
        alpha_rows,
    )


# --------------------------------------------------------- standalone entry


def main(argv=None) -> int:
    """Standalone run: compare engines (and the planner) on a small sweep,
    dumping metrics and EXPLAIN trees as JSON with ``--explain-json``."""
    from repro.core.query import Query
    from repro.engine import METRICS, global_cache

    args = standalone_args(
        "Engine ablation: automata vs direct vs planner choice", argv
    )
    sizes = SIZES[:2] if args.smoke else SIZES
    # A planner-friendly variant of QUERY: restricted quantifiers, anchored
    # output — exactly the shape the planner sends to the direct engine.
    open_query = "R(x) & exists adom y: S(y) & y <<= x"
    METRICS.reset()
    global_cache().reset()
    rows = []
    explains = []
    for n in sizes:
        db = _db(n)
        q = Query(open_query, structure="S")
        t_auto_engine = measure(lambda: q.run(db), repeats=1)
        t_forced_auto = measure(lambda: q.run(db, engine="automata"), repeats=1)
        t_forced_dir = measure(lambda: q.run(db, engine="direct"), repeats=1)
        report = q.explain(db)
        explains.append({"n": n, "explain": report.to_dict()})
        rows.append(
            {
                "n": n,
                "planner_engine": report.plan.engine,
                "auto_s": t_auto_engine,
                "forced_automata_s": t_forced_auto,
                "forced_direct_s": t_forced_dir,
            }
        )
    print_table(
        "Planner-selected vs forced engines",
        ["n", "chosen", "auto s", "automata s", "direct s"],
        [
            (
                r["n"],
                r["planner_engine"],
                f"{r['auto_s']:.4f}",
                f"{r['forced_automata_s']:.4f}",
                f"{r['forced_direct_s']:.4f}",
            )
            for r in rows
        ],
    )
    write_explain_json(
        args.explain_json,
        {
            "benchmark": "bench_abl_engines",
            "query": open_query,
            "rows": rows,
            "explains": explains,
            "cache": global_cache().stats(),
            "metrics": METRICS.snapshot(),
        },
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
