"""PROP-2 / THM-1: the restricted quantifier collapse for RC(S), executably.

Theorem 1 (with Proposition 2): every RC(S) formula is equivalent to one
whose quantification is prefix-restricted.  We verify the equivalence on
a corpus of natural-quantifier sentences across random databases — the
automata engine computes the natural semantics exactly, the direct engine
evaluates the collapsed form — and benchmark both sides (the collapse is
what buys the polynomial evaluation).
"""

import pytest

from repro.database import random_database
from repro.eval import AutomataEngine, DirectEngine, collapse
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S

from _common import print_table

CORPUS = [
    "exists x: R(x) & last(x, '0')",
    "exists x: R(x) & exists y: y << x & last(y, '1')",
    "forall x: R(x) -> exists y: y <<= x & S(y)",
    "exists x: R(x) & !exists y: S(y) & y <<= x",
    "forall x: (exists y: R(y) & x <<= y) -> (x = eps | exists z: z << x)",
]


def _dbs():
    return [
        random_database(BINARY, {"R": 1, "S": 1}, 4, max_len=4, seed=seed)
        for seed in range(4)
    ]


@pytest.mark.parametrize("idx", range(len(CORPUS)))
def test_thm1_collapsed_eval(benchmark, idx):
    """Benchmark the collapsed (polynomial) evaluation."""
    formula = parse_formula(CORPUS[idx])
    structure = S(BINARY)
    q = collapse(formula, structure)
    db = _dbs()[0]
    engine = DirectEngine(structure, db, slack=min(q.slack, 4))
    benchmark(lambda: engine.decide(q.formula))


def test_thm1_collapse_agreement(benchmark):
    structure = S(BINARY)

    def check():
        rows = []
        for text in CORPUS:
            formula = parse_formula(text)
            q = collapse(formula, structure)
            agreements = 0
            for db in _dbs():
                natural = AutomataEngine(structure, db).decide(formula)
                collapsed = DirectEngine(
                    structure, db, slack=min(q.slack, 4)
                ).decide(q.formula)
                agreements += natural == collapsed
            rows.append((text[:48], f"{agreements}/4", q.slack))
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    print_table(
        "Theorem 1: natural semantics == prefix-collapsed semantics",
        ["sentence", "agreement", "slack k"],
        rows,
    )
    assert all(r[1] == "4/4" for r in rows), rows
