"""FIG-2: the summary-of-results table.

Figure 2 of the paper tabulates, per calculus: the quantifier collapse,
data complexity, effective syntax for safe queries, the capturing
algebra, and decidability of state-safety and of conjunctive-query
safety.  This bench *executes* one representative check per cell and
prints the reconstructed table; RC_concat's row shows the contrast
(Proposition 1 / Corollary 1).
"""

import pytest

from repro import Query, StringDatabase, UndecidableError
from repro.algebra import FOR_STRUCTURE, compile_query
from repro.concat import decide_state_safety
from repro.database import Database
from repro.eval import AutomataEngine, DirectEngine, collapse
from repro.logic import parse_formula
from repro.logic.dsl import prefix, rel
from repro.logic.formulas import TrueF
from repro.logic.terms import Var
from repro.safety import ConjunctiveQuery, cq_is_safe, enumerate_safe_queries, is_safe_on
from repro.strings import BINARY
from repro.structures import by_name

from _common import print_table

DB = StringDatabase("01", {"R": {"01", "110", "0011"}, "S": {"0", "10"}})

#: One natural-quantifier sentence per calculus for the collapse check.
COLLAPSE_SENTENCES = {
    "S": "exists x: R(x) & exists y: y << x & last(y, '1')",
    "S_left": "exists x: R(x) & exists y: eq(add_first(x, '0'), y) & !R(y)",
    "S_reg": "exists x: R(x) & matches(x, '(00)*1(0|1)*')",
    "S_len": "exists x: R(x) & exists y: S(y) & el(x, y)",
}

#: A safe, collapsed query per calculus for the algebra check.
ALGEBRA_QUERIES = {
    "S": "R(x) & last(x, '1')",
    "S_left": "exists adom x: R(x) & eq(add_first(x, '1'), y)",
    "S_reg": "R(x) & matches(x, '(0|1)(00)*')",
    "S_len": "R(x) & exists adom y: S(y) & len_le(y, x)",
}

#: Paper's data-complexity row.
COMPLEXITY = {"S": "AC0", "S_left": "AC0", "S_reg": "NC1", "S_len": "in PH (NP-hard cells)"}


def _check_calculus(name: str) -> tuple:
    structure = by_name(name, BINARY)
    # Collapse: natural == collapsed.
    sentence = parse_formula(COLLAPSE_SENTENCES[name])
    natural = AutomataEngine(structure, DB.db).decide(sentence)
    q = collapse(sentence, structure)
    collapsed = DirectEngine(structure, DB.db, slack=min(q.slack, 4)).decide(q.formula)
    collapse_ok = natural == collapsed
    # Effective syntax: the enumeration produces safe queries.
    syntax_ok = all(
        isinstance(s.evaluate(DB.db), frozenset)
        for s in enumerate_safe_queries(structure, DB.schema, limit=3)
    )
    # Algebra: compiled RA plan == calculus output.
    formula = parse_formula(ALGEBRA_QUERIES[name])
    expected = AutomataEngine(structure, DB.db).run(formula).as_set()
    compiled = compile_query(formula, structure, DB.schema, slack=1)
    algebra_ok = compiled.evaluate(DB.db) == expected
    # State safety: decidable (one safe, one unsafe).
    safe_dec = is_safe_on(parse_formula("R(x)"), structure, DB.db) and not is_safe_on(
        parse_formula("!R(x)"), structure, DB.db
    )
    # CQ safety: decidable (one safe, one unsafe).
    cq_safe = ConjunctiveQuery(
        ("x",), (rel("R", "y"),), prefix(Var("x"), Var("y")), ("y",)
    )
    cq_unsafe = ConjunctiveQuery(
        ("x",), (rel("R", "y"),), prefix(Var("y"), Var("x")), ("y",)
    )
    cq_dec = cq_is_safe(cq_safe, structure) and not cq_is_safe(cq_unsafe, structure)
    return (
        name,
        "yes" if collapse_ok else "FAIL",
        COMPLEXITY[name],
        "yes" if syntax_ok else "FAIL",
        f"RA({name})" if algebra_ok else "FAIL",
        "decidable" if safe_dec else "FAIL",
        "decidable" if cq_dec else "FAIL",
    )


def _concat_row() -> tuple:
    try:
        decide_state_safety(parse_formula("x = x"), Database(BINARY, {}))
        state = "BUG"
    except UndecidableError:
        state = "undecidable"
    return (
        "RC_concat",
        "n/a",
        "all computable (Prop 1)",
        "none (Cor 1)",
        "none",
        state,
        "undecidable",
    )


def test_fig2_summary_table(benchmark):
    rows = benchmark(lambda: [_check_calculus(n) for n in COLLAPSE_SENTENCES])
    rows = rows + [_concat_row()]
    print_table(
        "Figure 2 (reconstructed): main results per calculus",
        [
            "calculus",
            "collapse",
            "data complexity",
            "effective syntax",
            "algebra",
            "state-safety",
            "CQ safety",
        ],
        rows,
    )
    for row in rows[:4]:
        assert "FAIL" not in row, row
    assert rows[4][5] == "undecidable"
