"""THM-3 (and Lemmas 1-2): constructive range restriction.

Theorem 3: for every query ``phi`` there is an algebraic bound ``gamma``
from a recursive family such that the range-restricted query ``(gamma,
phi)`` agrees with ``phi`` wherever ``phi`` is safe.  We build the bound
for a corpus of safe queries over S and S_len, check agreement against
the exact engine on random databases, and benchmark the restricted
evaluation.  For unsafe queries the restricted output is the canonical
finite truncation — also checked.
"""

import pytest

from repro.database import random_database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.safety import range_restrict
from repro.strings import BINARY
from repro.structures import S, S_len

from _common import print_table

SAFE_CORPUS = [
    ("S", "R(x) & last(x, '1')"),
    ("S", "exists adom y: x <<= y"),
    ("S", "exists adom y: ext1(y, x)"),
    ("S", "exists adom y: R(y) & eq(add_last(y, '0'), x)"),
    ("S_len", "exists adom y: el(x, y)"),
]

UNSAFE_CORPUS = [
    ("S", "last(x, '0')"),
    ("S", "!R(x)"),
    ("S_len", "exists adom y: len_le(y, x)"),
]


def _structure(name):
    return {"S": S, "S_len": S_len}[name](BINARY)


@pytest.mark.parametrize("sname,text", SAFE_CORPUS, ids=[t for _s, t in SAFE_CORPUS])
def test_thm3_restricted_eval(benchmark, sname, text):
    structure = _structure(sname)
    rr = range_restrict(parse_formula(text), structure, slack=2)
    db = random_database(BINARY, {"R": 1}, 4, max_len=3, seed=1)
    benchmark(lambda: rr.evaluate(db))


def test_thm3_agreement_on_safe_queries(benchmark):
    def check():
        rows = []
        for sname, text in SAFE_CORPUS:
            structure = _structure(sname)
            rr = range_restrict(parse_formula(text), structure, slack=2)
            ok = all(
                rr.agrees_with_original_on(
                    random_database(BINARY, {"R": 1}, 4, max_len=3, seed=seed)
                )
                for seed in range(3)
            )
            rows.append((sname, text[:44], "agrees" if ok else "FAIL"))
        for sname, text in UNSAFE_CORPUS:
            structure = _structure(sname)
            rr = range_restrict(parse_formula(text), structure, slack=1)
            db = random_database(BINARY, {"R": 1}, 3, max_len=3, seed=0)
            out = rr.evaluate(db)  # finite by construction
            exact = AutomataEngine(structure, db).run(parse_formula(text))
            subset = all(exact.contains(t) for t in out)
            rows.append(
                (sname, text[:44], f"finite truncation ({len(out)} rows, subset={subset})")
            )
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    print_table(
        "Theorem 3: (gamma, phi) vs phi",
        ["structure", "query", "result"],
        rows,
    )
    assert all("FAIL" not in r[2] for r in rows)
    assert all("subset=True" in r[2] for r in rows if "truncation" in r[2])
