"""PROP-4 / THM-2: length-restricted quantification for RC(S_len), and its price.

Proposition 4: length-restricted quantifiers capture RC(S_len); Theorem 2
bounds the data complexity inside PH — but the LENGTH domain itself has
``|Sigma|^(maxlen+1)`` strings, so evaluation cost grows *exponentially
in the longest database string* (while staying polynomial in the number
of tuples for fixed string length).  Both shapes are measured here.
"""

import pytest

from repro.database import Database
from repro.eval import AutomataEngine, DirectEngine
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S_len

from _common import growth_ratios, measure, print_table

#: RC(S_len) sentence with one length-restricted quantifier.
QUERY = parse_formula(
    "forall adom x: R(x) -> exists len y: el(y, x) & last(y, '1') & !R(y)"
)

LENGTHS = [4, 6, 8, 10, 12]


def _db_of_length(max_len: int) -> Database:
    strings = {"0" * k for k in range(1, max_len + 1)} | {"1" * max_len}
    return Database(BINARY, {"R": {(s,) for s in strings}})


@pytest.mark.parametrize("max_len", LENGTHS)
def test_prop4_length_domain_eval(benchmark, max_len):
    engine = DirectEngine(S_len(BINARY), _db_of_length(max_len), slack=0)
    benchmark(lambda: engine.decide(QUERY))


def test_prop4_exponential_in_string_length(benchmark):
    def sweep():
        return [
            measure(
                lambda m=m: DirectEngine(
                    S_len(BINARY), _db_of_length(m), slack=0
                ).decide(QUERY),
                repeats=1,
            )
            for m in LENGTHS
        ]

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = growth_ratios(times)
    print_table(
        "Proposition 4 / Theorem 2: LENGTH-domain cost vs longest string",
        ["max |s|", "seconds", "domain size |Sigma^<=m|"],
        [
            (m, f"{t:.5f}", BINARY.count_up_to(m))
            for m, t in zip(LENGTHS, times)
        ],
    )
    print(f"growth ratios per +2 length: {['%.1f' % r for r in ratios]} "
          "(domain quadruples per +2: expected ~4x tail)")
    # The tail ratios should reflect the 4x domain growth (band: > 2x).
    assert ratios[-1] > 2.0, ratios

    # Sanity: the collapsed semantics agrees with the exact engine on a
    # small instance (Proposition 4's equivalence).
    db = _db_of_length(4)
    assert DirectEngine(S_len(BINARY), db, slack=0).decide(QUERY) == AutomataEngine(
        S_len(BINARY), db
    ).decide(QUERY)
