"""PROP-1 / COR-1: the problematic concatenation, measured.

* Proposition 1: RC_concat expresses all computable queries — we check
  Turing-machine acceptance formulas against genuine/corrupted histories
  and benchmark the logical check as the history grows (the formula's
  factor-quantified evaluation is polynomial in the history, and the
  history itself can be arbitrarily long: completeness without bounds);
* Corollary 1: the PCP -> state-safety reduction, benchmarked end to end
  (build the reduction query, semi-decide with the BFS solver, validate
  the witness through the formula).
"""

import pytest

from repro.concat import (
    BoundedConcatEngine,
    PcpInstance,
    accepts_via_formula,
    encode_history,
    encode_solution,
    is_witness,
    parity_machine,
    safety_reduction,
    solve_pcp,
    witness_formula,
)
from repro.strings import Alphabet

from _common import growth_ratios, measure, print_table

TM_ALPHABET = Alphabet("01BeoA$")
PCP_ALPHABET = Alphabet("01$%")

CLASSIC = PcpInstance((("1", "111"), ("10111", "10"), ("10", "0")))


@pytest.mark.parametrize("tape", ["", "11", "0110", "011011"])
def test_prop1_tm_formula_check(benchmark, tape):
    tm = parity_machine()
    history = tm.run(tape)
    assert history is not None
    encoded = encode_history(history)
    ok = benchmark(lambda: accepts_via_formula(tm, tape, encoded, TM_ALPHABET))
    assert ok
    corrupted = encoded.replace("A", "o")
    assert not accepts_via_formula(tm, tape, corrupted, TM_ALPHABET)


def test_prop1_history_scaling(benchmark):
    tm = parity_machine()
    tapes = ["11", "1111", "111111", "11111111"]

    def sweep():
        rows = []
        for tape in tapes:
            history = encode_history(tm.run(tape))
            t = measure(
                lambda h=history, tp=tape: accepts_via_formula(tm, tp, h, TM_ALPHABET),
                repeats=1,
            )
            rows.append((len(tape), len(history), t))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Proposition 1: checking TM histories in RC_concat",
        ["|input|", "|history|", "seconds"],
        [(a, b, f"{t:.4f}") for a, b, t in rows],
    )
    ratios = growth_ratios([t for _a, _b, t in rows])
    print(f"growth ratios: {['%.1f' % r for r in ratios]} "
          "(polynomial in the history; the history is unbounded)")
    assert rows[-1][2] < 30  # stays tractable for the check itself


def test_cor1_pcp_reduction(benchmark):
    def reduction_roundtrip():
        psi = safety_reduction(CLASSIC)
        solution = solve_pcp(CLASSIC, max_length=30)
        witness = encode_solution(CLASSIC, solution)
        engine = BoundedConcatEngine(PCP_ALPHABET, mode="factors")
        formula = witness_formula(CLASSIC)
        return (
            psi.free_variables(),
            solution,
            is_witness(CLASSIC, witness),
            engine.holds(formula, {"x": witness}),
        )

    free, solution, direct_ok, formula_ok = benchmark(reduction_roundtrip)
    print_table(
        "Corollary 1: PCP -> RC_concat state-safety",
        ["item", "value"],
        [
            ("instance", str(CLASSIC.pairs)),
            ("solution (BFS semi-decision)", str(solution)),
            ("witness validates (direct)", direct_ok),
            ("witness validates (RC_concat formula)", formula_ok),
            ("=> psi(y) unsafe (output = Sigma*)", True),
        ],
    )
    assert free == {"y"}
    assert solution == [1, 0, 0, 2]
    assert direct_ok and formula_ok


def test_cor1_unsolvable_instance(benchmark):
    instance = PcpInstance((("0", "1"), ("1", "0")))
    solution = benchmark(lambda: solve_pcp(instance, max_length=12))
    assert solution is None  # psi safe (empty output) for this instance
