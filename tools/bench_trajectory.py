#!/usr/bin/env python3
"""Aggregate every committed ``BENCH_*.json`` baseline into one report.

Each benchmark in ``benchmarks/`` gates its speedup claims against a
committed baseline (``benchmarks/_regress.py``); this tool is the
cross-PR view of those claims.  It reads every ``BENCH_<name>.json`` in
the repo root and prints a markdown document with

* one summary table — per bench: entry count, regression threshold, and
  the min / median / max committed speedup, and
* one detail table per bench — every workload key with its committed
  ratio and the bench-specific numbers it was derived from (wall times
  for the timed sweeps, throughput/latency for the service bench).

Ratios below 1.0 are printed as-is: some baselines deliberately commit
honest sub-1x entries (e.g. ``BENCH_ranf.json``'s LENGTH / SIMILAR TO
shapes, where the automata engine genuinely wins — see
``docs/ranf_translation.md``), and hiding them would misstate the
trajectory.

Run via ``make bench-report``; pass ``--out PATH`` to also write the
markdown to a file.  Exits non-zero only when no baselines are found or
one fails to parse — this is a reporting tool, not a gate
(``make bench-compare`` is the gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def load_baselines() -> list[dict]:
    baselines = []
    for path in sorted(ROOT.glob("BENCH_*.json")):
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        for field in ("bench", "threshold", "entries"):
            if field not in data:
                raise ValueError(f"{path.name}: missing {field!r} field")
        data["_path"] = path.name
        baselines.append(data)
    return baselines


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def render(baselines: list[dict]) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "Committed speedup baselines (optimized path vs reference path,",
        "ratios are machine-portable; see `benchmarks/_regress.py`).",
        "",
        "| bench | entries | threshold | min | median | max |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for data in baselines:
        speedups = [entry["speedup"] for entry in data["entries"].values()]
        lines.append(
            "| {bench} | {count} | {thr}x | {mn} | {med} | {mx} |".format(
                bench=data["bench"],
                count=len(speedups),
                thr=data["threshold"],
                mn=_fmt(min(speedups)),
                med=_fmt(statistics.median(speedups)),
                mx=_fmt(max(speedups)),
            )
        )
    for data in baselines:
        lines += [
            "",
            f"## {data['bench']} ({data['_path']})",
            "",
            "| workload | speedup | detail |",
            "|---|---:|---|",
        ]
        for key, entry in sorted(data["entries"].items()):
            # Entries carry bench-specific extras besides the gated ratio
            # (reference_s/optimized_s for timed sweeps, req_per_s/p50/p99
            # for the service bench) — render whatever is there.
            detail = ", ".join(
                f"{field}={value:g}"
                for field, value in sorted(entry.items())
                if field != "speedup"
            )
            lines.append(
                f"| {key} | {_fmt(entry['speedup'])}x | {detail} |"
            )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the markdown report to this file",
    )
    args = parser.parse_args(argv)

    try:
        baselines = load_baselines()
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-report: {exc}", file=sys.stderr)
        return 1
    if not baselines:
        print("bench-report: no BENCH_*.json baselines found", file=sys.stderr)
        return 1

    report = render(baselines)
    print(report, end="")
    if args.out:
        pathlib.Path(args.out).write_text(report, encoding="utf-8")
        print(f"(written to {args.out})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
