#!/usr/bin/env python3
"""Fail the build if kernel-converted hot paths regress to dict DFAs.

The dense automata kernel (``src/repro/automata/kernel.py``) is the only
path the converted hot modules may use to build automata: boolean
combinations go through ``kernel.product_dfa`` / the ``*_minimized``
helpers, subset construction through ``kernel.determinize_minimized``,
and pattern compilation stays dense end to end.  Constructing a
dict-of-dicts :class:`~repro.automata.dfa.DFA` directly in one of these
modules silently reintroduces the per-state tuple/dict churn the kernel
exists to avoid — the code still passes every functional test, only
slower, which is exactly the regression a test suite cannot see.

This linter scans the converted modules for direct ``DFA(...)``
construction (``DenseDFA`` is fine; that *is* the kernel) and exits
non-zero listing the offenders.  Modules that legitimately build base
automata symbol-by-symbol (``mso/to_dfa.py`` atoms, ``automatic/
convolution.py`` pad validity, ``automatic/relation.py`` trie builders)
are deliberately not listed: constructing the *initial* automaton is
their job; combining automata is the kernel's.

Run via ``make lint-kernel`` (wired into ``make test``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Converted hot modules that must stay free of direct DFA construction.
CONVERTED = [
    "src/repro/automata/ops.py",
    "src/repro/automata/regex.py",
    "src/repro/eval/automata_engine.py",
    "src/repro/sql/like.py",
    "src/repro/sql/similar.py",
]

# `DFA(` with no identifier character before it: flags `DFA(...)` and
# `dfa_mod.DFA(...)` but not `DenseDFA(...)` or `to_min_dfa(...)`.
DIRECT_DFA = re.compile(r"(?<![A-Za-z0-9_])DFA\s*\(")


def offenders() -> list[str]:
    found: list[str] = []
    for rel in CONVERTED:
        path = ROOT / rel
        if not path.exists():
            found.append(f"{rel}: listed in lint_kernel.CONVERTED but missing")
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if DIRECT_DFA.search(line):
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main() -> int:
    bad = offenders()
    if bad:
        print(
            "direct DFA(...) construction in a kernel-converted module — "
            "combine automata through repro.automata.kernel instead:",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"lint-kernel: ok ({len(CONVERTED)} converted modules stay on the "
        "dense kernel)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
