#!/usr/bin/env python3
"""Fail the build if transport primitives leak outside the shard/service layers.

The sharded execution path (``src/repro/shard/``) and the query service
(``src/repro/service/``) are the only modules allowed to touch process
and socket plumbing — ``subprocess``, ``socket``, ``socketserver``,
``multiprocessing``, ``os.pipe`` — because that is where deadlines,
structured retryable errors, and dead-worker detection live.  A query
engine, planner, or algebra module that opens its own pipe or spawns its
own process bypasses all of it: requests can hang without a deadline,
die without a structured error, and leak child processes the pool never
reaps.  The code still passes functional tests — exactly the regression
a test suite cannot see.

This linter scans ``src/repro/`` for transport-primitive imports and
calls outside the two sanctioned packages and exits non-zero listing the
offenders.

Run via ``make lint-shard`` (wired into ``make test``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: Packages that own transport plumbing (relative to ``src/repro/``).
SANCTIONED = ("shard", "service")

#: Transport primitives: imports of the process/socket modules, plus the
#: bare calls that create pipes or worker processes.
FORBIDDEN = re.compile(
    r"(?:^\s*(?:import|from)\s+(?:socket|socketserver|subprocess|"
    r"multiprocessing)\b)"
    r"|(?<![A-Za-z0-9_.])os\.pipe\s*\("
    r"|(?<![A-Za-z0-9_.])Pipe\s*\("
)


def offenders() -> list[str]:
    found: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(ROOT)
        if path.relative_to(SRC).parts[0] in SANCTIONED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if FORBIDDEN.search(line):
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main() -> int:
    bad = offenders()
    if bad:
        print(
            "transport primitives (sockets/pipes/subprocesses) outside "
            "src/repro/shard/ and src/repro/service/ — route process and "
            "wire plumbing through those layers:",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        "lint-shard: ok (transport plumbing confined to "
        + " and ".join(f"src/repro/{p}/" for p in SANCTIONED)
        + ")"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
