#!/usr/bin/env python3
"""Fail the build if engine-name literal dispatch reappears.

The backend registry (``src/repro/engine/backend.py``) is the only
legitimate dispatch path for engine names: every other layer must resolve
names through ``resolve_engine``/``get_backend`` and call backend methods,
never compare ``plan.engine`` against a string literal.  This linter keeps
the refactor from regressing: it scans every ``*.py`` under ``src/repro``
*outside* ``src/repro/engine/`` for ``== "automata"`` / ``== "direct"`` /
``== "algebra"`` (and ``!=``, and single-quoted variants) and exits
non-zero listing the offenders.

Run via ``make lint-dispatch`` (wired into ``make test``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
ALLOWED = SRC / "engine"

ENGINE_LITERAL = re.compile(
    r"""[=!]=\s*(?P<q>['"])(automata|direct|algebra)(?P=q)"""
)


def offenders() -> list[str]:
    found: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if ENGINE_LITERAL.search(line):
                rel = path.relative_to(ROOT)
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main() -> int:
    bad = offenders()
    if bad:
        print(
            "engine-name literal dispatch outside src/repro/engine/ — "
            "resolve through the backend registry instead "
            "(repro.engine.backend):",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("lint-dispatch: ok (no engine-name literal comparisons outside engine/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
