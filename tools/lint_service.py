#!/usr/bin/env python3
"""Fail the build if asyncio transport primitives leak outside service/shard.

The asyncio front end (``src/repro/service/``) is the only place allowed
to open sockets through the event loop — ``asyncio.start_server``,
``asyncio.open_connection``, ``loop.create_server`` /
``create_connection``, raw ``StreamReader`` / ``StreamWriter``
construction, and event-loop ownership (``new_event_loop`` /
``run_until_complete``).  That is where the read-size limit, per-client
quotas, fair queuing, disconnect-driven cancellation, and graceful-drain
shutdown live.  An engine or planner module that opens its own stream
bypasses all of it: connections with no byte limit, no admission
control, no cancellation on disconnect — functional tests stay green,
the operational guarantees silently vanish.

This linter scans ``src/repro/`` for event-loop transport primitives
outside the sanctioned packages (``service/``, plus ``shard/`` which
owns the process-pipe transport) and exits non-zero listing offenders.
It complements ``tools/lint_shard.py``, which confines the *blocking*
primitives (``socket``, ``subprocess``) to the same layers.

Run via ``make lint-service`` (wired into ``make test``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: Packages that own wire transport (relative to ``src/repro/``).
SANCTIONED = ("service", "shard")

#: Event-loop transport primitives: stream factories, raw stream class
#: construction, and event-loop ownership.
FORBIDDEN = re.compile(
    r"(?:asyncio\.|loop\.)"
    r"(?:start_server|open_connection|start_unix_server|"
    r"open_unix_connection|create_server|create_connection|"
    r"new_event_loop|run_until_complete)\s*\("
    r"|(?<![A-Za-z0-9_.])Stream(?:Reader|Writer)\s*\("
)


def offenders() -> list[str]:
    found: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(ROOT)
        if path.relative_to(SRC).parts[0] in SANCTIONED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if FORBIDDEN.search(line):
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main() -> int:
    bad = offenders()
    if bad:
        print(
            "asyncio transport primitives (servers/streams/event loops) "
            "outside src/repro/service/ and src/repro/shard/ — route wire "
            "plumbing through the service front end:",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        "lint-service: ok (event-loop transport confined to "
        + " and ".join(f"src/repro/{p}/" for p in SANCTIONED)
        + ")"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
