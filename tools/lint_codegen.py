#!/usr/bin/env python3
"""Fail the build if dynamic code generation escapes the audited module.

``src/repro/algebra/codegen.py`` compiles query plans to Python source and
``exec``s it — deliberately, in one place, with data-independent generated
code (database values are only ever passed as *arguments* to the compiled
closure, never interpolated into source).  That safety argument only holds
while codegen stays the single module that calls ``exec``/``eval``/
``compile``; a second call site anywhere else in ``src/repro/`` would need
the same audit and would not get it.

This linter scans every Python file under ``src/repro/`` except the
codegen module for calls to the three builtins and exits non-zero listing
the offenders.  Method definitions and attribute calls named ``compile``
(e.g. ``MSOCompiler.compile``, ``re.compile``) are fine — only the bare
builtins are dangerous.

Run via ``make lint-codegen`` (wired into ``make test``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The one module allowed to generate and execute code.
ALLOWED = "src/repro/algebra/codegen.py"

# A bare `exec(` / `eval(` / `compile(` builtin call: no identifier or dot
# before the name (so `re.compile(...)` and `self.compile(...)` pass) and
# not a method definition (`def compile(` passes).
DYNAMIC_CODE = re.compile(
    r"(?<!def )(?<![A-Za-z0-9_.])(exec|eval|compile)\s*\("
)


def offenders() -> list[str]:
    found: list[str] = []
    src = ROOT / "src" / "repro"
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(ROOT).as_posix()
        if rel == ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            # Comments may *talk about* exec/eval/compile freely.
            code = line.split("#", 1)[0]
            if DYNAMIC_CODE.search(code):
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main() -> int:
    bad = offenders()
    if bad:
        print(
            "exec/eval/compile outside algebra/codegen.py — dynamic code "
            "generation must stay confined to the one audited module:",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"lint-codegen: ok (dynamic code generation confined to {ALLOWED})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
