#!/usr/bin/env python3
"""Fail the build if code mutates database contents behind the delta store.

:class:`~repro.database.instance.Database` is immutable by contract —
every cache key in the system (result cache, automaton cache, subplan
row store, shard routes) assumes a database's fingerprint names frozen
content forever.  The MVCC delta store (:mod:`repro.delta`) is the one
sanctioned way to change contents: it builds a *new* ``Database`` with
a chained fingerprint and records the transition that cache maintenance
replays.  Code that reaches into the private ``._relations`` /
``._adom`` mappings can mutate a snapshot in place, which silently
poisons every cache keyed by its fingerprint — the answers stay wrong
until the next cold start, and no functional test catches it because
each test sees a consistent (if stale) view.

This linter scans the tree for attribute access on those private fields
anywhere outside the two modules allowed to touch them: the class's own
module and the delta store package.  Run via ``make lint-delta`` (wired
into ``make test``).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Directories scanned for offenders.
SCANNED = ["src", "benchmarks", "tools"]

#: The only places allowed to touch the private mappings.
ALLOWED = (
    "src/repro/database/instance.py",
    "src/repro/delta/",
    "tools/lint_delta.py",
)

# Attribute access on the exact private fields: flags `db._relations` /
# `db._adom` but not `self._adom_sorted` or a local `plan_relations`.
PRIVATE_ACCESS = re.compile(r"\.\s*(_relations|_adom)\b(?!\w)")


def offenders() -> list[str]:
    found: list[str] = []
    for top in SCANNED:
        for path in sorted((ROOT / top).rglob("*.py")):
            rel = path.relative_to(ROOT).as_posix()
            if rel.startswith(ALLOWED):
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if PRIVATE_ACCESS.search(line):
                    found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main() -> int:
    bad = offenders()
    if bad:
        print(
            "direct access to Database._relations/._adom outside the delta "
            "store — mutate through repro.delta.VersionedDatabase instead:",
            file=sys.stderr,
        )
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("lint-delta: ok (database contents only change through repro.delta)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
