#!/usr/bin/env python3
"""Fail the build on dead intra-repository links in the documentation.

The docs cross-reference each other heavily (``docs/architecture.md``
links every subsystem page, README links the docs, pages link section
anchors).  Renaming a file or retitling a heading silently breaks those
links — Markdown renders a dead link exactly like a live one, so nothing
else in the build notices.

This linter checks, for every Markdown link in ``README.md`` and
``docs/*.md``:

* **relative file targets** resolve to an existing file (links are
  resolved against the linking file's own directory, the way GitHub and
  most renderers do);
* **anchor targets** (``#section`` or ``file.md#section``) match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to dashes, duplicate slugs numbered).

External links (``http://``, ``https://``, ``mailto:``) are out of
scope — availability of the internet is not a property of this repo.

Run via ``make docs-check`` (and ``make lint-docs`` directly).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` — non-greedy text, target up to the first ``)``.
#: Images (``![alt](src)``) are checked too; they are links to files.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")

EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[pathlib.Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(title: str) -> str:
    """GitHub's heading-to-anchor slug (the rules the web UI applies)."""
    slug = title.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)            # inline markup markers
    slug = re.sub(r"[^\w\- ]", "", slug)         # punctuation out
    slug = slug.replace(" ", "-")
    return slug


def heading_slugs(path: pathlib.Path) -> set[str]:
    """All anchor slugs a file defines (duplicates numbered like GitHub)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        base = github_slug(m.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    return slugs


def check_file(path: pathlib.Path, slug_cache: dict) -> list[str]:
    problems: list[str] = []
    rel = path.relative_to(ROOT)
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                dest = (path.parent / file_part).resolve()
                if not dest.exists():
                    problems.append(
                        f"{rel}:{lineno}: dead link target {target!r} "
                        f"({file_part} does not exist)"
                    )
                    continue
            else:
                dest = path
            if anchor:
                if dest.suffix != ".md" or dest.is_dir():
                    continue  # anchors into non-Markdown files: not checkable
                if dest not in slug_cache:
                    slug_cache[dest] = heading_slugs(dest)
                if anchor.lower() not in slug_cache[dest]:
                    problems.append(
                        f"{rel}:{lineno}: dead anchor {target!r} "
                        f"(no heading slugs to '#{anchor}' in "
                        f"{dest.relative_to(ROOT)})"
                    )
    return problems


def main() -> int:
    files = doc_files()
    slug_cache: dict = {}
    problems: list[str] = []
    links = 0
    for path in files:
        problems.extend(check_file(path, slug_cache))
        for line in path.read_text(encoding="utf-8").splitlines():
            links += len(LINK.findall(line))
    if problems:
        print("dead documentation links:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"lint-docs: ok ({links} links across {len(files)} Markdown files, "
        "all targets and anchors resolve)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
