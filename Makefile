# strqlib developer targets.  Everything runs against the in-tree sources
# (PYTHONPATH=src); no installation required.

PY := PYTHONPATH=src python
SMOKE_DIR := .bench-smoke

.PHONY: test test-full docs-check lint-dispatch lint-kernel lint-shard \
	lint-delta lint-codegen lint-service lint-docs bench-smoke \
	bench-algebra bench-algebra-smoke bench-kernel bench-kernel-smoke \
	bench-shard bench-shard-smoke bench-delta bench-delta-smoke \
	bench-codegen bench-codegen-smoke bench-ranf bench-ranf-smoke \
	bench-compare bench-report bench-full \
	bench-service bench-service-smoke serve-smoke clean

## Fast local loop: lints, skip @pytest.mark.slow tests, then smoke the
## perf claims cheapest to regress silently (algebra joins, the dense
## automata kernel, the shard scatter-gather pool, incremental delta
## maintenance, the compiled-plan codegen backend, the RANF-widened
## fast-engine regime, and the asyncio service front end, each gated
## against its committed BENCH_*.json).
test: lint-dispatch lint-kernel lint-shard lint-delta lint-codegen \
		lint-service bench-algebra-smoke bench-kernel-smoke \
		bench-shard-smoke bench-delta-smoke bench-codegen-smoke \
		bench-ranf-smoke bench-service-smoke
	$(PY) -m pytest -x -q -m "not slow"

## Fail if engine-name literal comparisons (== "automata"/"direct"/
## "algebra") appear outside src/repro/engine/ — the backend registry
## must stay the only dispatch path.
lint-dispatch:
	$(PY) tools/lint_dispatch.py

## Fail if kernel-converted hot modules construct dict-backed DFA(...)
## directly — they must stay on the dense kernel boundary helpers.
lint-kernel:
	$(PY) tools/lint_kernel.py

## Fail if transport primitives (sockets/pipes/subprocesses) appear in
## src/repro/ outside shard/ + service/ — deadlines, retries, and
## structured errors live there; nothing may tunnel around them.
lint-shard:
	$(PY) tools/lint_shard.py

## Fail if code reaches into Database._relations/._adom outside the
## database module and repro.delta — contents may only change through
## the MVCC delta store (docs/mutability.md).
lint-delta:
	$(PY) tools/lint_delta.py

## Fail if exec/eval/compile builtins appear in src/repro/ outside
## algebra/codegen.py — dynamic code generation stays confined to the
## one audited module (docs/codegen_engine.md).
lint-codegen:
	$(PY) tools/lint_codegen.py

## Fail if asyncio transport primitives (stream factories, raw
## StreamReader/StreamWriter construction, event-loop ownership) appear
## in src/repro/ outside service/ + shard/ — byte limits, quotas, and
## disconnect cancellation live in the front end (docs/service.md).
lint-service:
	$(PY) tools/lint_service.py

## Fail on dead relative links or heading anchors in README.md and
## docs/*.md (GitHub slug rules; see tools/lint_docs_links.py).
lint-docs:
	$(PY) tools/lint_docs_links.py

## The whole suite, slow tests included (what CI should run).
test-full:
	$(PY) -m pytest -x -q

## Run every fenced `python -m repro ...` command in docs/*.md against the
## tiny fixture database (keeps the documentation executable), then check
## every intra-doc link and anchor resolves.
docs-check: lint-docs
	$(PY) -m pytest tests/test_docs_examples.py -q

## Run each standalone benchmark at minimal size and assert that its
## --explain-json metrics output parses.  (The full pytest-benchmark
## suite is `make bench-full`.)
bench-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_abl_engines.py --smoke --explain-json $(SMOKE_DIR)/engines.json
	$(PY) benchmarks/bench_sql_patterns.py --smoke --explain-json $(SMOKE_DIR)/sql_patterns.json
	$(PY) -c "import json, glob, sys; \
paths = sorted(glob.glob('$(SMOKE_DIR)/*.json')); \
assert paths, 'no metrics JSON produced'; \
[json.load(open(p)) for p in paths]; \
print('bench-smoke: %d metrics files parse' % len(paths))"

## Set-at-a-time algebra engine vs naive Product+Select (full sweep,
## asserts the >=10x speedup and the HashJoin EXPLAIN node).
bench-algebra:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_algebra_joins.py --explain-json $(SMOKE_DIR)/algebra_joins.json

## Minimal sizes of the same sweep; part of `make test`'s fast path.
bench-algebra-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_algebra_joins.py --smoke --explain-json $(SMOKE_DIR)/algebra_joins.json

## Dense automata kernel vs the legacy dict-DFA path (full sweep,
## asserts the >=5x product-chain speedup and gates every measured
## speedup ratio against the committed BENCH_kernel.json baseline).
bench-kernel:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_kernel.py --compare --explain-json $(SMOKE_DIR)/kernel.json

## Minimal sizes of the same sweep, still gated against the baseline;
## part of `make test`'s fast path.
bench-kernel-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_kernel.py --smoke --compare --explain-json $(SMOKE_DIR)/kernel.json

## Multi-process scatter-gather vs single-process execution on the
## partitioned-scan shape (full sweep, asserts the >=2.5x speedup at 4
## workers and gates every ratio against BENCH_shard.json).
bench-shard:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_shard.py --compare --explain-json $(SMOKE_DIR)/shard.json

## Minimal size of the same sweep, still gated against the baseline;
## part of `make test`'s fast path.
bench-shard-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_shard.py --smoke --compare --explain-json $(SMOKE_DIR)/shard.json

## Incremental query-after-delta vs rebuild + re-register + cold re-run
## (full sweep, asserts the >=5x small-delta speedup on both shapes,
## checks automata survive deltas, gates against BENCH_delta.json).
bench-delta:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_delta.py --compare --explain-json $(SMOKE_DIR)/delta.json

## Minimal sizes of the same sweep, still gated against the baseline;
## part of `make test`'s fast path.
bench-delta-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_delta.py --smoke --compare --explain-json $(SMOKE_DIR)/delta.json

## Compiled fused pipelines vs the interpreted algebra executor (full
## sweep, asserts the >=2x warm-closure speedup on both shapes, checks
## the planner flips to codegen with a CodegenPipeline EXPLAIN node,
## and gates every ratio against BENCH_codegen.json).
bench-codegen:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_codegen.py --compare --explain-json $(SMOKE_DIR)/codegen.json

## Minimal sizes of the same sweep, still gated against the baseline;
## part of `make test`'s fast path.
bench-codegen-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_codegen.py --smoke --compare --explain-json $(SMOKE_DIR)/codegen.json

## RANF-widened regime vs the automata baseline on six shapes the old
## algebra gate rejected (full sweep, asserts the >=5x speedup on at
## least three prefix-quantified shapes, checks the auto planner flips
## to the fast engine there, and gates every ratio against
## BENCH_ranf.json; see docs/ranf_translation.md).
bench-ranf:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_ranf.py --compare --explain-json $(SMOKE_DIR)/ranf.json

## Minimal sizes of the same sweep, still gated against the baseline;
## part of `make test`'s fast path.
bench-ranf-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_ranf.py --smoke --compare --explain-json $(SMOKE_DIR)/ranf.json

## Re-measure and gate without the full pytest run (alias kept for the
## name used in docs; exits non-zero on any >1.3x speedup regression).
bench-compare: bench-kernel bench-shard bench-delta bench-codegen bench-ranf

## One markdown table over every committed BENCH_*.json baseline: each
## workload key with its committed speedup ratio, grouped per bench,
## plus the per-bench best/worst/median summary (tools/bench_trajectory.py).
bench-report:
	$(PY) tools/bench_trajectory.py

bench-full:
	$(PY) -m pytest benchmarks/ --benchmark-only

## Concurrent-client latency/throughput of the asyncio front end:
## 1/64/512 closed-loop clients against one 8-worker pool, streamed and
## plain answers asserted identical, per-level throughput ratios gated
## against BENCH_service.json (docs/service.md).
bench-service:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_service.py --compare --explain-json $(SMOKE_DIR)/service.json

## Levels 1 and 64 only, still gated against the baseline; part of
## `make test`'s fast path.
bench-service-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_service.py --smoke --compare --explain-json $(SMOKE_DIR)/service.json

## One NDJSON round-trip through `python -m repro serve --stdio`:
## register a database, run a query, check the rows, exit 0 on EOF.
serve-smoke:
	printf '%s\n' \
	'{"op":"register_db","id":1,"name":"main","db":{"alphabet":"01","relations":{"R":[["0110"],["001"],["11"]]}}}' \
	'{"op":"run","id":2,"query":"R(x)","db":"main"}' \
	| $(PY) -m repro serve --stdio \
	| $(PY) -c "import json, sys; \
	rs = [json.loads(line) for line in sys.stdin]; \
	assert [r['ok'] for r in rs] == [True, True], rs; \
	assert rs[1]['rows'] == [['001'], ['0110'], ['11']], rs; \
	print('serve-smoke: stdio round-trip OK')"

clean:
	rm -rf $(SMOKE_DIR) .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
