# strqlib developer targets.  Everything runs against the in-tree sources
# (PYTHONPATH=src); no installation required.

PY := PYTHONPATH=src python
SMOKE_DIR := .bench-smoke

.PHONY: test docs-check bench-smoke bench-full clean

test:
	$(PY) -m pytest -x -q

## Run every fenced `python -m repro ...` command in docs/*.md against the
## tiny fixture database (keeps the documentation executable).
docs-check:
	$(PY) -m pytest tests/test_docs_examples.py -q

## Run each standalone benchmark at minimal size and assert that its
## --explain-json metrics output parses.  (The full pytest-benchmark
## suite is `make bench-full`.)
bench-smoke:
	mkdir -p $(SMOKE_DIR)
	$(PY) benchmarks/bench_abl_engines.py --smoke --explain-json $(SMOKE_DIR)/engines.json
	$(PY) benchmarks/bench_sql_patterns.py --smoke --explain-json $(SMOKE_DIR)/sql_patterns.json
	$(PY) -c "import json, glob, sys; \
paths = sorted(glob.glob('$(SMOKE_DIR)/*.json')); \
assert paths, 'no metrics JSON produced'; \
[json.load(open(p)) for p in paths]; \
print('bench-smoke: %d metrics files parse' % len(paths))"

bench-full:
	$(PY) -m pytest benchmarks/ --benchmark-only

clean:
	rm -rf $(SMOKE_DIR) .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
