"""Differential property tests: the engines on random formulas.

For restricted-quantifier formulas the automata and direct engines
implement the same semantics by definition, so any disagreement is a bug
in one of them — most likely in the convolution automata
(complement/projection/padding), which is exactly where DESIGN.md locates
the correctness risk.  Hypothesis generates random formulas and random
databases; the engines must agree.

The set-at-a-time algebra engine joins the comparison on its eligibility
regime (ADOM-only quantifiers, anchored outputs — the planner's rule 3):
there, Theorem 4's calculus↔algebra equivalence says all three engines
return identical results.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Query
from repro.database import Database
from repro.eval import AutomataEngine, DirectEngine
from repro.logic.dsl import (
    and_,
    el,
    eq,
    exists_adom,
    exists_len,
    exists_prefix,
    forall_adom,
    last,
    len_le,
    lex_le,
    not_,
    or_,
    prefix,
    rel,
    sprefix,
)
from repro.logic.formulas import Formula
from repro.strings import BINARY
from repro.structures import S_len

VARS = ["u", "v", "w"]

short_string = st.text(alphabet="01", max_size=3)


def atoms(variables: list[str]) -> st.SearchStrategy[Formula]:
    """Random atoms over the given variables (S_len signature)."""
    var = st.sampled_from(variables)
    unary = st.builds(
        lambda t, a: last(t, a), var, st.sampled_from("01")
    ) | st.builds(lambda t: rel("R", t), var) | st.builds(lambda t: rel("S", t), var)
    binary_ctor = st.sampled_from([prefix, sprefix, eq, el, len_le, lex_le])
    binary = st.builds(lambda c, t1, t2: c(t1, t2), binary_ctor, var, var)
    return unary | binary


def formulas(variables: list[str], depth: int) -> st.SearchStrategy[Formula]:
    base = atoms(variables)
    if depth == 0:
        return base
    sub = formulas(variables, depth - 1)
    quantifier = st.builds(
        lambda q, v, f: q(v, f),
        st.sampled_from([exists_adom, forall_adom, exists_prefix, exists_len]),
        st.sampled_from(VARS),
        sub,
    )
    boolean = (
        st.builds(lambda a, b: and_(a, b), sub, sub)
        | st.builds(lambda a, b: or_(a, b), sub, sub)
        | st.builds(not_, sub)
    )
    return base | quantifier | boolean


def sentences() -> st.SearchStrategy[Formula]:
    """Random sentences: close a depth-2 formula under adom quantifiers."""

    def close(f: Formula) -> Formula:
        for v in sorted(f.free_variables(), reverse=True):
            f = exists_adom(v, f)
        return f

    return formulas(VARS, depth=2).map(close)


databases = st.builds(
    lambda r, s: Database(BINARY, {"R": {(x,) for x in r}, "S": {(x,) for x in s}}),
    st.sets(short_string, min_size=1, max_size=3),
    st.sets(short_string, max_size=3),
)


class TestEngineAgreement:
    @settings(max_examples=60, deadline=None)
    @given(sentence=sentences(), db=databases)
    def test_sentences_agree(self, sentence, db):
        structure = S_len(BINARY)
        for slack in (0, 1):
            auto = AutomataEngine(structure, db, slack=slack).decide(sentence)
            direct = DirectEngine(structure, db, slack=slack).decide(sentence)
            assert auto == direct, f"{sentence} on {db} (slack={slack})"

    @settings(max_examples=40, deadline=None)
    @given(
        formula=formulas(["u"], depth=1),
        db=databases,
        value=short_string,
    )
    def test_ground_evaluation_agrees(self, formula, db, value):
        structure = S_len(BINARY)
        free = formula.free_variables()
        assignment = {v: value for v in free}
        direct = DirectEngine(structure, db, slack=0).holds(formula, assignment)
        auto_result = AutomataEngine(structure, db, slack=0).run(formula)
        variables = auto_result.variables
        auto = (
            auto_result.contains(tuple(assignment[v] for v in variables))
            if variables
            else auto_result.as_bool()
        )
        assert auto == direct, f"{formula} @ {assignment}"

    @settings(max_examples=30, deadline=None)
    @given(formula=formulas(["u"], depth=1), db=databases)
    def test_open_query_outputs_agree(self, formula, db):
        """Open queries with one free variable: anchored outputs agree."""
        structure = S_len(BINARY)
        guarded = and_(rel("R", "u"), formula)  # anchor the output
        auto = AutomataEngine(structure, db, slack=0).run(guarded)
        direct = DirectEngine(structure, db, slack=0).run(guarded)
        assert auto.is_finite()
        assert auto.as_set() == direct.as_set(), str(guarded)


def adom_formulas(variables: list[str], depth: int) -> st.SearchStrategy[Formula]:
    """Like :func:`formulas` but quantifiers are ADOM only — the algebra
    engine's eligibility regime (collapsed form is automatic: database
    atoms use bare variables and never sit under a non-ADOM quantifier)."""
    base = atoms(variables)
    if depth == 0:
        return base
    sub = adom_formulas(variables, depth - 1)
    quantifier = st.builds(
        lambda q, v, f: q(v, f),
        st.sampled_from([exists_adom, forall_adom]),
        st.sampled_from(VARS),
        sub,
    )
    boolean = (
        st.builds(lambda a, b: and_(a, b), sub, sub)
        | st.builds(lambda a, b: or_(a, b), sub, sub)
        | st.builds(not_, sub)
    )
    return base | quantifier | boolean


def _anchor(formula: Formula) -> Formula:
    """Conjoin ``R(v)`` for every free variable, so every engine's output
    ranges over the active domain and all three provably agree."""
    for v in sorted(formula.free_variables(), reverse=True):
        formula = and_(rel("R", v), formula)
    return formula


class TestThreeEngineAgreement:
    """direct == automata == algebra == codegen on the algebra regime.

    The codegen backend shares the algebra engine's eligibility rule and
    must agree tuple-for-tuple whether a query runs through a generated
    pipeline or takes the structured fallback to the interpreter."""

    ENGINES = ("automata", "direct", "algebra", "codegen")

    @settings(max_examples=50, deadline=None)
    @given(formula=adom_formulas(VARS, depth=2), db=databases)
    def test_open_queries_identical_results(self, formula, db):
        query = Query(_anchor(formula), structure="S_len")
        results = {e: query.result(db, engine=e) for e in self.ENGINES}
        variables = {e: r.variables for e, r in results.items()}
        assert len(set(variables.values())) == 1, variables
        rows = {e: r.as_set() for e, r in results.items()}
        assert len(set(map(frozenset, rows.values()))) == 1, (
            str(query.formula), rows,
        )

    @settings(max_examples=30, deadline=None)
    @given(formula=adom_formulas(VARS, depth=2), db=databases)
    def test_sentences_identical_answers(self, formula, db):
        closed = formula
        for v in sorted(formula.free_variables(), reverse=True):
            closed = exists_adom(v, and_(rel("R", v), formula))
            formula = closed
        query = Query(closed, structure="S_len")
        answers = {
            e: query.result(db, engine=e).as_bool() for e in self.ENGINES
        }
        assert len(set(answers.values())) == 1, (str(closed), answers)

    @settings(max_examples=25, deadline=None)
    @given(formula=adom_formulas(VARS, depth=1), db=databases)
    def test_auto_planner_matches_forced_engines(self, formula, db):
        """Whatever the planner picks agrees with every forced engine."""
        query = Query(_anchor(formula), structure="S_len")
        auto = query.result(db).as_set()
        for engine in self.ENGINES:
            assert auto == query.result(db, engine=engine).as_set(), engine


class TestKernelBackedAutomataRuns:
    """The automata engine's compilations now run on the dense kernel
    (``repro.automata.kernel``): re-assert three-engine agreement while
    checking the ``kernel.*`` METRICS actually move — evidence the dense
    path, not a silent dict-DFA fallback, produced the agreeing answers."""

    ENGINES = ("automata", "direct", "algebra", "codegen")

    @settings(max_examples=30, deadline=None)
    @given(formula=adom_formulas(VARS, depth=2), db=databases)
    def test_dense_kernel_runs_underneath_agreeing_engines(self, formula, db):
        from repro.engine.metrics import METRICS

        structure = S_len(BINARY)
        anchored = _anchor(formula)
        before = METRICS.snapshot().get("kernel.dense_dfas", 0)
        auto = AutomataEngine(structure, db, slack=0).run(anchored)
        assert METRICS.snapshot().get("kernel.dense_dfas", 0) > before
        direct = DirectEngine(structure, db, slack=0).run(anchored)
        assert auto.as_set() == direct.as_set(), str(anchored)

    def test_explain_surfaces_kernel_stats(self):
        db = Database(BINARY, {"R": {("01",), ("10",)}, "S": set()})
        explain = Query(
            and_(rel("R", "u"), last("u", "0")), structure="S_len"
        ).explain(db, engine="automata")
        assert explain.kernel_stats, explain.counters
        assert "kernel" in explain.to_dict()
        assert "kernel:" in explain.render()


class TestCanonicalizationRoundTrip:
    """Canonicalization (repro.logic.canonical) is semantics-preserving:
    alpha-renaming binders and sorting commutative conjuncts/disjuncts
    must not change any engine's answer — that is what licenses keying
    every cache on the canonical fingerprint."""

    ENGINES = ("automata", "direct", "algebra", "codegen")

    @settings(max_examples=40, deadline=None)
    @given(formula=adom_formulas(VARS, depth=2), db=databases)
    def test_canonicalize_preserves_three_engine_results(self, formula, db):
        from repro.logic.canonical import canonical_fingerprint, canonicalize

        original = _anchor(formula)
        canon = canonicalize(original)
        assert canonical_fingerprint(canon) == canonical_fingerprint(original)
        assert canon.free_variables() == original.free_variables()
        q_orig = Query(original, structure="S_len")
        q_canon = Query(canon, structure="S_len")
        for engine in self.ENGINES:
            before = q_orig.result(db, engine=engine)
            after = q_canon.result(db, engine=engine)
            assert before.variables == after.variables, engine
            assert before.as_set() == after.as_set(), (engine, str(original))

    @settings(max_examples=40, deadline=None)
    @given(sentence=sentences(), db=databases)
    def test_canonicalize_preserves_natural_semantics(self, sentence, db):
        """Round-trip on the wider quantifier spectrum (PREFIX and LENGTH
        quantifiers included), via the exact automata engine."""
        from repro.logic.canonical import canonicalize

        structure = S_len(BINARY)
        engine = AutomataEngine(structure, db, slack=0)
        assert engine.decide(canonicalize(sentence)) == engine.decide(sentence)
