"""The RANF translation layer: verdicts, pairs, execution, planner wiring.

Covers the three verdict branches (collapsed / restricted-quantifiers /
gamma-bounded), the memoized negative verdicts with their
``planner.eligibility_memo_hits`` counter, the translated pair's shapes
(the ``inf`` half omitted where the finite half is provably complete),
the runtime infinite-result bail-out, EXPLAIN's per-backend
ineligibility reasons and ``RanfPair`` tree node, and the planner's
regime widening with its ``ranf_setup`` amortization.
"""

import pytest

from repro.algebra.ranf import (
    RanfError,
    run_ranf,
    translate_ranf,
    translation_verdict,
)
from repro.core import Query
from repro.database import Database, random_database
from repro.database.schema import Schema
from repro.engine import METRICS, global_cache
from repro.engine.planner import Planner, algebra_eligible
from repro.algebra.compile import CompileError
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.canonical import canonicalize
from repro.strings import BINARY
from repro.structures.catalog import by_name


def _f(text: str):
    return canonicalize(parse_formula(text))


def _db(**relations):
    schema = Schema({name: len(next(iter(rows))) for name, rows in relations.items()})
    return Database(BINARY, dict(relations), schema=schema)


S = by_name("S", BINARY)
S_LEN = by_name("S_len", BINARY)


# ----------------------------------------------------------------- verdicts


class TestVerdicts:
    def test_collapsed_branch(self):
        v = translation_verdict(_f("R(x) & S(x)"), S)
        assert v.ok and v.branch == "collapsed"

    def test_restricted_quantifiers_branch(self):
        v = translation_verdict(_f("R(x) & (exists prefix y: T(y, x))"), S)
        assert v.ok and v.branch == "restricted-quantifiers"

    def test_length_quantifier_branch(self):
        v = translation_verdict(_f("R(x) & (exists len y: T(y, x))"), S_LEN)
        assert v.ok and v.branch == "restricted-quantifiers"

    def test_gamma_bounded_branch(self):
        v = translation_verdict(_f("eq(x, y) & R(y)"), S)
        assert v.ok and v.branch == "gamma-bounded"
        assert "x" in v.bounded

    def test_db_dependent_natural_quantifier_bails(self):
        v = translation_verdict(_f("R(x) & exists y: (y <<= x & S(y))"), S)
        assert not v.ok
        assert v.reason

    def test_unbounded_free_variable_bails(self):
        # prefix(x, y) bounds x from y, but nothing bounds y itself.
        v = translation_verdict(_f("prefix(x, y) & !R(y)"), S)
        assert not v.ok

    def test_negative_verdicts_are_memoized(self):
        formula = _f("R(x) & exists y: (y <<= x & !S(y))")
        translation_verdict(formula, S)  # populate
        before = METRICS.snapshot().get("planner.eligibility_memo_hits", 0)
        v = translation_verdict(formula, S)
        after = METRICS.snapshot().get("planner.eligibility_memo_hits", 0)
        assert not v.ok
        assert after == before + 1

    def test_positive_verdicts_are_memoized(self):
        formula = _f("R(x) & (exists prefix y: (sprefix(y, x) & S(y)))")
        translation_verdict(formula, S)
        before = METRICS.snapshot().get("planner.eligibility_memo_hits", 0)
        assert translation_verdict(formula, S).ok
        after = METRICS.snapshot().get("planner.eligibility_memo_hits", 0)
        assert after == before + 1


# -------------------------------------------------------------------- pairs


class TestTranslatedPairs:
    def test_restricted_quantifiers_omit_inf_half(self):
        schema = Schema({"R": 1, "T": 2})
        pair = translate_ranf(
            _f("R(x) & (exists prefix y: T(y, x))"), S, schema, slack=1
        )
        assert pair.branch == "restricted-quantifiers"
        assert pair.inf_plan is None and pair.inf_optimized is None

    def test_gamma_bounded_builds_inf_half(self):
        schema = Schema({"R": 1})
        pair = translate_ranf(_f("eq(x, y) & R(y)"), S, schema, slack=1)
        assert pair.branch == "gamma-bounded"
        assert pair.inf_plan is not None and pair.inf_optimized is not None

    def test_translation_cache_hits_counted(self):
        schema = Schema({"R": 1, "T": 2})
        formula = _f("R(x) & (exists prefix y: (T(y, x) & S(y)))")
        translate_ranf(formula, S, Schema({"R": 1, "T": 2, "S": 1}), slack=1)
        before = METRICS.snapshot().get("algebra.ranf.translation_cache_hits", 0)
        translate_ranf(formula, S, Schema({"R": 1, "T": 2, "S": 1}), slack=1)
        after = METRICS.snapshot().get("algebra.ranf.translation_cache_hits", 0)
        assert after == before + 1

    def test_untranslatable_raises_ranf_error(self):
        with pytest.raises(RanfError):
            translate_ranf(
                _f("R(x) & exists y: (y <<= x & S(y))"),
                S,
                Schema({"R": 1, "S": 1}),
                slack=1,
            )


# ---------------------------------------------------------------- execution


class TestExecution:
    def test_gamma_bounded_agrees_with_automata(self):
        db = _db(R={("01",), ("110",), ("0",)})
        formula = _f("eq(x, y) & R(y)")
        run = run_ranf(formula, S, db, slack=1)
        assert not run.infinite
        want = AutomataEngine(S, db, slack=1).run(formula).as_set()
        assert run.rows == want

    def test_restricted_quantifier_agrees_with_automata(self):
        db = _db(
            R={("010",), ("11",)},
            T={("0", "010"), ("1", "11"), ("00", "1")},
        )
        formula = _f("R(x) & (exists prefix y: T(y, x))")
        run = run_ranf(formula, S, db, slack=1)
        want = AutomataEngine(S, db, slack=1).run(formula).as_set()
        assert frozenset(run.rows) == want

    @staticmethod
    def _doctor_inf_half(monkeypatch):
        """Make every translated pair's ``inf`` half report a row.

        A sound gamma certificate means the runtime infinite check never
        fires organically, so the bail-out path is driven by doctoring
        the translation: the finite half doubles as a nonempty ``inf``
        half."""
        import dataclasses

        import repro.algebra.ranf as ranf_mod

        real = ranf_mod.translate_ranf

        def doctored(formula, structure, schema, slack=1):
            pair = real(formula, structure, schema, slack=slack)
            return dataclasses.replace(
                pair,
                inf_plan=pair.fin_optimized,
                inf_optimized=pair.fin_optimized,
            )

        ranf_mod._TRANSLATIONS.clear()
        monkeypatch.setattr(ranf_mod, "translate_ranf", doctored)

    def test_infinite_result_bails_out(self, monkeypatch):
        self._doctor_inf_half(monkeypatch)
        db = _db(R={("01",), ("110",)})
        formula = _f("eq(x, y) & R(y)")
        before = METRICS.snapshot().get("algebra.ranf.infinite_bailouts", 0)
        run = run_ranf(formula, S, db, slack=1)
        assert run.infinite
        assert run.rows is None
        assert run.inf_stats is not None
        after = METRICS.snapshot().get("algebra.ranf.infinite_bailouts", 0)
        assert after == before + 1

    def test_infinite_bailout_falls_back_through_backend(self, monkeypatch):
        """When the runtime bound check trips, the algebra backend must
        hand the query to the exact automata engine and still return the
        right answer."""
        self._doctor_inf_half(monkeypatch)
        db = _db(R={("01",), ("110",)})
        formula = _f("eq(x, y) & R(y)")
        global_cache().reset()
        forced = Query("eq(x, y) & R(y)", structure="S").result(
            db, engine="algebra", slack=1
        )
        exact = AutomataEngine(S, db, slack=1).run(formula)
        assert forced.as_set() == exact.as_set()


# ------------------------------------------------------------ planner wiring


class TestPlannerWiring:
    PREFIX_Q = "R(x) & (exists prefix y: (sprefix(y, x) & S(y)))"

    def _db(self, n=40):
        return random_database(
            BINARY, {"R": 1, "S": 1}, n, max_len=8, seed=5
        )

    def test_old_gate_rejected_now_eligible(self):
        formula = _f(self.PREFIX_Q)
        assert not algebra_eligible(formula)  # the historical gate
        assert algebra_eligible(formula, S)  # the widened gate

    def test_plan_reports_backend_ineligibility_reasons(self):
        db = _db(R={("0", "01")})
        plan = Planner(S, db).plan(_f("eq(x, y) & R(y, z)"), slack=1)
        assert "direct" in plan.ineligible
        assert "anchored" in plan.ineligible["direct"]
        rendered = plan.render()
        assert "ineligible" in rendered
        as_dict = plan.to_dict()
        assert "direct" in as_dict["ineligible"]

    def test_explain_shows_ranf_pair_node(self):
        db = _db(R={("0",), ("10",)})
        global_cache().reset()
        report = Query("eq(x, y) & R(y)", structure="S").explain(
            db, engine="algebra", slack=1
        )
        tree = report.to_dict()["tree"]
        assert tree["kind"] == "RanfPair"
        assert tree["annotations"]["branch"] == "gamma-bounded"
        halves = [c["annotations"].get("half") for c in tree["children"]]
        assert halves == ["inf", "fin"]

    def test_ranf_setup_charged_then_amortized(self):
        db = self._db()
        formula = _f(self.PREFIX_Q)
        planner = Planner(S, db)
        fresh_key_formula = _f(
            "R(x) & (exists prefix y: (sprefix(y, x) & !S(y)))"
        )
        import repro.algebra.ranf as ranf_mod

        ranf_mod._TRANSLATIONS.clear()
        cold = planner.plan(fresh_key_formula, slack=1)
        cold_cost = cold.costs["algebra"]
        # Translating (e.g. by running the query once) amortizes setup.
        run_ranf(fresh_key_formula, S, db, slack=1)
        warm_cost = Planner(S, db).plan(fresh_key_formula, slack=1).costs[
            "algebra"
        ]
        assert warm_cost < cold_cost

    def test_forced_algebra_on_untranslatable_raises(self):
        # NATURAL-quantified queries collapse into the widened regime, so
        # forcing must fail on something the translation can never bound:
        # a bare negation whose free variable has no certificate.
        db = self._db()
        with pytest.raises(CompileError):
            Planner(S, db).plan(_f("!R(x)"), slack=1, force="algebra")

    def test_forced_codegen_widened_regime(self):
        db = random_database(BINARY, {"R": 1, "T": 2}, 30, max_len=8, seed=7)
        formula = _f("R(x) & (exists prefix y: T(y, x))")
        plan = Planner(S, db).plan(formula, slack=1, force="codegen")
        assert plan.engine == "codegen"

    def test_planner_coverage_counter_for_widened_choice(self):
        """The acceptance counter: algebra/codegen chosen for a formula
        the old gate rejected."""
        db = random_database(BINARY, {"R": 1, "T": 2}, 400, max_len=12, seed=3)
        formula = _f("R(x) & (exists prefix y: T(y, x))")
        assert not algebra_eligible(formula)
        global_cache().reset()
        before = METRICS.snapshot()
        plan = Planner(S, db).plan(formula, slack=1)
        assert plan.engine in ("algebra", "codegen")
        delta_key = f"planner.backend.{plan.engine}.chosen"
        assert (
            METRICS.snapshot().get(delta_key, 0)
            == before.get(delta_key, 0) + 1
        )
