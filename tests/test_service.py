"""Tests for the concurrent query service: registry, prepared queries,
worker pool, admission control, deadlines, and the NDJSON protocol over
stdio and TCP.

The acceptance properties (ISSUE 2): a 1 ms-deadline request against an
adversarial query returns a *structured* retryable timeout over the serve
protocol — no hang, no traceback — and concurrent execution through the
pool returns exactly the serial answers.
"""

import io
import json
import threading
import time

import pytest

from repro.core import Query, StringDatabase
from repro.engine import global_cache
from repro.engine.metrics import METRICS
from repro.errors import (
    EvaluationTimeout,
    QueueFullError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from repro.service import (
    Dispatcher,
    PreparedQuery,
    QueryService,
    RunRequest,
    ServiceClient,
    ServiceConfig,
    classify_error,
    serve_stdio,
    serve_tcp,
)

from tests.test_timeouts import ADVERSARIAL_QUERY, ADVERSARIAL_STRINGS


@pytest.fixture(autouse=True)
def _fresh_cache():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


def small_db():
    return StringDatabase(
        "01", {"R": {"0110", "001", "11"}, "S": {"0", "01"}}
    )


def adversarial_db():
    return StringDatabase("01", {"R": [(s,) for s in ADVERSARIAL_STRINGS]})


@pytest.fixture
def service():
    svc = QueryService(workers=4)
    svc.register_database("main", small_db())
    yield svc
    svc.close()


class TestRegistry:
    def test_register_returns_fingerprint(self, service):
        fp = service.register_database("other", small_db())
        assert isinstance(fp, str) and len(fp) == 40
        assert service.database_names() == ["main", "other"]

    def test_reregistering_changes_fingerprint_with_contents(self, service):
        fp1 = service.register_database("d", StringDatabase("01", {"R": {"0"}}))
        fp2 = service.register_database("d", StringDatabase("01", {"R": {"1"}}))
        assert fp1 != fp2
        assert service.database_names() == ["d", "main"]

    def test_unknown_database_is_a_structured_error(self, service):
        resp = service.execute(RunRequest(query="R(x)", database="nope"))
        assert not resp.ok
        assert resp.error.code == "invalid"
        assert not resp.error.retryable
        assert "nope" in resp.error.message

    def test_unregister(self, service):
        service.register_database("gone", small_db())
        service.unregister_database("gone")
        assert "gone" not in service.database_names()


class TestPreparedQueries:
    def test_prepare_is_interned(self, service):
        a = service.prepare("R(x) & last(x, '0')")
        b = service.prepare("R(x) & last(x, '0')")
        assert a is b
        assert isinstance(a, PreparedQuery)

    def test_prepared_executes_like_text(self, service):
        prep = service.prepare("R(x) & last(x, '0')")
        r1 = service.execute(RunRequest(query=prep, database="main"))
        r2 = service.execute(
            RunRequest(query="R(x) & last(x, '0')", database="main")
        )
        assert r1.ok and r2.ok
        assert r1.rows == r2.rows == [["0110"]]

    def test_plan_cached_per_fingerprint(self, service):
        prep = service.prepare("R(x) & last(x, '0')")
        entry = service._entry("main")
        p1 = prep.plan_for(entry)
        p2 = prep.plan_for(entry)
        assert p1 is p2
        # New contents under the same name -> a fresh plan.
        service.register_database("main", StringDatabase("01", {"R": {"00"}}))
        p3 = prep.plan_for(service._entry("main"))
        assert p3 is not p1

    def test_parse_error_is_structured(self, service):
        resp = service.execute(RunRequest(query="R(x", database="main"))
        assert not resp.ok
        assert resp.error.code == "parse"
        assert not resp.error.retryable


class TestExecution:
    def test_single_request(self, service):
        resp = service.execute(
            RunRequest(query="R(x) & last(x, '0')", database="main")
        )
        assert resp.ok
        assert resp.columns == ["x"]
        assert resp.rows == [["0110"]]
        # Prepared service queries prewarm the codegen closure, so the
        # planner may pick the fused pipeline over direct/automata here.
        assert resp.engine in ("automata", "direct", "codegen")
        assert resp.finite is True
        assert resp.exec_seconds >= 0

    def test_results_match_the_library(self, service):
        for src in ["R(x) & last(x, '0')", "S(y)", "R(x) & !S(x)"]:
            expected = [list(t) for t in Query(src).run(small_db()).rows()]
            resp = service.execute(RunRequest(query=src, database="main"))
            assert resp.ok and resp.rows == expected

    def test_batch_keeps_order_and_isolates_errors(self, service):
        responses = service.execute_batch([
            RunRequest(query="R(x) & last(x, '0')", database="main"),
            RunRequest(query="R(x", database="main"),
            RunRequest(query="S(y)", database="main"),
            RunRequest(query="R(x)", database="nowhere"),
        ])
        assert [r.ok for r in responses] == [True, False, True, False]
        assert responses[0].rows == [["0110"]]
        assert responses[1].error.code == "parse"
        assert responses[2].rows == [["0"], ["01"]]
        assert responses[3].error.code == "invalid"

    def test_infinite_output_needs_limit(self, service):
        resp = service.execute(RunRequest(query="last(x, '0')", database="main"))
        assert not resp.ok and resp.error.code == "unsafe"
        resp = service.execute(
            RunRequest(query="last(x, '0')", database="main", limit=3)
        )
        assert resp.ok and resp.finite is False and len(resp.rows) == 3

    def test_deadline_returns_structured_timeout(self):
        svc = QueryService(workers=2)
        svc.register_database("adv", adversarial_db())
        try:
            t0 = time.monotonic()
            resp = svc.execute(
                RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                           timeout=0.001)
            )
            wall = time.monotonic() - t0
            assert not resp.ok
            assert resp.error.code == "timeout"
            assert resp.error.retryable
            assert wall < 2.0
            assert METRICS.get("service.timeouts") == 1
        finally:
            svc.close()

    def test_default_timeout_from_config(self):
        svc = QueryService(workers=1, default_timeout=0.001)
        svc.register_database("adv", adversarial_db())
        try:
            resp = svc.execute(
                RunRequest(query=ADVERSARIAL_QUERY, database="adv")
            )
            assert not resp.ok and resp.error.code == "timeout"
        finally:
            svc.close()

    def test_pool_survives_bad_requests(self, service):
        # Workers must outlive parse errors, unknown dbs, and timeouts.
        for _ in range(3):
            service.execute(RunRequest(query="R(x", database="main"))
        resp = service.execute(RunRequest(query="S(y)", database="main"))
        assert resp.ok and resp.rows == [["0"], ["01"]]


class TestAdmissionControl:
    def _occupy(self, svc, budget=0.5):
        """Fill the single worker with an adversarial request, and wait
        until it has actually been dequeued."""
        pending = svc.submit(RunRequest(
            query=ADVERSARIAL_QUERY, database="adv", timeout=budget,
        ))
        deadline = time.monotonic() + 5
        while svc._queue.qsize() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        return pending

    def test_reject_backpressure(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="reject")
        svc.register_database("adv", adversarial_db())
        try:
            busy = self._occupy(svc)
            queued = svc.submit(RunRequest(
                query=ADVERSARIAL_QUERY, database="adv", timeout=0.5,
            ))
            with pytest.raises(QueueFullError) as exc_info:
                svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv"))
            assert "retry" in str(exc_info.value)
            assert METRICS.get("service.rejected") == 1
            # Both admitted requests finish with their own deadlines.
            assert busy.wait(10).error.code == "timeout"
            assert queued.wait(10).error.code == "timeout"
        finally:
            svc.close()

    def test_rejected_batch_items_get_structured_errors(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="reject")
        svc.register_database("adv", adversarial_db())
        try:
            self._occupy(svc)
            responses = svc.execute_batch([
                RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                           timeout=0.4)
                for _ in range(4)
            ])
            codes = {r.error.code for r in responses if not r.ok}
            assert "overloaded" in codes
            overloaded = [
                r for r in responses if not r.ok and r.error.code == "overloaded"
            ]
            assert all(r.error.retryable for r in overloaded)
        finally:
            svc.close()

    def test_block_backpressure_waits_for_space(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="block")
        svc.register_database("adv", adversarial_db())
        svc.register_database("main", small_db())
        try:
            self._occupy(svc, budget=0.3)
            svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                  timeout=0.3))
            # Queue full; a blocking submit must wait, then succeed.
            resp = svc.execute(RunRequest(query="S(y)", database="main"))
            assert resp.ok and resp.rows == [["0"], ["01"]]
        finally:
            svc.close()

    def test_block_backpressure_respects_request_deadline(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="block")
        svc.register_database("adv", adversarial_db())
        try:
            self._occupy(svc, budget=1.0)
            svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                  timeout=1.0))
            t0 = time.monotonic()
            with pytest.raises(EvaluationTimeout):
                svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                      timeout=0.05))
            assert time.monotonic() - t0 < 1.0
        finally:
            svc.close()


class TestLifecycle:
    def test_close_drains_queued_requests(self):
        svc = QueryService(workers=2)
        svc.register_database("main", small_db())
        handles = [
            svc.submit(RunRequest(query="R(x) & last(x, '0')", database="main"))
            for _ in range(8)
        ]
        svc.close(drain=True)
        assert all(h.wait(5).ok for h in handles)

    def test_close_without_drain_fails_pending(self):
        svc = QueryService(workers=1, max_pending=8)
        svc.register_database("adv", adversarial_db())
        busy = svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                     timeout=0.3))
        deadline = time.monotonic() + 5
        while svc._queue.qsize() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = svc.submit(RunRequest(query="R(x)", database="adv"))
        svc.close(drain=False)
        resp = queued.wait(5)
        assert not resp.ok
        assert resp.error.code == "unavailable"
        assert resp.error.retryable
        assert busy.wait(5).error.code == "timeout"

    def test_submit_after_close_raises(self):
        svc = QueryService(workers=1)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(RunRequest(query="R(x)", database="main"))
        # execute() surfaces the same thing structurally.
        resp = svc.execute(RunRequest(query="R(x)", database="main"))
        assert not resp.ok and resp.error.code == "unavailable"

    def test_context_manager_closes(self):
        with QueryService(workers=1) as svc:
            svc.register_database("main", small_db())
            assert svc.execute(
                RunRequest(query="R(x)", database="main")
            ).ok
        assert svc.closed

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ServiceError):
            ServiceConfig(backpressure="drop")

    def test_stats_shape(self, service):
        service.execute(RunRequest(query="R(x)", database="main"))
        stats = service.stats()
        assert stats["workers"] == 4
        assert stats["databases"] == ["main"]
        assert stats["counters"]["service.requests"] >= 1
        assert "hits" in stats["cache"]


class TestErrorClassification:
    def test_codes_and_retryability(self):
        cases = [
            (EvaluationTimeout("t"), "timeout", True),
            (QueueFullError("q"), "overloaded", True),
            (ServiceClosedError("c"), "unavailable", True),
            (ReproError("r"), "invalid", False),
            (ValueError("boom"), "internal", False),
        ]
        for exc, code, retryable in cases:
            info = classify_error(exc)
            assert info.code == code
            assert info.retryable is retryable
        assert "boom" in classify_error(ValueError("boom")).message


class TestStdioProtocol:
    def _serve(self, lines):
        svc = QueryService(workers=2)
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        code = serve_stdio(svc, stdin=stdin, stdout=stdout)
        assert code == 0
        assert svc.closed
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_round_trip(self):
        out = self._serve([
            json.dumps({"op": "ping", "id": 1}),
            json.dumps({
                "op": "register_db", "id": 2, "name": "main",
                "db": {"alphabet": "01",
                       "relations": {"R": [["0110"], ["001"], ["11"]]}},
            }),
            json.dumps({"op": "run", "id": 3,
                        "query": "R(x) & last(x, '0')", "db": "main"}),
            json.dumps({"op": "list_dbs", "id": 4}),
        ])
        assert out[0] == {"id": 1, "pong": True, "version": 1, "ok": True}
        assert out[1]["ok"] and len(out[1]["fingerprint"]) == 40
        assert out[2]["ok"] and out[2]["rows"] == [["0110"]]
        assert out[3]["databases"] == ["main"]

    def test_malformed_lines_are_structured_errors(self):
        out = self._serve([
            "this is not json",
            json.dumps({"op": "warp", "id": 2}),
            json.dumps({"id": 3}),
            json.dumps({"op": "run", "id": 4, "db": "main"}),
        ])
        assert [o["ok"] for o in out] == [False, False, False, False]
        assert out[0]["id"] is None
        assert "unknown op" in out[1]["error"]["message"]
        assert all(not o["error"]["retryable"] for o in out)

    def test_shutdown_op_stops_the_loop(self):
        out = self._serve([
            json.dumps({"op": "shutdown", "id": 1}),
            json.dumps({"op": "ping", "id": 2}),  # never reached
        ])
        assert len(out) == 1
        assert out[0] == {"id": 1, "closing": True, "drain": True, "ok": True}

    def test_eof_without_shutdown_exits_cleanly(self):
        assert self._serve([]) == []


class TestTCPProtocol:
    @pytest.fixture
    def server(self):
        svc = QueryService(workers=4)
        svc.register_database("main", small_db())
        svc.register_database("adv", adversarial_db())
        server = serve_tcp(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        thread.join(5)
        server.close_service()

    def _client(self, server):
        host, port = server.server_address[:2]
        return ServiceClient(host, port)

    def test_round_trip(self, server):
        with self._client(server) as client:
            assert client.ping()["pong"] is True
            resp = client.run("R(x) & last(x, '0')", db="main")
            assert resp["ok"] and resp["rows"] == [["0110"]]

    def test_prepared_and_batch(self, server):
        with self._client(server) as client:
            prep = client.prepare("R(x) & last(x, '0')")
            assert prep["ok"] and prep["variables"] == ["x"]
            resp = client.batch([
                {"prepared": prep["prepared"], "db": "main"},
                {"query": "S(y)", "db": "main"},
                {"query": "R(x", "db": "main"},
            ])
            results = resp["results"]
            assert results[0]["rows"] == [["0110"]]
            assert results[1]["rows"] == [["0"], ["01"]]
            assert results[2]["error"]["code"] == "parse"

    def test_acceptance_1ms_deadline_is_structured_not_a_hang(self, server):
        # ISSUE 2 acceptance: 1 ms deadline against the adversarial query,
        # over the serve protocol -> structured retryable timeout, fast.
        with self._client(server) as client:
            t0 = time.monotonic()
            resp = client.run(ADVERSARIAL_QUERY, db="adv", timeout_ms=1)
            wall = time.monotonic() - t0
            assert resp["ok"] is False
            assert resp["error"]["code"] == "timeout"
            assert resp["error"]["retryable"] is True
            assert "Traceback" not in resp["error"]["message"]
            assert wall < 2.0

    def test_register_db_over_the_wire(self, server):
        with self._client(server) as client:
            client.register_db("wire", "ab", {"T": [["ab"], ["ba"]]})
            resp = client.run("T(x) & last(x, 'b')", db="wire")
            assert resp["ok"] and resp["rows"] == [["ab"]]

    def test_concurrent_clients_share_one_pool(self, server):
        results = {}

        def hit(i):
            with self._client(server) as client:
                results[i] = client.run("R(x) & last(x, '0')", db="main")

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert len(results) == 6
        assert all(r["ok"] and r["rows"] == [["0110"]] for r in results.values())

    def test_stats_op(self, server):
        with self._client(server) as client:
            client.run("R(x)", db="main")
            stats = client.stats()["stats"]
            assert stats["workers"] == 4
            assert set(stats["databases"]) == {"adv", "main"}


class TestDispatcherDirect:
    def test_response_ids_echo_any_json_value(self):
        svc = QueryService(workers=1)
        try:
            dispatcher = Dispatcher(svc)
            for request_id in ["abc", 7, None, {"k": 1}]:
                resp, _ = dispatcher.handle({"op": "ping", "id": request_id})
                assert resp["id"] == request_id
        finally:
            svc.close()

    def test_shutdown_can_be_disabled(self):
        svc = QueryService(workers=1)
        try:
            dispatcher = Dispatcher(svc, allow_shutdown=False)
            resp, shutdown = dispatcher.handle({"op": "shutdown", "id": 1})
            assert not resp["ok"] and not shutdown
        finally:
            svc.close()
