"""Tests for the concurrent query service: registry, prepared queries,
worker pool, admission control, deadlines, and the NDJSON protocol over
stdio and TCP.

The acceptance properties (ISSUE 2): a 1 ms-deadline request against an
adversarial query returns a *structured* retryable timeout over the serve
protocol — no hang, no traceback — and concurrent execution through the
pool returns exactly the serial answers.

ISSUE 9 adds the asyncio front end: streamed ``row_batch``/``done``
frames (identical rows to a plain run on every backend), per-client
token-bucket quotas, cooperative cancellation when a client disconnects
mid-request, graceful drain on shutdown, and a client-side read deadline
with a structured retryable error.
"""

import asyncio
import io
import json
import socket
import threading
import time

import pytest

from repro.core import Query, StringDatabase
from repro.engine import global_cache
from repro.engine.metrics import METRICS
from repro.errors import (
    ClientReadTimeoutError,
    EvaluationTimeout,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
)
from repro.service import (
    AsyncServiceClient,
    AsyncTCPQueryServer,
    Dispatcher,
    PreparedQuery,
    QueryService,
    RunRequest,
    ServiceClient,
    ServiceConfig,
    TCPQueryServer,
    classify_error,
    serve_stdio,
    serve_tcp,
)

from tests.test_timeouts import ADVERSARIAL_QUERY, ADVERSARIAL_STRINGS


@pytest.fixture(autouse=True)
def _fresh_cache():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


def small_db():
    return StringDatabase(
        "01", {"R": {"0110", "001", "11"}, "S": {"0", "01"}}
    )


def adversarial_db():
    return StringDatabase("01", {"R": [(s,) for s in ADVERSARIAL_STRINGS]})


@pytest.fixture
def service():
    svc = QueryService(workers=4)
    svc.register_database("main", small_db())
    yield svc
    svc.close()


class TestRegistry:
    def test_register_returns_fingerprint(self, service):
        fp = service.register_database("other", small_db())
        assert isinstance(fp, str) and len(fp) == 40
        assert service.database_names() == ["main", "other"]

    def test_reregistering_changes_fingerprint_with_contents(self, service):
        fp1 = service.register_database("d", StringDatabase("01", {"R": {"0"}}))
        fp2 = service.register_database("d", StringDatabase("01", {"R": {"1"}}))
        assert fp1 != fp2
        assert service.database_names() == ["d", "main"]

    def test_unknown_database_is_a_structured_error(self, service):
        resp = service.execute(RunRequest(query="R(x)", database="nope"))
        assert not resp.ok
        assert resp.error.code == "invalid"
        assert not resp.error.retryable
        assert "nope" in resp.error.message

    def test_unregister(self, service):
        service.register_database("gone", small_db())
        service.unregister_database("gone")
        assert "gone" not in service.database_names()


class TestPreparedQueries:
    def test_prepare_is_interned(self, service):
        a = service.prepare("R(x) & last(x, '0')")
        b = service.prepare("R(x) & last(x, '0')")
        assert a is b
        assert isinstance(a, PreparedQuery)

    def test_prepared_executes_like_text(self, service):
        prep = service.prepare("R(x) & last(x, '0')")
        r1 = service.execute(RunRequest(query=prep, database="main"))
        r2 = service.execute(
            RunRequest(query="R(x) & last(x, '0')", database="main")
        )
        assert r1.ok and r2.ok
        assert r1.rows == r2.rows == [["0110"]]

    def test_plan_cached_per_fingerprint(self, service):
        prep = service.prepare("R(x) & last(x, '0')")
        entry = service._entry("main")
        p1 = prep.plan_for(entry)
        p2 = prep.plan_for(entry)
        assert p1 is p2
        # New contents under the same name -> a fresh plan.
        service.register_database("main", StringDatabase("01", {"R": {"00"}}))
        p3 = prep.plan_for(service._entry("main"))
        assert p3 is not p1

    def test_parse_error_is_structured(self, service):
        resp = service.execute(RunRequest(query="R(x", database="main"))
        assert not resp.ok
        assert resp.error.code == "parse"
        assert not resp.error.retryable


class TestExecution:
    def test_single_request(self, service):
        resp = service.execute(
            RunRequest(query="R(x) & last(x, '0')", database="main")
        )
        assert resp.ok
        assert resp.columns == ["x"]
        assert resp.rows == [["0110"]]
        # Prepared service queries prewarm the codegen closure, so the
        # planner may pick the fused pipeline over direct/automata here.
        assert resp.engine in ("automata", "direct", "codegen")
        assert resp.finite is True
        assert resp.exec_seconds >= 0

    def test_results_match_the_library(self, service):
        for src in ["R(x) & last(x, '0')", "S(y)", "R(x) & !S(x)"]:
            expected = [list(t) for t in Query(src).run(small_db()).rows()]
            resp = service.execute(RunRequest(query=src, database="main"))
            assert resp.ok and resp.rows == expected

    def test_batch_keeps_order_and_isolates_errors(self, service):
        responses = service.execute_batch([
            RunRequest(query="R(x) & last(x, '0')", database="main"),
            RunRequest(query="R(x", database="main"),
            RunRequest(query="S(y)", database="main"),
            RunRequest(query="R(x)", database="nowhere"),
        ])
        assert [r.ok for r in responses] == [True, False, True, False]
        assert responses[0].rows == [["0110"]]
        assert responses[1].error.code == "parse"
        assert responses[2].rows == [["0"], ["01"]]
        assert responses[3].error.code == "invalid"

    def test_infinite_output_needs_limit(self, service):
        resp = service.execute(RunRequest(query="last(x, '0')", database="main"))
        assert not resp.ok and resp.error.code == "unsafe"
        resp = service.execute(
            RunRequest(query="last(x, '0')", database="main", limit=3)
        )
        assert resp.ok and resp.finite is False and len(resp.rows) == 3

    def test_deadline_returns_structured_timeout(self):
        svc = QueryService(workers=2)
        svc.register_database("adv", adversarial_db())
        try:
            t0 = time.monotonic()
            resp = svc.execute(
                RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                           timeout=0.001)
            )
            wall = time.monotonic() - t0
            assert not resp.ok
            assert resp.error.code == "timeout"
            assert resp.error.retryable
            assert wall < 2.0
            assert METRICS.get("service.timeouts") == 1
        finally:
            svc.close()

    def test_default_timeout_from_config(self):
        svc = QueryService(workers=1, default_timeout=0.001)
        svc.register_database("adv", adversarial_db())
        try:
            resp = svc.execute(
                RunRequest(query=ADVERSARIAL_QUERY, database="adv")
            )
            assert not resp.ok and resp.error.code == "timeout"
        finally:
            svc.close()

    def test_pool_survives_bad_requests(self, service):
        # Workers must outlive parse errors, unknown dbs, and timeouts.
        for _ in range(3):
            service.execute(RunRequest(query="R(x", database="main"))
        resp = service.execute(RunRequest(query="S(y)", database="main"))
        assert resp.ok and resp.rows == [["0"], ["01"]]


class TestAdmissionControl:
    def _occupy(self, svc, budget=0.5):
        """Fill the single worker with an adversarial request, and wait
        until it has actually been dequeued."""
        pending = svc.submit(RunRequest(
            query=ADVERSARIAL_QUERY, database="adv", timeout=budget,
        ))
        deadline = time.monotonic() + 5
        while svc._queue.qsize() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        return pending

    def test_reject_backpressure(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="reject")
        svc.register_database("adv", adversarial_db())
        try:
            busy = self._occupy(svc)
            queued = svc.submit(RunRequest(
                query=ADVERSARIAL_QUERY, database="adv", timeout=0.5,
            ))
            with pytest.raises(QueueFullError) as exc_info:
                svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv"))
            assert "retry" in str(exc_info.value)
            assert METRICS.get("service.rejected") == 1
            # Both admitted requests finish with their own deadlines.
            assert busy.wait(10).error.code == "timeout"
            assert queued.wait(10).error.code == "timeout"
        finally:
            svc.close()

    def test_rejected_batch_items_get_structured_errors(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="reject")
        svc.register_database("adv", adversarial_db())
        try:
            self._occupy(svc)
            responses = svc.execute_batch([
                RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                           timeout=0.4)
                for _ in range(4)
            ])
            codes = {r.error.code for r in responses if not r.ok}
            assert "overloaded" in codes
            overloaded = [
                r for r in responses if not r.ok and r.error.code == "overloaded"
            ]
            assert all(r.error.retryable for r in overloaded)
        finally:
            svc.close()

    def test_block_backpressure_waits_for_space(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="block")
        svc.register_database("adv", adversarial_db())
        svc.register_database("main", small_db())
        try:
            self._occupy(svc, budget=0.3)
            svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                  timeout=0.3))
            # Queue full; a blocking submit must wait, then succeed.
            resp = svc.execute(RunRequest(query="S(y)", database="main"))
            assert resp.ok and resp.rows == [["0"], ["01"]]
        finally:
            svc.close()

    def test_block_backpressure_respects_request_deadline(self):
        svc = QueryService(workers=1, max_pending=1, backpressure="block")
        svc.register_database("adv", adversarial_db())
        try:
            self._occupy(svc, budget=1.0)
            svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                  timeout=1.0))
            t0 = time.monotonic()
            with pytest.raises(EvaluationTimeout):
                svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                      timeout=0.05))
            assert time.monotonic() - t0 < 1.0
        finally:
            svc.close()

    def test_submit_nowait_never_blocks_in_block_mode(self):
        # The async front end submits with nowait=True: a full queue
        # must raise QueueFullError immediately (the pump awaits and
        # retries) instead of parking the calling thread in queue.put.
        svc = QueryService(workers=1, max_pending=1, backpressure="block")
        svc.register_database("adv", adversarial_db())
        try:
            self._occupy(svc, budget=0.5)
            svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                  timeout=0.5))
            t0 = time.monotonic()
            with pytest.raises(QueueFullError):
                svc.submit(RunRequest(query="R(x)", database="adv"),
                           nowait=True)
            assert time.monotonic() - t0 < 0.2
        finally:
            svc.close()


class TestLifecycle:
    def test_close_drains_queued_requests(self):
        svc = QueryService(workers=2)
        svc.register_database("main", small_db())
        handles = [
            svc.submit(RunRequest(query="R(x) & last(x, '0')", database="main"))
            for _ in range(8)
        ]
        svc.close(drain=True)
        assert all(h.wait(5).ok for h in handles)

    def test_close_without_drain_fails_pending(self):
        svc = QueryService(workers=1, max_pending=8)
        svc.register_database("adv", adversarial_db())
        busy = svc.submit(RunRequest(query=ADVERSARIAL_QUERY, database="adv",
                                     timeout=0.3))
        deadline = time.monotonic() + 5
        while svc._queue.qsize() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = svc.submit(RunRequest(query="R(x)", database="adv"))
        svc.close(drain=False)
        resp = queued.wait(5)
        assert not resp.ok
        assert resp.error.code == "unavailable"
        assert resp.error.retryable
        assert busy.wait(5).error.code == "timeout"

    def test_submit_after_close_raises(self):
        svc = QueryService(workers=1)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(RunRequest(query="R(x)", database="main"))
        # execute() surfaces the same thing structurally.
        resp = svc.execute(RunRequest(query="R(x)", database="main"))
        assert not resp.ok and resp.error.code == "unavailable"

    def test_context_manager_closes(self):
        with QueryService(workers=1) as svc:
            svc.register_database("main", small_db())
            assert svc.execute(
                RunRequest(query="R(x)", database="main")
            ).ok
        assert svc.closed

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ServiceError):
            ServiceConfig(backpressure="drop")

    def test_stats_shape(self, service):
        service.execute(RunRequest(query="R(x)", database="main"))
        stats = service.stats()
        assert stats["workers"] == 4
        assert stats["databases"] == ["main"]
        assert stats["counters"]["service.requests"] >= 1
        assert "hits" in stats["cache"]


class TestErrorClassification:
    def test_codes_and_retryability(self):
        cases = [
            (EvaluationTimeout("t"), "timeout", True),
            (QueueFullError("q"), "overloaded", True),
            (QuotaExceededError("quota"), "quota", True),
            (RequestCancelledError("gone"), "cancelled", True),
            (ServiceClosedError("c"), "unavailable", True),
            (ReproError("r"), "invalid", False),
            (ValueError("boom"), "internal", False),
        ]
        for exc, code, retryable in cases:
            info = classify_error(exc)
            assert info.code == code
            assert info.retryable is retryable
        assert "boom" in classify_error(ValueError("boom")).message


class TestStdioProtocol:
    def _serve(self, lines):
        svc = QueryService(workers=2)
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        code = serve_stdio(svc, stdin=stdin, stdout=stdout)
        assert code == 0
        assert svc.closed
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_round_trip(self):
        out = self._serve([
            json.dumps({"op": "ping", "id": 1}),
            json.dumps({
                "op": "register_db", "id": 2, "name": "main",
                "db": {"alphabet": "01",
                       "relations": {"R": [["0110"], ["001"], ["11"]]}},
            }),
            json.dumps({"op": "run", "id": 3,
                        "query": "R(x) & last(x, '0')", "db": "main"}),
            json.dumps({"op": "list_dbs", "id": 4}),
        ])
        assert out[0] == {"id": 1, "pong": True, "version": 1, "ok": True}
        assert out[1]["ok"] and len(out[1]["fingerprint"]) == 40
        assert out[2]["ok"] and out[2]["rows"] == [["0110"]]
        assert out[3]["databases"] == ["main"]

    def test_malformed_lines_are_structured_errors(self):
        out = self._serve([
            "this is not json",
            json.dumps({"op": "warp", "id": 2}),
            json.dumps({"id": 3}),
            json.dumps({"op": "run", "id": 4, "db": "main"}),
        ])
        assert [o["ok"] for o in out] == [False, False, False, False]
        assert out[0]["id"] is None
        assert "unknown op" in out[1]["error"]["message"]
        assert all(not o["error"]["retryable"] for o in out)

    def test_shutdown_op_stops_the_loop(self):
        out = self._serve([
            json.dumps({"op": "shutdown", "id": 1}),
            json.dumps({"op": "ping", "id": 2}),  # never reached
        ])
        assert len(out) == 1
        assert out[0] == {"id": 1, "closing": True, "drain": True, "ok": True}

    def test_eof_without_shutdown_exits_cleanly(self):
        assert self._serve([]) == []


class TestTCPProtocol:
    @pytest.fixture
    def server(self):
        svc = QueryService(workers=4)
        svc.register_database("main", small_db())
        svc.register_database("adv", adversarial_db())
        server = serve_tcp(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        thread.join(5)
        server.close_service()

    def _client(self, server):
        host, port = server.server_address[:2]
        return ServiceClient(host, port)

    def test_round_trip(self, server):
        with self._client(server) as client:
            assert client.ping()["pong"] is True
            resp = client.run("R(x) & last(x, '0')", db="main")
            assert resp["ok"] and resp["rows"] == [["0110"]]

    def test_prepared_and_batch(self, server):
        with self._client(server) as client:
            prep = client.prepare("R(x) & last(x, '0')")
            assert prep["ok"] and prep["variables"] == ["x"]
            resp = client.batch([
                {"prepared": prep["prepared"], "db": "main"},
                {"query": "S(y)", "db": "main"},
                {"query": "R(x", "db": "main"},
            ])
            results = resp["results"]
            assert results[0]["rows"] == [["0110"]]
            assert results[1]["rows"] == [["0"], ["01"]]
            assert results[2]["error"]["code"] == "parse"

    def test_acceptance_1ms_deadline_is_structured_not_a_hang(self, server):
        # ISSUE 2 acceptance: 1 ms deadline against the adversarial query,
        # over the serve protocol -> structured retryable timeout, fast.
        with self._client(server) as client:
            t0 = time.monotonic()
            resp = client.run(ADVERSARIAL_QUERY, db="adv", timeout_ms=1)
            wall = time.monotonic() - t0
            assert resp["ok"] is False
            assert resp["error"]["code"] == "timeout"
            assert resp["error"]["retryable"] is True
            assert "Traceback" not in resp["error"]["message"]
            assert wall < 2.0

    def test_register_db_over_the_wire(self, server):
        with self._client(server) as client:
            client.register_db("wire", "ab", {"T": [["ab"], ["ba"]]})
            resp = client.run("T(x) & last(x, 'b')", db="wire")
            assert resp["ok"] and resp["rows"] == [["ab"]]

    def test_concurrent_clients_share_one_pool(self, server):
        results = {}

        def hit(i):
            with self._client(server) as client:
                results[i] = client.run("R(x) & last(x, '0')", db="main")

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert len(results) == 6
        assert all(r["ok"] and r["rows"] == [["0110"]] for r in results.values())

    def test_stats_op(self, server):
        with self._client(server) as client:
            client.run("R(x)", db="main")
            stats = client.stats()["stats"]
            assert stats["workers"] == 4
            assert set(stats["databases"]) == {"adv", "main"}


def _tcp_server(svc):
    """Bind + serve ``svc`` in a thread; returns (server, thread)."""
    server = serve_tcp(svc, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    thread.join(10)
    server.close_service()


class TestStreaming:
    @pytest.fixture
    def server(self):
        svc = QueryService(workers=4)
        svc.register_database("main", small_db())
        server, thread = _tcp_server(svc)
        yield server
        _stop(server, thread)

    def _client(self, server):
        host, port = server.server_address[:2]
        return ServiceClient(host, port)

    def test_frames_over_tcp(self, server):
        with self._client(server) as client:
            frames = list(client.run_stream("S(y)", db="main", page_size=1))
        batches, done = frames[:-1], frames[-1]
        assert [f["frame"] for f in batches] == ["row_batch", "row_batch"]
        assert [f["seq"] for f in batches] == [0, 1]
        assert batches[0]["columns"] == ["y"]  # only the first frame
        assert "columns" not in batches[1]
        assert [f["rows"] for f in batches] == [[["0"]], [["01"]]]
        assert done["frame"] == "done" and done["ok"]
        assert done["row_count"] == 2 and done["batches"] == 2
        assert done["engine"] and done["finite"] is True

    def test_page_size_shapes_batches(self, server):
        with self._client(server) as client:
            frames = list(
                client.run_stream("S(y) | R(y)", db="main", page_size=2)
            )
        assert [len(f["rows"]) for f in frames[:-1]] == [2, 2, 1]
        assert frames[-1]["row_count"] == 5 and frames[-1]["batches"] == 3

    def test_empty_answer_still_announces_columns(self, server):
        # R and S are disjoint in small_db: zero rows, but the client
        # must still learn the column list from a single empty batch.
        with self._client(server) as client:
            frames = list(client.run_stream("R(x) & S(x)", db="main"))
        assert len(frames) == 2
        assert frames[0]["rows"] == [] and frames[0]["columns"] == ["x"]
        assert frames[1]["ok"] and frames[1]["row_count"] == 0
        assert frames[1]["batches"] == 1

    def test_streamed_rows_equal_plain_rows_per_backend(self, server):
        with self._client(server) as client:
            for engine in ("automata", "direct", "algebra", "codegen"):
                plain = client.run("R(x) & !S(x)", db="main", engine=engine)
                assert plain["ok"], (engine, plain.get("error"))
                rows = client.run_stream_rows(
                    "R(x) & !S(x)", db="main", page_size=1, engine=engine
                )
                assert sorted(rows) == sorted(plain["rows"]), engine

    def test_error_becomes_failed_done_frame(self, server):
        with self._client(server) as client:
            frames = list(client.run_stream("R(x", db="main"))
        assert len(frames) == 1
        done = frames[0]
        assert done["frame"] == "done" and done["ok"] is False
        assert done["error"]["code"] == "parse"

    def test_stream_rejected_inside_batch(self, server):
        with self._client(server) as client:
            resp = client.batch([
                {"query": "R(x)", "db": "main", "stream": True},
                {"query": "S(y)", "db": "main"},
            ])
        results = resp["results"]
        assert not results[0]["ok"]
        assert "stream" in results[0]["error"]["message"]
        assert results[1]["rows"] == [["0"], ["01"]]

    def test_interleaved_plain_requests_on_one_connection(self, server):
        # Frames are contiguous per request; a plain run after a
        # streamed one must still line up by id.
        with self._client(server) as client:
            rows = client.run_stream_rows("S(y)", db="main", page_size=1)
            assert rows == [["0"], ["01"]]
            resp = client.run("R(x) & last(x, '0')", db="main")
            assert resp["ok"] and resp["rows"] == [["0110"]]

    def test_stdio_streaming(self):
        svc = QueryService(workers=2)
        lines = [
            json.dumps({
                "op": "register_db", "id": 1, "name": "main",
                "db": {"alphabet": "01",
                       "relations": {"S": [["0"], ["01"]]}},
            }),
            json.dumps({"op": "run", "id": 2, "query": "S(y)", "db": "main",
                        "stream": True, "page_size": 1}),
        ]
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        assert serve_stdio(svc, stdin=stdin, stdout=stdout) == 0
        out = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert out[0]["ok"]
        frames = out[1:]
        assert [f.get("frame") for f in frames] == \
            ["row_batch", "row_batch", "done"]
        assert all(f["id"] == 2 for f in frames)
        assert frames[-1]["row_count"] == 2


class TestStreamingSharded:
    def test_streamed_equals_plain_on_the_sharded_backend(self):
        svc = QueryService(workers=2, shards=2)
        svc.register_database("main", small_db())
        server, thread = _tcp_server(svc)
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as client:
                plain = client.run("R(x)", db="main", engine="sharded")
                assert plain["ok"] and plain["engine"] == "sharded"
                frames = list(client.run_stream(
                    "R(x)", db="main", page_size=2, engine="sharded"
                ))
                rows = [r for f in frames[:-1] for r in f["rows"]]
                assert sorted(rows) == sorted(plain["rows"])
                assert frames[-1]["engine"] == "sharded"
        finally:
            _stop(server, thread)


class TestAsyncClient:
    @pytest.fixture
    def server(self):
        svc = QueryService(workers=2)
        svc.register_database("main", small_db())
        server, thread = _tcp_server(svc)
        yield server
        _stop(server, thread)

    def test_async_round_trip(self, server):
        host, port = server.server_address[:2]

        async def body():
            async with await AsyncServiceClient.connect(host, port) as client:
                pong = await client.ping()
                assert pong["pong"] is True
                resp = await client.run("R(x) & last(x, '0')", db="main")
                assert resp["ok"] and resp["rows"] == [["0110"]]
                rows = []
                async for frame in client.run_stream(
                    "S(y)", db="main", page_size=1
                ):
                    if frame.get("frame") == "row_batch":
                        rows.extend(frame["rows"])
                    else:
                        assert frame["ok"] and frame["row_count"] == 2
                assert rows == [["0"], ["01"]]
                batch = await client.batch([
                    {"query": "S(y)", "db": "main"},
                    {"query": "R(x", "db": "main"},
                ])
                results = batch["results"]
                assert results[0]["rows"] == [["0"], ["01"]]
                assert results[1]["error"]["code"] == "parse"

        asyncio.run(body())

    def test_many_concurrent_async_clients(self, server):
        host, port = server.server_address[:2]

        async def one():
            async with await AsyncServiceClient.connect(host, port) as client:
                resp = await client.run("R(x) & last(x, '0')", db="main")
                return resp["ok"] and resp["rows"] == [["0110"]]

        async def body():
            return await asyncio.gather(*(one() for _ in range(32)))

        assert all(asyncio.run(body()))


class TestQuota:
    def _server(self, **cfg):
        svc = QueryService(ServiceConfig(workers=2, **cfg))
        svc.register_database("main", small_db())
        return _tcp_server(svc)

    def test_reject_mode_returns_structured_quota_error(self):
        # burst=1 with a glacial refill: the second request in the same
        # instant must be rejected with a retryable quota error.
        server, thread = self._server(
            quota_rate=0.001, quota_burst=1.0, backpressure="reject"
        )
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as client:
                first = client.run("R(x)", db="main")
                assert first["ok"]
                second = client.run("R(x)", db="main")
                assert second["ok"] is False
                assert second["error"]["code"] == "quota"
                assert second["error"]["retryable"] is True
                assert second["retry_after"] > 0
                assert METRICS.get("service.quota_rejections") >= 1
                # Control ops are never metered.
                assert client.ping()["pong"] is True
        finally:
            _stop(server, thread)

    def test_quota_is_per_connection(self):
        server, thread = self._server(
            quota_rate=0.001, quota_burst=1.0, backpressure="reject"
        )
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as a:
                assert a.run("R(x)", db="main")["ok"]
                with ServiceClient(host, port) as b:
                    # A fresh connection has its own bucket.
                    assert b.run("R(x)", db="main")["ok"]
        finally:
            _stop(server, thread)

    def test_block_mode_delays_instead_of_rejecting(self):
        # rate=2 → the bucket needs 500ms to refill, so the second run
        # must wait even when the first one's round trip was slow (a
        # fast refill rate makes this assertion timing-flaky).
        server, thread = self._server(
            quota_rate=2.0, quota_burst=1.0, backpressure="block"
        )
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as client:
                assert client.run("R(x)", db="main")["ok"]
                assert client.run("R(x)", db="main")["ok"]  # delayed, not dropped
            assert METRICS.get("service.quota_delays") >= 1
        finally:
            _stop(server, thread)

    def test_batch_is_charged_per_item(self):
        server, thread = self._server(
            quota_rate=0.001, quota_burst=2.0, backpressure="reject"
        )
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as client:
                # A batch within burst drains one token per item...
                first = client.batch([
                    {"query": "R(x)", "db": "main"} for _ in range(2)
                ])
                assert first["ok"] is True
                # ...so the next single run finds the bucket empty.
                resp = client.run("R(x)", db="main")
                assert resp["ok"] is False
                assert resp["error"]["code"] == "quota"
                assert resp["error"]["retryable"] is True
        finally:
            _stop(server, thread)

    @pytest.mark.parametrize("mode", ["reject", "block"])
    def test_oversized_batch_fails_fast_not_retryable(self, mode):
        # A batch costing more than the bucket's burst can never be
        # admitted: under "block" it used to hang the connection forever
        # and under "reject" the retry_after hint was a lie.  Both modes
        # must fail it up front with a non-retryable structured error.
        server, thread = self._server(
            quota_rate=0.001, quota_burst=2.0, backpressure=mode
        )
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port, read_timeout=10.0) as client:
                resp = client.batch([
                    {"query": "R(x)", "db": "main"} for _ in range(5)
                ])
                assert resp["ok"] is False
                assert resp["error"]["code"] == "invalid"
                assert resp["error"]["retryable"] is False
                assert "quota_burst" in resp["error"]["message"]
                # The connection is still usable afterwards.
                assert client.ping()["pong"] is True
        finally:
            _stop(server, thread)

    def test_invalid_weight_is_a_protocol_error(self):
        server, thread = self._server()
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as client:
                resp = client.run("R(x)", db="main", weight=-2)
                assert resp["ok"] is False and "weight" in resp["error"]["message"]
                resp = client.run("R(x)", db="main", weight=3)
                assert resp["ok"]
        finally:
            _stop(server, thread)


class TestDisconnectCancellation:
    def test_disconnect_mid_request_frees_the_only_worker(self):
        svc = QueryService(workers=1, max_pending=8)
        svc.register_database("main", small_db())
        svc.register_database("adv", adversarial_db())
        server, thread = _tcp_server(svc)
        try:
            host, port = server.server_address[:2]
            # A raw socket sends a long streamed run, then vanishes.
            sock = socket.create_connection((host, port))
            sock.sendall((json.dumps({
                "op": "run", "id": 1, "query": ADVERSARIAL_QUERY,
                "db": "adv", "stream": True, "timeout_ms": 30_000,
            }) + "\n").encode())
            time.sleep(0.3)  # let the worker dequeue it
            sock.close()
            # The abandoned request must be cancelled cooperatively; the
            # single worker comes back to serve the next client.
            with ServiceClient(host, port, read_timeout=30.0) as client:
                resp = client.run("R(x) & last(x, '0')", db="main")
                assert resp["ok"] and resp["rows"] == [["0110"]]
            assert METRICS.get("service.cancel_requested") >= 1
            assert METRICS.get("service.disconnects_inflight") >= 1
            assert METRICS.get("service.streams_cancelled") >= 1
        finally:
            _stop(server, thread)

    def test_disconnect_while_queued_skips_execution(self):
        # One worker busy + one queued request whose client vanishes: the
        # queued job must be skipped before any engine work happens.
        svc = QueryService(workers=1, max_pending=8)
        svc.register_database("main", small_db())
        svc.register_database("adv", adversarial_db())
        server, thread = _tcp_server(svc)
        try:
            host, port = server.server_address[:2]
            busy = socket.create_connection((host, port))
            busy.sendall((json.dumps({
                "op": "run", "id": 1, "query": ADVERSARIAL_QUERY,
                "db": "adv", "timeout_ms": 2_000,
            }) + "\n").encode())
            time.sleep(0.2)
            queued = socket.create_connection((host, port))
            queued.sendall((json.dumps({
                "op": "run", "id": 2, "query": ADVERSARIAL_QUERY,
                "db": "adv", "timeout_ms": 30_000,
            }) + "\n").encode())
            time.sleep(0.2)
            queued.close()   # vanish while still in the queue
            busy.close()
            with ServiceClient(host, port, read_timeout=30.0) as client:
                assert client.run("R(x)", db="main")["ok"]
            assert METRICS.get("service.cancel_requested") >= 1
        finally:
            _stop(server, thread)


class TestBlockModeEventLoop:
    def test_server_answers_pings_while_block_mode_queue_is_full(self):
        # Saturate a block-mode server: one worker busy, the queue full,
        # and one more request retrying admission in the pump.  The event
        # loop must keep answering pings — the regression here was the
        # pump calling the thread-blocking submit path, freezing every
        # connection until queue space freed.  The worker is gated on an
        # event so the saturation window is deterministic, not a race
        # against how fast the machine evaluates queries.
        svc = QueryService(workers=1, max_pending=1, backpressure="block")
        svc.register_database("main", small_db())
        release = threading.Event()
        inner = svc._evaluate

        def gated_evaluate(request):
            release.wait(20)
            return inner(request)

        svc._evaluate = gated_evaluate
        server, thread = _tcp_server(svc)
        socks = []
        try:
            host, port = server.server_address[:2]
            for i in range(3):
                sock = socket.create_connection((host, port))
                sock.sendall((json.dumps({
                    "op": "run", "id": i, "query": "R(x)",
                    "db": "main", "timeout_ms": 30_000,
                }) + "\n").encode())
                socks.append(sock)
            # Wait for full saturation: request 1 gating the worker,
            # request 2 filling the queue, request 3 about to hit the
            # pump's full-queue path.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and not (
                svc._queue.full() and server._scheduler.dispatched >= 2
            ):
                time.sleep(0.01)
            assert svc._queue.full()
            time.sleep(0.2)  # let the pump pop request 3
            t0 = time.monotonic()
            with ServiceClient(host, port, read_timeout=10.0) as client:
                assert client.ping()["pong"] is True
            assert time.monotonic() - t0 < 2.0
        finally:
            release.set()
            for sock in socks:
                sock.close()
            _stop(server, thread)


class TestOversizedLines:
    def test_line_over_limit_gets_structured_error_and_clean_close(self):
        from repro.service.server import READ_LIMIT

        svc = QueryService(workers=1)
        svc.register_database("main", small_db())
        server, thread = _tcp_server(svc)
        try:
            host, port = server.server_address[:2]
            sock = socket.create_connection((host, port))
            sock.settimeout(30)
            try:
                # One "line" past READ_LIMIT with no newline: the server
                # must answer with a structured protocol error and close
                # the connection, not die with an unretrieved ValueError.
                # Overshoot by exactly one byte — a bigger tail can still
                # be in the server's kernel buffer when it closes, which
                # turns the close into an RST that races the error reply.
                sock.sendall(b"a" * (READ_LIMIT + 1))
                buf = b""
                while not buf.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    buf += chunk
                resp = json.loads(buf)
                assert resp["ok"] is False
                assert resp["error"]["code"] == "invalid"
                assert "limit" in resp["error"]["message"]
                assert sock.recv(1) == b""  # clean EOF, not a hang
            finally:
                sock.close()
            # The server survived and serves the next client normally.
            with ServiceClient(host, port, read_timeout=10.0) as client:
                assert client.run("R(x)", db="main")["ok"]
        finally:
            _stop(server, thread)


class TestGracefulShutdown:
    def test_inflight_request_completes_during_drain(self):
        svc = QueryService(workers=2)
        svc.register_database("adv", adversarial_db())
        server, thread = _tcp_server(svc)
        stopped = []
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port, read_timeout=30.0) as client:
                # Kick off a request that outlives the shutdown request,
                # then ask the server to stop while it is in flight.
                threading.Timer(0.15, server.begin_shutdown).start()
                t0 = time.monotonic()
                resp = client.run(ADVERSARIAL_QUERY, db="adv",
                                  timeout_ms=1_000)
                # The in-flight request got its full deadline and a
                # structured answer despite the drain.
                assert resp["ok"] is False
                assert resp["error"]["code"] == "timeout"
                assert time.monotonic() - t0 < 4.0
            thread.join(10)
            stopped.append(not thread.is_alive())
            # The listener is gone: new connections are refused.
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=1.0)
        finally:
            if not stopped:
                _stop(server, thread)
            else:
                server.close_service()
        assert stopped == [True]
        assert svc.closed

    def test_streamed_inflight_gets_its_done_frame(self):
        svc = QueryService(workers=1)
        svc.register_database("main", small_db())
        server, thread = _tcp_server(svc)
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port, read_timeout=30.0) as client:
                threading.Timer(0.05, server.begin_shutdown).start()
                frames = list(client.run_stream("S(y)", db="main",
                                                page_size=1))
                assert frames[-1]["frame"] == "done" and frames[-1]["ok"]
            thread.join(10)
            assert not thread.is_alive()
        finally:
            server.close_service()

    def test_tcp_alias_is_the_async_server(self):
        assert TCPQueryServer is AsyncTCPQueryServer


class TestClientReadDeadline:
    def test_read_timeout_is_a_structured_retryable_error(self):
        # A listener that accepts but never answers: the client must
        # surface a structured retryable timeout, not hang forever.
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(1)
        host, port = sink.getsockname()
        try:
            client = ServiceClient(host, port, read_timeout=0.2)
            t0 = time.monotonic()
            with pytest.raises(ClientReadTimeoutError) as exc_info:
                client.ping()
            assert time.monotonic() - t0 < 2.0
            assert exc_info.value.retryable is True
            assert exc_info.value.code == "client_timeout"
            # The connection is poisoned: later requests fail fast
            # instead of desynchronizing on a late reply.
            with pytest.raises(ServiceError):
                client.ping()
            client.close()
        finally:
            sink.close()

    def test_read_timeout_defaults_to_timeout(self):
        svc = QueryService(workers=1)
        svc.register_database("main", small_db())
        server, thread = _tcp_server(svc)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(host, port, timeout=7.5)
            assert client.read_timeout == 7.5
            explicit = ServiceClient(host, port, timeout=7.5,
                                     read_timeout=1.25)
            assert explicit.read_timeout == 1.25
            client.close()
            explicit.close()
        finally:
            _stop(server, thread)


class TestDispatcherDirect:
    def test_response_ids_echo_any_json_value(self):
        svc = QueryService(workers=1)
        try:
            dispatcher = Dispatcher(svc)
            for request_id in ["abc", 7, None, {"k": 1}]:
                resp, _ = dispatcher.handle({"op": "ping", "id": request_id})
                assert resp["id"] == request_id
        finally:
            svc.close()

    def test_shutdown_can_be_disabled(self):
        svc = QueryService(workers=1)
        try:
            dispatcher = Dispatcher(svc, allow_shutdown=False)
            resp, shutdown = dispatcher.handle({"op": "shutdown", "id": 1})
            assert not resp["ok"] and not shutdown
        finally:
            svc.close()
