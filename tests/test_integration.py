"""End-to-end integration tests across module boundaries.

Each test drives a full pipeline: SQL text -> calculus -> (both engines,
algebra plan, safety analysis) and asserts global consistency — the kind
of cross-module agreement the paper's equivalence theorems promise.
"""

import pytest

from repro import Query, StringDatabase
from repro.algebra import compile_query
from repro.database import random_database
from repro.eval import AutomataEngine, DirectEngine
from repro.logic import parse_formula
from repro.safety import analyze_state_safety, range_restrict
from repro.sql import translate_select
from repro.strings import BINARY
from repro.structures import by_name

DB = StringDatabase(
    "01",
    {
        "LOG": {("0110", "00"), ("0011", "01"), ("1100", "00"), ("10", "10")},
        "TAG": {("00", "0"), ("01", "1"), ("10", "1")},
    },
)


SQL_QUERIES = [
    "SELECT l.1 FROM LOG l WHERE l.1 LIKE '0%'",
    "SELECT l.1, t.2 FROM LOG l, TAG t WHERE l.2 = t.1",
    "SELECT l.1 FROM LOG l WHERE l.1 LIKE '%0' AND NOT l.2 = '00'",
    "SELECT l.1 FROM LOG l, TAG t WHERE l.2 = t.1 AND t.2 = '1' AND PREFIX(t.1, l.1)",
]


def run_translated(translated, database, engine_cls, **kw):
    structure = by_name(translated.structure_name, database.alphabet)
    engine = engine_cls(structure, database.db, **kw)
    result = engine.run(translated.formula)
    mapping = {v: i for i, v in enumerate(result.variables)}
    return {
        tuple(row[mapping[v]] for v in translated.output_variables)
        for row in result.as_set()
    }


class TestSqlPipeline:
    @pytest.mark.parametrize("sql", SQL_QUERIES)
    def test_engines_agree_on_sql(self, sql):
        translated = translate_select(sql, DB.schema)
        via_automata = run_translated(translated, DB, AutomataEngine)
        via_direct = run_translated(translated, DB, DirectEngine)
        assert via_automata == via_direct, sql

    @pytest.mark.slow
    @pytest.mark.parametrize("sql", SQL_QUERIES)
    def test_algebra_agrees_on_sql(self, sql):
        translated = translate_select(sql, DB.schema)
        structure = by_name(translated.structure_name, DB.alphabet)
        compiled = compile_query(translated.formula, structure, DB.schema, slack=1)
        result = AutomataEngine(structure, DB.db).run(translated.formula)
        assert compiled.evaluate(DB.db) == result.as_set(), sql

    @pytest.mark.parametrize("sql", SQL_QUERIES)
    def test_sql_queries_are_safe(self, sql):
        translated = translate_select(sql, DB.schema)
        structure = by_name(translated.structure_name, DB.alphabet)
        report = analyze_state_safety(translated.formula, structure, DB.db)
        assert report.safe  # SELECT outputs are adom-bound, always safe

    def test_first_sql_result_values(self):
        translated = translate_select(SQL_QUERIES[0], DB.schema)
        got = run_translated(translated, DB, AutomataEngine)
        assert got == {("0110",), ("0011",)}


class TestQueryFacadePipelines:
    def test_safety_range_restriction_algebra_consistency(self):
        q = Query("exists adom y: LOG(y, x) & last(y, '0')")
        # Engine output.
        table = q.run(DB)
        # Safety says finite.
        assert q.is_safe_on(DB)
        # Range-restricted version agrees.
        rr = q.range_restricted(slack=1)
        assert rr.evaluate(DB.db) == table.rows_set
        # Algebra agrees.
        compiled = q.to_algebra(DB.schema, slack=1)
        assert compiled.evaluate(DB.db) == table.rows_set

    def test_cross_engine_on_random_dbs(self):
        q = Query(
            "exists adom y: R(y) & x <<= y & last(x, '1')", structure="S"
        )
        for seed in range(5):
            db = random_database(BINARY, {"R": 1}, 5, max_len=5, seed=seed)
            auto = q.run(db)
            direct = q.run(db, engine="direct")
            assert auto.rows() == direct.rows(), seed

    def test_composition_of_query_outputs(self):
        """The paper's compositionality pitch: feed one query's output
        shape into another query, all within the calculus."""
        # Query 1 semantics: tags used by LOG rows starting with 0.
        inner = "exists adom l: LOG(l, x) & matches(l, '0.*')"
        # Query 2: strict prefixes of those tags.
        composed = Query(
            f"exists adom x: ({inner}) & y << x", structure="S"
        )
        got = composed.run(DB)
        tags = {"00", "01"}
        expected = {
            (p,) for t in tags for p in [t[:i] for i in range(len(t))]
        }
        assert got.rows_set == frozenset(expected)
