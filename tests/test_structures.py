"""Tests for structures (signatures, semantics, presentations) and databases."""

import pytest

from repro.errors import ArityError, SignatureError
from repro.logic import parse_formula
from repro.logic.dsl import (
    add_first,
    add_last,
    el,
    eq,
    exists,
    last,
    lcp,
    matches,
    prefix,
    psuffix,
    rel,
    trim_first,
)
from repro.database import (
    Database,
    Schema,
    antichain_vertex,
    complete_graph,
    cycle_graph,
    graph_database,
    random_database,
    unary_database,
)
from repro.strings import BINARY, Alphabet
from repro.structures import S, S_left, S_len, S_reg, by_name


class TestSignatures:
    def test_s_allows_basics(self):
        s = S(BINARY)
        s.check_formula(parse_formula("x <<= y & last(x, '0') & x = eps"))
        s.check_formula(eq(add_last("x", "0"), "y"))
        s.check_formula(eq(lcp("x", "y"), "z"))

    def test_s_rejects_el(self):
        with pytest.raises(SignatureError):
            S(BINARY).check_formula(el("x", "y"))

    def test_s_rejects_add_first(self):
        with pytest.raises(SignatureError):
            S(BINARY).check_formula(eq(add_first("x", "0"), "y"))
        with pytest.raises(SignatureError):
            S(BINARY).check_formula(eq(trim_first("x", "0"), "y"))

    def test_s_star_free_patterns_only(self):
        s = S(BINARY)
        # LIKE-style pattern: star-free, OK.
        s.check_formula(matches("x", "0(0|1)*1"))
        # (00)* is not star-free: rejected in S.
        with pytest.raises(SignatureError):
            s.check_formula(matches("x", "(00)*"))
        with pytest.raises(SignatureError):
            s.check_formula(psuffix("x", "y", "(00)*"))

    def test_s_reg_accepts_regular_patterns(self):
        S_reg(BINARY).check_formula(matches("x", "(00)*"))

    def test_s_reg_rejects_left_ops_and_el(self):
        sr = S_reg(BINARY)
        with pytest.raises(SignatureError):
            sr.check_formula(eq(add_first("x", "0"), "y"))
        with pytest.raises(SignatureError):
            sr.check_formula(el("x", "y"))

    def test_s_left_accepts_left_ops_rejects_regular_patterns(self):
        sl = S_left(BINARY)
        sl.check_formula(eq(add_first("x", "0"), "y"))
        sl.check_formula(eq(trim_first("x", "1"), "y"))
        with pytest.raises(SignatureError):
            sl.check_formula(matches("x", "(00)*"))
        with pytest.raises(SignatureError):
            sl.check_formula(el("x", "y"))

    def test_s_len_accepts_everything(self):
        sl = S_len(BINARY)
        sl.check_formula(el("x", "y"))
        sl.check_formula(matches("x", "(00)*"))
        sl.check_formula(eq(add_first("x", "0"), "y"))

    def test_by_name(self):
        assert by_name("S", BINARY).name == "S"
        assert by_name("S_len", BINARY).name == "S_len"
        with pytest.raises(ValueError):
            by_name("S_concat", BINARY)

    def test_restricted_kinds(self):
        from repro.logic import QuantKind

        assert S(BINARY).restricted_kind is QuantKind.PREFIX
        assert S_left(BINARY).restricted_kind is QuantKind.PREFIX
        assert S_reg(BINARY).restricted_kind is QuantKind.PREFIX
        assert S_len(BINARY).restricted_kind is QuantKind.LENGTH

    def test_definable_language_classes(self):
        assert S(BINARY).definable_language_class == "star-free"
        assert S_left(BINARY).definable_language_class == "star-free"
        assert S_reg(BINARY).definable_language_class == "regular"
        assert S_len(BINARY).definable_language_class == "regular"


class TestAtomSemantics:
    def test_core_predicates(self):
        s = S_len(BINARY)
        a = {"x": "011", "y": "0110", "z": "101"}
        assert s.eval_atom(prefix("x", "y"), a)
        assert not s.eval_atom(prefix("y", "x"), a)
        assert s.eval_atom(last("x", "1"), a)
        assert s.eval_atom(el("x", "z"), a)

    def test_matches_semantics(self):
        s = S_reg(BINARY)
        assert s.eval_atom(matches("x", "0(0|1)*"), {"x": "010"})
        assert not s.eval_atom(matches("x", "0(0|1)*"), {"x": "110"})

    def test_psuffix_semantics(self):
        s = S_reg(BINARY)
        assert s.eval_atom(psuffix("x", "y", "1*"), {"x": "0", "y": "011"})
        assert not s.eval_atom(psuffix("x", "y", "1*"), {"x": "0", "y": "010"})
        assert not s.eval_atom(psuffix("x", "y", "1*"), {"x": "1", "y": "011"})

    def test_term_evaluation_in_atoms(self):
        s = S_len(BINARY)
        f = eq(add_first(add_last("x", "0"), "1"), "y")
        assert s.eval_atom(f, {"x": "01", "y": "1010"})

    def test_atom_relation_agrees_with_eval(self):
        s = S_len(BINARY)
        from repro.logic.dsl import len_le, lex_le

        atoms = [
            prefix("x", "y"),
            el("x", "y"),
            len_le("x", "y"),
            lex_le("x", "y"),
            psuffix("x", "y", "0*1"),
        ]
        for atom in atoms:
            rel_auto = s.atom_relation(atom)
            for x in BINARY.strings_up_to(3):
                for y in BINARY.strings_up_to(3):
                    assert rel_auto.contains((x, y)) == s.eval_atom(atom, {"x": x, "y": y})


class TestSchema:
    def test_basic(self):
        sc = Schema({"R": 1, "E": 2})
        assert sc.arity("E") == 2
        assert "R" in sc and "X" not in sc
        assert sc.relation_names == ("E", "R")

    def test_unary_check(self):
        assert Schema({"R": 1, "S": 1}).is_unary()
        assert not Schema({"R": 1, "E": 2}).is_unary()

    def test_validation(self):
        with pytest.raises(ArityError):
            Schema({"R": 0})
        with pytest.raises(ValueError):
            Schema({"1bad": 1})


class TestDatabase:
    def test_adom(self):
        db = Database(BINARY, {"R": {("01",), ("10",)}, "E": {("01", "111")}})
        assert db.adom == {"01", "10", "111"}
        assert db.max_string_length == 3
        assert db.size == 3

    def test_mixed_arity_rejected(self):
        with pytest.raises(ArityError):
            Database(BINARY, {"R": {("0",), ("0", "1")}})

    def test_alphabet_checked(self):
        with pytest.raises(Exception):
            Database(BINARY, {"R": {("abc",)}})

    def test_schema_inference_and_empty_relations(self):
        db = Database(BINARY, {"R": set()}, schema=Schema({"R": 2}))
        assert db.relation("R") == frozenset()
        assert db.schema.arity("R") == 2

    def test_string_shorthand(self):
        db = Database(BINARY, {"R": {"01", "10"}})
        assert db.relation("R") == {("01",), ("10",)}

    def test_with_relation(self):
        db = Database(BINARY, {"R": {("0",)}})
        db2 = db.with_relation("S", [("1",)])
        assert "S" in db2.schema
        assert db.relation("R") == db2.relation("R")

    def test_prefix_closure(self):
        db = Database(BINARY, {"R": {("011",)}})
        assert db.adom_prefix_closure() == {"", "0", "01", "011"}

    def test_relation_automaton(self):
        db = Database(BINARY, {"E": {("0", "1"), ("1", "")}})
        auto = db.relation_automaton("E")
        assert auto.set_of_tuples() == {("0", "1"), ("1", "")}


class TestWidth:
    def test_width_antichain(self):
        db = Database(BINARY, {"R": {("10",), ("01",), ("110",)}})
        assert db.width() == 1

    def test_width_chain(self):
        db = Database(BINARY, {"R": {("0",), ("01",), ("011",), ("10",)}})
        assert db.width() == 3

    def test_width_empty(self):
        assert Database(BINARY, {"R": set()}).width() == 0

    def test_width_epsilon_in_adom(self):
        db = Database(BINARY, {"R": {("",), ("0",)}})
        assert db.width() == 2

    def test_width_one_encoding(self):
        db = Database(BINARY, {"R": {("0",), ("01",), ("011",)}, "E": {("0", "01")}})
        encoded, mapping = db.width_one_encoding()
        assert encoded.width() == 1
        assert len(mapping) == 3
        # Isomorphic: relation sizes preserved (encoding injective).
        assert encoded.size == db.size
        assert len(encoded.adom) == len(db.adom)

    def test_width_one_encoding_bigger_alphabet(self):
        abc = Alphabet("abc")
        db = Database(abc, {"R": {("a",), ("ab",), ("abc",), ("c",)}})
        encoded, mapping = db.width_one_encoding()
        assert encoded.width() == 1
        assert len(set(mapping.values())) == len(mapping)


class TestGenerators:
    def test_random_database_deterministic(self):
        a = random_database(BINARY, {"R": 1, "E": 2}, 5, seed=42)
        b = random_database(BINARY, {"R": 1, "E": 2}, 5, seed=42)
        assert a == b
        assert len(a.relation("R")) == 5
        assert len(a.relation("E")) == 5

    def test_unary_database(self):
        db = unary_database(BINARY, 10, seed=1)
        assert db.schema.is_unary()
        assert len(db.relation("R")) == 10

    def test_antichain_vertices(self):
        vs = [antichain_vertex(i, BINARY) for i in range(5)]
        assert vs[0] == "0" and vs[2] == "110"
        for i, v in enumerate(vs):
            for j, w in enumerate(vs):
                if i != j:
                    assert not w.startswith(v)

    def test_graph_database_width_one(self):
        db = graph_database(5, cycle_graph(5), BINARY)
        assert db.width() == 1
        assert len(db.relation("V")) == 5
        assert len(db.relation("E")) == 10

    def test_complete_graph(self):
        assert len(complete_graph(4)) == 12


class TestWidthOneInvariance:
    """The width-1 re-encoding is an SC-isomorphism (Section 5.2): pure
    relational queries give isomorphic answers on the re-encoded database."""

    def test_relational_query_preserved(self):
        from repro.eval import AutomataEngine
        from repro.logic import parse_formula
        from repro.structures import S

        db = Database(BINARY, {"R": {("0",), ("01",)}, "E": {("0", "01"), ("01", "0")}})
        encoded, mapping = db.width_one_encoding()
        q = parse_formula("R(x) & exists adom y: E(x, y) & R(y)")
        original = AutomataEngine(S(BINARY), db).run(q).as_set()
        translated = AutomataEngine(S(BINARY), encoded).run(q).as_set()
        assert {(mapping[x],) for (x,) in original} == translated

    def test_boolean_relational_query_preserved(self):
        from repro.eval import AutomataEngine
        from repro.logic import parse_formula
        from repro.structures import S

        db = Database(BINARY, {"R": {("0",), ("11",)}, "E": {("0", "11")}})
        encoded, _mapping = db.width_one_encoding()
        sentences = [
            "exists adom x: exists adom y: E(x, y) & R(x) & R(y)",
            "forall adom x: R(x) -> exists adom y: E(x, y) | E(y, x)",
        ]
        for text in sentences:
            q = parse_formula(text)
            a = AutomataEngine(S(BINARY), db).decide(q)
            b = AutomataEngine(S(BINARY), encoded).decide(q)
            assert a == b, text

    def test_string_queries_not_preserved(self):
        """The encoding is only an SC-isomorphism: string predicates like
        `last` may disagree -- which is exactly why width matters (the
        re-encoding changes the string-theoretic content, Prop 5 uses the
        freedom deliberately)."""
        from repro.eval import AutomataEngine
        from repro.logic import parse_formula
        from repro.structures import S

        db = Database(BINARY, {"R": {("0",), ("1",)}})
        encoded, _ = db.width_one_encoding()
        q = parse_formula("exists adom x: R(x) & last(x, '0')")
        # Original: "0" ends with 0 -> true. Encoded strings all end "11".
        assert AutomataEngine(S(BINARY), db).decide(q)
        assert not AutomataEngine(S(BINARY), encoded).decide(q)
