"""Tests for the automatic-structure engine (convolution automata).

Every operation is checked against a brute-force oracle over the bounded
universe ``Sigma^{<=N}``: relations are small explicit sets of tuples, and
logic operations are set operations.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import compile_regex
from repro.automatic import (
    PAD,
    RelationAutomaton,
    columns,
    convolve,
    deconvolve,
    presentations as pres,
    valid_pad_dfa,
)
from repro.errors import ArityError
from repro.strings import BINARY, Alphabet, lcp, lex_le, trim_first

N = 4  # bounded-universe depth for oracles
UNIVERSE = list(BINARY.strings_up_to(N))

short = st.text(alphabet="01", max_size=3)
pairs = st.tuples(short, short)


class TestConvolution:
    def test_convolve_basic(self):
        w = convolve(("01", "1"))
        assert w == (("0", "1"), ("1", PAD))

    def test_convolve_empty_components(self):
        assert convolve(("", "")) == ()
        assert convolve(("", "1")) == ((PAD, "1"),)

    def test_roundtrip(self):
        for tup in [("01", "1"), ("", ""), ("0", "0110"), ("111", "000")]:
            assert deconvolve(convolve(tup), 2) == tup

    @given(pairs)
    def test_roundtrip_property(self, tup):
        assert deconvolve(convolve(tup), 2) == tup

    def test_deconvolve_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            deconvolve(((PAD, "1"), ("0", "1")), 2)
        with pytest.raises(ValueError):
            deconvolve(((PAD, PAD),), 2)

    def test_columns_count(self):
        # (|Sigma|+1)^k - 1 valid columns.
        assert len(columns(BINARY, 1)) == 2
        assert len(columns(BINARY, 2)) == 8
        assert len(columns(BINARY, 3)) == 26

    def test_valid_pad_dfa(self):
        valid = valid_pad_dfa(BINARY, 2)
        assert valid.accepts(convolve(("01", "1")))
        assert not valid.accepts(((PAD, "1"), ("0", "1")))


class TestFiniteRelations:
    def test_from_tuples_membership(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "01"), ("", "1")])
        assert r.contains(("0", "01"))
        assert r.contains(("", "1"))
        assert not r.contains(("0", "1"))
        assert r.count() == 2

    def test_set_roundtrip(self):
        tuples = {("0", "1"), ("01", ""), ("", ""), ("11", "11")}
        r = RelationAutomaton.from_tuples(BINARY, 2, tuples)
        assert r.set_of_tuples() == tuples

    def test_arity_checked(self):
        with pytest.raises(ArityError):
            RelationAutomaton.from_tuples(BINARY, 2, [("0",)])

    def test_empty_and_universe(self):
        assert RelationAutomaton.empty(BINARY, 2).is_empty()
        u = RelationAutomaton.universe(BINARY, 1)
        assert not u.is_finite()
        assert u.contains(("0101",))
        assert u.contains(("",))

    def test_bool_relations(self):
        assert RelationAutomaton.true_relation(BINARY).as_bool()
        assert not RelationAutomaton.false_relation(BINARY).as_bool()

    @given(st.sets(pairs, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_from_tuples_is_exact(self, tuples):
        r = RelationAutomaton.from_tuples(BINARY, 2, tuples)
        assert r.set_of_tuples() == tuples


class TestBooleanOps:
    @given(st.sets(pairs, max_size=5), st.sets(pairs, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_set_semantics(self, s1, s2):
        a = RelationAutomaton.from_tuples(BINARY, 2, s1)
        b = RelationAutomaton.from_tuples(BINARY, 2, s2)
        assert a.union(b).set_of_tuples() == s1 | s2
        assert a.intersection(b).set_of_tuples() == s1 & s2
        assert a.difference(b).set_of_tuples() == s1 - s2

    def test_complement(self):
        r = RelationAutomaton.from_tuples(BINARY, 1, [("0",), ("11",)])
        c = r.complement()
        assert not c.contains(("0",))
        assert c.contains(("1",))
        assert c.contains(("",))
        assert not c.is_finite()

    def test_double_complement_identity(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "1"), ("", "01")])
        assert r.complement().complement().equivalent(r)

    def test_complement_stays_valid(self):
        # The complement must not accept invalid padding words.
        r = RelationAutomaton.empty(BINARY, 2)
        c = r.complement()
        assert not c.dfa.accepts(((PAD, "1"), ("0", "1")))
        assert c.equivalent(RelationAutomaton.universe(BINARY, 2))

    def test_equivalent(self):
        a = RelationAutomaton.from_tuples(BINARY, 1, [("0",), ("1",)])
        b = RelationAutomaton.from_tuples(BINARY, 1, [("1",), ("0",)])
        assert a.equivalent(b)
        assert not a.equivalent(RelationAutomaton.from_tuples(BINARY, 1, [("0",)]))


class TestTrackSurgery:
    def test_project_drops_track(self):
        r = RelationAutomaton.from_tuples(
            BINARY, 2, [("0", "00"), ("0", "01"), ("1", "11")]
        )
        p = r.project(1)  # exists y. R(x, y)
        assert p.set_of_tuples() == {("0",), ("1",)}
        p0 = r.project(0)  # exists x. R(x, y)
        assert p0.set_of_tuples() == {("00",), ("01",), ("11",)}

    def test_project_longer_removed_track(self):
        # The removed track is longer than the kept one: pad saturation.
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "001101")])
        assert r.project(1).set_of_tuples() == {("0",)}
        r2 = RelationAutomaton.from_tuples(BINARY, 2, [("001101", "")])
        assert r2.project(0).set_of_tuples() == {("",)}

    def test_project_infinite(self):
        # exists x. x <<= y  is all of Sigma* for y.
        p = pres.prefix(BINARY).project(0)
        assert p.equivalent(RelationAutomaton.universe(BINARY, 1))

    @given(st.sets(pairs, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_project_oracle(self, s):
        r = RelationAutomaton.from_tuples(BINARY, 2, s)
        assert r.project(1).set_of_tuples() == {(x,) for (x, _y) in s}
        assert r.project(0).set_of_tuples() == {(y,) for (_x, y) in s}

    def test_cylindrify_semantics(self):
        r = RelationAutomaton.from_tuples(BINARY, 1, [("01",)])
        c = r.cylindrify(1)  # (x, fresh)
        for y in UNIVERSE:
            assert c.contains(("01", y))
            assert not c.contains(("0", y))
        c0 = r.cylindrify(0)  # (fresh, x)
        for y in UNIVERSE:
            assert c0.contains((y, "01"))

    def test_cylindrify_then_project_is_identity(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "1"), ("01", "")])
        for pos in range(3):
            assert r.cylindrify(pos).project(pos).equivalent(r)

    def test_reorder(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "11")])
        swapped = r.reorder([1, 0])
        assert swapped.set_of_tuples() == {("11", "0")}

    def test_reorder_validates(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "1")])
        with pytest.raises(ArityError):
            r.reorder([0, 0])

    def test_duplicate_constrain(self):
        r = RelationAutomaton.universe(BINARY, 2)
        eq = r.duplicate_constrain(0, 1)
        assert eq.contains(("01", "01"))
        assert not eq.contains(("01", "0"))


class TestPresentations:
    def test_equality(self):
        r = pres.equality(BINARY)
        for x in UNIVERSE:
            for y in UNIVERSE[:8]:
                assert r.contains((x, y)) == (x == y)

    def test_prefix(self):
        r = pres.prefix(BINARY)
        rs = pres.prefix(BINARY, strict=True)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert r.contains((x, y)) == y.startswith(x)
                assert rs.contains((x, y)) == (y.startswith(x) and x != y)

    def test_extends_by_one(self):
        r = pres.extends_by_one(BINARY)
        assert r.contains(("0", "01"))
        assert r.contains(("", "1"))
        assert not r.contains(("0", "011"))
        assert not r.contains(("1", "01"))

    def test_equal_length(self):
        r = pres.equal_length(BINARY)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert r.contains((x, y)) == (len(x) == len(y))

    def test_length_le(self):
        r = pres.length_le(BINARY)
        rs = pres.length_le(BINARY, strict=True)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert r.contains((x, y)) == (len(x) <= len(y))
                assert rs.contains((x, y)) == (len(x) < len(y))

    def test_last_symbol(self):
        r0 = pres.last_symbol(BINARY, "0")
        r1 = pres.last_symbol(BINARY, "1")
        for x in UNIVERSE:
            assert r0.contains((x,)) == x.endswith("0")
            assert r1.contains((x,)) == x.endswith("1")

    def test_add_last_graph(self):
        r = pres.add_last_graph(BINARY, "1")
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(4):
                assert r.contains((x, y)) == (y == x + "1")

    def test_add_first_graph(self):
        r = pres.add_first_graph(BINARY, "1")
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(4):
                assert r.contains((x, y)) == (y == "1" + x)

    def test_trim_first_graph(self):
        r = pres.trim_first_graph(BINARY, "0")
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert r.contains((x, y)) == (y == trim_first(x, "0"))

    def test_pattern_suffix(self):
        # P_L with L = 1*: x <<= y and y - x in 1*.
        ldfa = compile_regex("1*", BINARY)
        r = pres.pattern_suffix(BINARY, ldfa)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                expected = y.startswith(x) and set(y[len(x):]) <= {"1"}
                assert r.contains((x, y)) == expected

    def test_member(self):
        ldfa = compile_regex("(00)*", BINARY)
        r = pres.member(BINARY, ldfa)
        for x in UNIVERSE:
            assert r.contains((x,)) == (set(x) <= {"0"} and len(x) % 2 == 0)

    def test_member_matches_pattern_suffix_from_eps(self):
        ldfa = compile_regex("0(0|1)*1", BINARY)
        via_p = pres.pattern_suffix(BINARY, ldfa)
        m = pres.member(BINARY, ldfa)
        for x in UNIVERSE:
            assert m.contains((x,)) == via_p.contains(("", x))

    def test_lex_le(self):
        r = pres.lex_le(BINARY)
        rs = pres.lex_le(BINARY, strict=True)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert r.contains((x, y)) == lex_le(x, y, BINARY)
                assert rs.contains((x, y)) == (lex_le(x, y, BINARY) and x != y)

    def test_constant(self):
        r = pres.constant(BINARY, "010")
        assert r.set_of_tuples() == {("010",)}
        assert pres.constant(BINARY, "").set_of_tuples() == {("",)}

    def test_lcp_graph(self):
        r = pres.lcp_graph(BINARY)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                for z in BINARY.strings_up_to(3):
                    assert r.contains((x, y, z)) == (z == lcp(x, y)), (x, y, z)

    def test_cached_presentations(self):
        a = pres.cached(BINARY, "prefix", False)
        b = pres.cached(BINARY, "prefix", False)
        assert a is b
        assert pres.cached(BINARY, "last_symbol", "0").contains(("10",))

    def test_presentations_other_alphabet(self):
        abc = Alphabet("abc")
        r = pres.prefix(abc)
        assert r.contains(("ab", "abc"))
        assert not r.contains(("b", "abc"))


class TestComposedQueries:
    """Mini end-to-end sanity checks composing several operations."""

    def test_strings_ending_in_10(self):
        # exists y: y < x and L_1(y) and L_0(x) -- paper Section 2 example,
        # expressed directly with relation operations.
        ext = pres.extends_by_one(BINARY)  # (y, x)
        l1_y = pres.last_symbol(BINARY, "1").cylindrify(1)  # (y, x)
        l0_x = pres.last_symbol(BINARY, "0").cylindrify(0)  # (y, x)
        r = ext.intersection(l1_y).intersection(l0_x).project(0)
        for x in BINARY.strings_up_to(5):
            assert r.contains((x,)) == x.endswith("10")

    def test_el_definable_length_lt(self):
        # |x| < |y| iff exists z: z << y and el(z, x). (Section 4 example)
        z_sprefix_y = pres.prefix(BINARY, strict=True)  # (z, y)
        el_zx = pres.equal_length(BINARY)  # (z, x)
        # Build over track order (x, y, z).
        a = z_sprefix_y.reorder([0, 1])  # (z, y)
        a = a.cylindrify(0)  # (x, z, y)
        a = a.reorder([0, 2, 1])  # (x, y, z)
        b = el_zx.reorder([1, 0])  # (x, z)
        b = b.cylindrify(1)  # (x, y, z)
        r = a.intersection(b).project(2)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert r.contains((x, y)) == (len(x) < len(y))


class TestJoin:
    def test_composition(self):
        # R = {(x, x.0)}, S = {(y, y.1)}; R join S on (1, 0) composes them.
        r = pres.add_last_graph(BINARY, "0")
        s = pres.add_last_graph(BINARY, "1")
        composed = r.join(s, [(1, 0)])
        # Tracks: (x, x.0, x.0.1)
        assert composed.contains(("", "0", "01"))
        assert composed.contains(("1", "10", "101"))
        assert not composed.contains(("1", "10", "100"))

    def test_join_finite_relations(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "a0"[1:]), ("1", "11")])
        s = RelationAutomaton.from_tuples(BINARY, 2, [("0", "00"), ("11", "1")])
        joined = r.join(s, [(1, 0)])
        # r tuples: (0,0),(1,11); s: (0,00),(11,1)
        # join on r.1 = s.0: (0,0)+(0,00) -> (0,0,00); (1,11)+(11,1) -> (1,11,1)
        assert joined.set_of_tuples() == {("0", "0", "00"), ("1", "11", "1")}

    def test_join_validates(self):
        r = RelationAutomaton.from_tuples(BINARY, 2, [("0", "1")])
        with pytest.raises(ArityError):
            r.join(r, [(0, 0), (1, 0)])
