"""Tests for warm-start cache persistence (``repro.engine.warmstart``).

The acceptance property (ISSUE 9): a service restarted on the same warm
directory answers a previously-compiled automata query **without
recompiling** — every automaton-cache miss of the fresh process is
served from disk (``warm_hits == misses``, ``load_misses == 0``), and
the answers are identical.  The failure-mode half: corrupt, truncated,
foreign-version, or checksum-broken warm files silently degrade to
plain misses — never an error, never a wrong answer.
"""

import os
import pickle

import pytest

from repro.core import Query, StringDatabase
from repro.engine import AutomatonCache, global_cache
from repro.engine.metrics import METRICS
from repro.engine.warmstart import (
    WARM_FORMAT_VERSION,
    WarmStartStore,
    key_digest,
)
from repro.service import QueryService, RunRequest, ServiceConfig


@pytest.fixture(autouse=True)
def _fresh_cache():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


def small_db():
    return StringDatabase(
        "01", {"R": {"0110", "001", "11"}, "S": {"0", "01"}}
    )


QUERY = "R(x) & last(x, '0')"


def run_once(warm_dir, query=QUERY, engine="automata"):
    """One service lifetime: run ``query``, close (which spills)."""
    cache = AutomatonCache(maxsize=128)
    svc = QueryService(ServiceConfig(
        workers=2, cache=cache, warm_dir=str(warm_dir)
    ))
    svc.register_database("main", small_db())
    try:
        resp = svc.execute(
            RunRequest(query=query, database="main", engine=engine)
        )
    finally:
        svc.close()
    return resp, cache


class TestServiceRoundTrip:
    def test_restart_answers_without_recompiling(self, tmp_path):
        first, cold_cache = run_once(tmp_path)
        assert first.ok
        assert cold_cache.stats()["warm_hits"] == 0  # nothing to load yet
        spilled = [p for p in os.listdir(tmp_path) if p.endswith(".warm")]
        assert spilled, "close() did not spill the automaton cache"

        second, warm_cache = run_once(tmp_path)
        assert second.ok
        assert second.rows == first.rows
        stats = warm_cache.stats()
        # Every miss of the fresh cache was served from disk: the warm
        # process compiled nothing for this query.
        assert stats["warm_hits"] > 0
        assert stats["warm_hits"] == stats["misses"]
        assert METRICS.get("cache.warm_hits") == stats["warm_hits"]
        assert METRICS.get("warmstart.loads") == stats["warm_hits"]

    def test_service_stats_report_warmstart(self, tmp_path):
        cache = AutomatonCache(maxsize=128)
        svc = QueryService(ServiceConfig(
            workers=1, cache=cache, warm_dir=str(tmp_path)
        ))
        svc.register_database("main", small_db())
        try:
            svc.execute(RunRequest(query=QUERY, database="main",
                                   engine="automata"))
            out = svc.stats()
            assert out["warmstart"]["directory"] == str(tmp_path)
            assert out["warmstart"]["loads"] == 0
            # Explicit mid-life spill, before close.
            result = svc.spill_warm()
            assert result["written"] > 0
        finally:
            svc.close()
        assert WarmStartStore(str(tmp_path)).entry_count() > 0

    def test_no_warm_dir_means_no_store(self):
        svc = QueryService(workers=1)
        try:
            assert svc.spill_warm() is None
            assert "warmstart" not in svc.stats()
        finally:
            svc.close()


class TestStoreFormat:
    def test_spill_and_load_round_trip(self, tmp_path):
        store = WarmStartStore(str(tmp_path))
        key = ("stage", "fingerprint", ("x",), None)
        value = {"table": [1, 2, 3], "vars": ("x",)}
        assert store.spill_entry(key, value)
        assert store.load(key) == value
        assert store.stats()["loads"] == 1
        assert store.stats()["entries"] == 1

    def test_missing_file_is_a_counted_miss(self, tmp_path):
        store = WarmStartStore(str(tmp_path))
        assert store.load(("never", "spilled")) is None
        assert store.stats()["load_misses"] == 1
        assert store.stats()["load_rejected"] == 0

    def test_existing_file_is_not_rewritten(self, tmp_path):
        store = WarmStartStore(str(tmp_path))
        key = ("k",)
        assert store.spill_entry(key, "first")
        before = os.stat(store.path_for(key)).st_mtime_ns
        assert store.spill_entry(key, "second")  # reused, not rewritten
        assert os.stat(store.path_for(key)).st_mtime_ns == before
        assert store.load(key) == "first"

    def test_unpicklable_value_is_skipped(self, tmp_path):
        store = WarmStartStore(str(tmp_path))
        assert not store.spill_entry(("closure",), lambda: None)
        assert store.stats()["spill_skipped"] == 1
        assert store.entry_count() == 0

    def _spill(self, tmp_path, key=("k",), value=("v", 1)):
        store = WarmStartStore(str(tmp_path))
        assert store.spill_entry(key, value)
        return store, store.path_for(key)

    def test_truncated_file_is_rejected(self, tmp_path):
        store, path = self._spill(tmp_path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) - 3])
        assert store.load(("k",)) is None
        assert store.stats()["load_rejected"] == 1

    def test_garbage_file_is_rejected(self, tmp_path):
        store, path = self._spill(tmp_path)
        open(path, "wb").write(b"not a warm file at all\n")
        assert store.load(("k",)) is None
        assert store.stats()["load_rejected"] == 1

    def test_checksum_mismatch_is_rejected(self, tmp_path):
        store, path = self._spill(tmp_path)
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF  # flip one payload byte; header checksum now lies
        open(path, "wb").write(bytes(raw))
        assert store.load(("k",)) is None
        assert store.stats()["load_rejected"] == 1

    def test_foreign_format_version_is_rejected(self, tmp_path):
        import hashlib
        import json

        store = WarmStartStore(str(tmp_path))
        key = ("k",)
        payload = pickle.dumps(("v", 1))
        header = json.dumps({
            "format": WARM_FORMAT_VERSION + 999,
            "key": key_digest(key),
            "len": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }).encode()
        with open(store.path_for(key), "wb") as f:
            f.write(b"repro-warm\n" + header + b"\n" + payload)
        assert store.load(key) is None
        assert store.stats()["load_rejected"] == 1

    def test_wrong_key_digest_is_rejected(self, tmp_path):
        # A file renamed onto another key's path must not load: the
        # header pins the key the payload was spilled under.
        store = WarmStartStore(str(tmp_path))
        store.spill_entry(("a",), "value-for-a")
        os.replace(store.path_for(("a",)), store.path_for(("b",)))
        assert store.load(("b",)) is None
        assert store.stats()["load_rejected"] == 1

    def test_attach_makes_loads_lazy(self, tmp_path):
        store = WarmStartStore(str(tmp_path))
        store.spill_entry(("hot",), "hot-value")
        store.spill_entry(("cold",), "cold-value")
        cache = AutomatonCache(maxsize=8)
        store.attach(cache)
        assert cache.get(("hot",)) == "hot-value"
        assert store.stats()["loads"] == 1  # "cold" was never read
        assert cache.stats()["warm_hits"] == 1
        # Second access is an in-memory hit, not another disk read.
        assert cache.get(("hot",)) == "hot-value"
        assert store.stats()["loads"] == 1

    def test_config_rejects_bad_quota(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            ServiceConfig(quota_rate=0)
        with pytest.raises(ServiceError):
            ServiceConfig(quota_burst=0)
        with pytest.raises(ServiceError):
            ServiceConfig(stream_page_size=0)
