"""Tests for the direct engine + cross-engine agreement + collapse.

The agreement tests are the operational reproduction of the collapse
theorems (Theorem 1, Proposition 4, Theorem 6): a natural-quantifier
formula evaluated exactly (automata engine) must agree with its collapsed
form evaluated by enumeration (direct engine).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import Database, random_database
from repro.errors import EvaluationError
from repro.eval import AutomataEngine, DirectEngine, collapse
from repro.logic import parse_formula
from repro.logic.dsl import (
    el,
    eq,
    exists,
    exists_adom,
    exists_len,
    exists_prefix,
    forall_adom,
    last,
    matches,
    not_,
    prefix,
    rel,
    sprefix,
)
from repro.strings import BINARY
from repro.structures import S, S_left, S_len, S_reg


def db(**relations):
    return Database(BINARY, relations)


class TestDirectBasics:
    def test_holds_ground(self):
        engine = DirectEngine(S(BINARY), db(R={"01"}))
        assert engine.holds(parse_formula("R(x)"), {"x": "01"})
        assert not engine.holds(parse_formula("R(x)"), {"x": "0"})

    def test_unbound_variable_raises(self):
        engine = DirectEngine(S(BINARY), db(R={"01"}))
        with pytest.raises(EvaluationError):
            engine.holds(parse_formula("R(x)"))

    def test_natural_quantifier_rejected(self):
        engine = DirectEngine(S(BINARY), db(R={"01"}))
        with pytest.raises(EvaluationError):
            engine.decide(parse_formula("exists x: R(x)"))

    def test_adom_quantifiers(self):
        engine = DirectEngine(S(BINARY), db(R={"01", "10"}))
        assert engine.decide(parse_formula("exists adom x: last(x, '1')"))
        assert engine.decide(parse_formula("forall adom x: !eq(x, eps)"))
        assert not engine.decide(parse_formula("forall adom x: last(x, '0')"))

    def test_prefix_quantifier(self):
        engine = DirectEngine(S(BINARY), db(R={"011"}))
        # Some prefix of an R-string ends in 1.
        assert engine.decide(
            parse_formula("exists prefix x: last(x, '1') & exists adom y: x <<= y")
        )

    def test_run_open_query(self):
        engine = DirectEngine(S(BINARY), db(R={"00", "01", "10"}))
        result = engine.run(parse_formula("R(x) & last(x, '0')"))
        assert result.as_set() == {("00",), ("10",)}

    def test_run_prefix_outputs(self):
        engine = DirectEngine(S(BINARY), db(R={"011"}))
        result = engine.run(parse_formula("exists adom y: x <<= y"))
        assert result.as_set() == {("",), ("0",), ("01",), ("011",)}

    def test_length_domain_exponential(self):
        # The LENGTH domain enumerates Sigma^{<= max+slack}.
        engine = DirectEngine(S_len(BINARY), db(R={"000"}))
        assert engine.decide(
            parse_formula("exists len x: el(x, x) & last(x, '1')")
        )


CORPUS = [
    # (structure factory, formula text) -- natural quantifiers throughout.
    (S, "exists x: R(x) & last(x, '0')"),
    (S, "exists x: R(x) & exists y: y << x & last(y, '1')"),
    (S, "forall x: R(x) -> exists y: y <<= x & S(y)"),
    (S, "exists x: R(x) & !exists y: S(y) & y <<= x"),
    (S, "exists x, y: R(x) & R(y) & x != y & lex_lt(x, y)"),
    (S, "exists x: R(x) & matches(x, '0(0|1)*')"),
    (S_left, "exists x: R(x) & exists y: eq(add_first(x, '1'), y) & !R(y)"),
    (S_reg, "exists x: R(x) & matches(x, '(00)*')"),
    (S_reg, "forall x: R(x) -> psuffix(eps, x, '(0|1)(0|1)*')"),
    (S_len, "exists x: R(x) & exists y: S(y) & el(x, y)"),
    (S_len, "forall x: R(x) -> exists y: el(y, x) & last(y, '1')"),
]


class TestCollapseAgreement:
    """Natural semantics (automata) == collapsed semantics (direct)."""

    @pytest.mark.parametrize("factory,text", CORPUS)
    def test_sentence_corpus(self, factory, text):
        structure = factory(BINARY)
        formula = parse_formula(text)
        for seed in (0, 1, 2):
            database = random_database(
                BINARY, {"R": 1, "S": 1}, tuples_per_relation=4, max_len=4, seed=seed
            )
            natural = AutomataEngine(structure, database).decide(formula)
            q = collapse(formula, structure)
            direct = DirectEngine(structure, database, slack=q.slack).decide(q.formula)
            automata_collapsed = AutomataEngine(
                structure, database, slack=q.slack
            ).decide(q.formula)
            assert direct == natural, (text, seed)
            assert automata_collapsed == natural, (text, seed)

    @pytest.mark.parametrize(
        "text",
        [
            "R(x) & last(x, '1')",
            "exists y: R(y) & x <<= y",
            "exists y: R(y) & ext1(y, x)",
            "R(x) & !S(x)",
        ],
    )
    def test_open_query_corpus(self, text):
        structure = S(BINARY)
        formula = parse_formula(text)
        database = random_database(
            BINARY, {"R": 1, "S": 1}, tuples_per_relation=5, max_len=4, seed=7
        )
        natural = AutomataEngine(structure, database).run(formula)
        q = collapse(formula, structure)
        direct = DirectEngine(structure, database, slack=q.slack).run(q.formula)
        assert natural.is_finite()
        assert direct.as_set() == natural.as_set(), text

    @settings(max_examples=20, deadline=None)
    @given(
        strings=st.sets(st.text(alphabet="01", max_size=4), min_size=1, max_size=5),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_property_random_dbs(self, strings, seed):
        """A fixed tricky sentence agrees across engines on random DBs."""
        structure = S(BINARY)
        formula = parse_formula(
            "forall x: R(x) -> exists y: y <<= x & last(y, '1') "
            "| forall z: z <<= x -> !last(z, '1')"
        )
        database = db(R=strings)
        natural = AutomataEngine(structure, database).decide(formula)
        q = collapse(formula, structure)
        direct = DirectEngine(structure, database, slack=q.slack).decide(q.formula)
        assert direct == natural


class TestEngineEquivalenceRestricted:
    """On already-restricted formulas the two engines agree by construction."""

    @pytest.mark.parametrize(
        "text",
        [
            "exists adom x: last(x, '0')",
            "exists prefix x: last(x, '1') & exists adom y: x <<= y",
            "forall adom x: exists prefix y: y <<= x & eq(y, eps)",
            "exists len x: el(x, x) & last(x, '0') & exists adom y: len_le(x, y)",
        ],
    )
    def test_restricted_corpus(self, text):
        formula = parse_formula(text)
        structure = S_len(BINARY)
        for seed in (0, 3):
            database = random_database(
                BINARY, {"R": 1}, tuples_per_relation=4, max_len=3, seed=seed
            )
            for slack in (0, 1):
                a = AutomataEngine(structure, database, slack=slack).decide(formula)
                d = DirectEngine(structure, database, slack=slack).decide(formula)
                assert a == d, (text, seed, slack)
