"""Parser robustness: random input never crashes with anything but ParseError."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.logic import parse_formula
from repro.sql import translate_select
from repro.database import Schema

SCHEMA = Schema({"R": 1, "E": 2})

#: Characters the tokenizers care about.
INTERESTING = "abcxyzRES01 ()&|!<>=,.:'\"%_-"


class TestFormulaParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet=INTERESTING, max_size=40))
    def test_random_text_raises_only_parse_error(self, text):
        try:
            parse_formula(text)
        except ParseError:
            pass  # expected for garbage

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=20))
    def test_arbitrary_unicode(self, text):
        try:
            parse_formula(text)
        except ParseError:
            pass

    def test_deeply_nested_formula(self):
        text = "(" * 50 + "R(x)" + ")" * 50
        f = parse_formula(text)
        assert f.relation_names() == {"R"}

    def test_long_conjunction(self):
        text = " & ".join(["R(x)"] * 200)
        f = parse_formula(text)
        assert len(f.parts) == 200  # type: ignore[union-attr]


class TestSqlParserFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet=INTERESTING + "SELECTFROMWHERE", max_size=60))
    def test_random_sql_raises_only_parse_error(self, text):
        try:
            translate_select(text, SCHEMA)
        except ParseError:
            pass

    @settings(max_examples=80, deadline=None)
    @given(pattern=st.text(alphabet="01%_'a", max_size=10))
    def test_random_like_patterns(self, pattern):
        safe = pattern.replace("'", "''")
        try:
            translate_select(
                f"SELECT r.1 FROM R r WHERE r.1 LIKE '{safe}'", SCHEMA
            )
        except ParseError:
            pass
