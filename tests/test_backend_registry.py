"""Tests for the engine-backend registry: one dispatch path, extensible.

The acceptance property of the tentpole refactor: registering a backend is
*all* it takes for the planner's auto-selection, ``engine=`` forcing on
every API layer, EXPLAIN, and the CLI to see it — and unknown engine
names fail with a registry-sourced error everywhere.
"""

import pytest

from repro.__main__ import main
from repro.automatic.relation import RelationAutomaton
from repro.core import Query, StringDatabase
from repro.engine import METRICS, global_cache
from repro.engine.backend import (
    EngineBackend,
    all_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_engine,
    unregister_backend,
)
from repro.engine.planner import Planner
from repro.errors import EvaluationError
from repro.eval.result import QueryResult
from repro.logic import parse_formula
from repro.structures.catalog import by_name


ANCHORED = "R(x) & exists adom y: S(y) & y <<= x"


@pytest.fixture
def db():
    return StringDatabase("01", {"R": {"0110", "001", "11"}, "S": {"0", "01"}})


@pytest.fixture(autouse=True)
def _fresh():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


class ToyBackend(EngineBackend):
    """A trivially-cheap backend that answers every query with one row."""

    name = "toy"
    priority = -1  # ahead of direct on ties

    def __init__(self):
        self.eligibility_checks = 0
        self.executions = 0

    def eligible(self, formula, structure, database):
        self.eligibility_checks += 1
        return True, "toy backends fear nothing"

    def estimate_cost(self, formula, structure, database, slack, planner):
        return 0.5  # cheaper than anything real

    def execute(self, plan, database, cache, observer=None):
        self.executions += 1
        columns = tuple(sorted(plan.formula.free_variables()))
        relation = RelationAutomaton.from_tuples(
            plan.structure.alphabet, len(columns), {("0",) * len(columns)}
        )
        return QueryResult(columns, relation)


@pytest.fixture
def toy():
    backend = register_backend(ToyBackend())
    yield backend
    unregister_backend("toy")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert backend_names() == ("algebra", "automata", "codegen", "direct")
        assert [b.name for b in all_backends()] == [
            "direct", "codegen", "algebra", "automata",  # priority order
        ]

    def test_get_backend_unknown_lists_names(self):
        with pytest.raises(EvaluationError) as exc:
            get_backend("nosuch")
        msg = str(exc.value)
        assert "nosuch" in msg
        for name in backend_names():
            assert name in msg

    def test_duplicate_registration_rejected(self, toy):
        with pytest.raises(EvaluationError, match="already registered"):
            register_backend(ToyBackend())
        # replace=True swaps it.
        replacement = ToyBackend()
        assert register_backend(replacement, replace=True) is replacement

    def test_reserved_names_rejected(self):
        class Bad(ToyBackend):
            name = "auto"

        with pytest.raises(EvaluationError, match="reserved"):
            register_backend(Bad())

    def test_resolve_engine_normalization(self):
        assert resolve_engine(None) is None
        assert resolve_engine("auto") is None
        assert resolve_engine("direct") == "direct"
        with pytest.raises(EvaluationError, match="registered backends"):
            resolve_engine("nosuch")


class TestPlannerConsidersRegisteredBackends:
    def test_toy_backend_wins_auto_selection(self, db, toy):
        plan = Query(ANCHORED, structure="S").plan(db)
        assert toy.eligibility_checks > 0          # the planner consulted it
        assert plan.engine == "toy"                # ...and picked it (cheapest)
        assert "toy" in plan.costs
        assert METRICS.get("planner.backend.toy.chosen") == 1

    def test_toy_backend_executes_through_every_layer(self, db, toy):
        table = Query(ANCHORED, structure="S").run(db)
        assert toy.executions == 1
        assert table.rows() == [("0",)]
        assert METRICS.get("engine.toy.runs") == 1

    def test_forcing_toy_by_name(self, db, toy):
        plan = Query(ANCHORED, structure="S").plan(db, engine="toy")
        assert plan.engine == "toy" and plan.forced
        assert METRICS.get("planner.backend.toy.forced") == 1

    def test_without_toy_builtin_choice_unchanged(self, db):
        plan = Query(ANCHORED, structure="S").plan(db)
        assert plan.engine == "direct"

    def test_ineligible_backends_are_counted(self, db):
        # NATURAL over a database-dependent scope: direct cannot
        # enumerate it and the RANF translation bails, so algebra is
        # counted out too (a db-free NATURAL scope would now pass — the
        # RANF translation widened that regime).
        Planner(by_name("S", db.alphabet), db.db).plan(
            parse_formula("exists x: (R(x) & exists y: (y <<= x & S(y)))")
        )
        assert METRICS.get("planner.backend.direct.ineligible") == 1
        assert METRICS.get("planner.backend.algebra.ineligible") == 1

    def test_db_free_natural_scope_now_algebra_eligible(self, db):
        # The formula the old syntactic gate rejected outright.
        plan = Planner(by_name("S", db.alphabet), db.db).plan(
            parse_formula("R(x) & exists y: y <<= x")  # NATURAL, db-free scope
        )
        assert METRICS.get("planner.backend.direct.ineligible") == 1
        assert METRICS.get("planner.backend.algebra.ineligible") == 0
        assert "direct" in plan.ineligible
        assert "algebra" not in plan.ineligible


class TestUnknownEngineEverywhere:
    def test_query_plan_force_unknown(self, db):
        with pytest.raises(EvaluationError) as exc:
            Query(ANCHORED, structure="S").plan(db, engine="nosuch")
        assert "registered backends" in str(exc.value)
        assert "direct" in str(exc.value)

    def test_query_run_unknown(self, db):
        with pytest.raises(EvaluationError, match="registered backends"):
            Query(ANCHORED, structure="S").run(db, engine="nosuch")

    def test_cli_unknown_engine_clean_exit(self, tmp_path, capsys):
        good = tmp_path / "db.json"
        good.write_text('{"alphabet": "01", "relations": {"R": [["0"]]}}')
        rc = main(["run", "R(x)", "--db", str(good), "--engine", "nosuch"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "direct" in err and "automata" in err and "algebra" in err
        assert "Traceback" not in err


class TestDecideThroughPlanner:
    def test_decide_goes_through_planner(self, db):
        sentence = Query("exists adom y: R(y)", structure="S")
        assert sentence.decide(db) is True
        # Historically decide() built the automata engine directly and no
        # planner counters moved; now it plans like any other evaluation.
        assert METRICS.get("planner.plans") == 1

    def test_decide_respects_forced_engine(self, db):
        sentence = Query("exists adom y: R(y)", structure="S")
        assert sentence.decide(db, engine="automata") is True
        assert METRICS.get("planner.backend.automata.forced") == 1

    def test_decide_rejects_free_variables(self, db):
        with pytest.raises(EvaluationError, match="sentence"):
            Query("R(x)", structure="S").decide(db)
