"""Differential property tests: the dense kernel vs the legacy DFA path.

Every converted hot path (``automata/ops.py``, ``sql/like.py``/
``similar.py``, ``mso/to_dfa.py``, the automatic-relation layer) now
routes through :mod:`repro.automata.kernel`.  The legacy dict-of-dicts
implementations still exist — ``DFA.minimize``, ``NFA.determinize``,
``automata/legacy.py``'s eager product — precisely so these tests can
check the two against each other on randomized inputs: random DFAs,
NFAs, regexes, and words.  Agreement is exact (same language, same
minimal state count), not approximate.

The deterministic unit tests at the bottom pin the kernel-only
behaviours: lazy product short-circuiting, METRICS counters, and the
numpy/pure-Python path equivalence when numpy is present.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import legacy
from repro.automata.dfa import DFA
from repro.automata.kernel import (
    DenseDFA,
    ProductPipeline,
    SymbolTable,
    determinize_minimized,
    equivalent_dfa,
    intersect_all_minimized,
    minimize_dfa,
    product_dfa,
    to_dense,
    union_all_minimized,
)
from repro.automata.nfa import EPSILON, NFA
from repro.automata.regex import compile_regex, parse_regex
from repro.engine.metrics import METRICS
from repro.strings.alphabet import Alphabet

ALPHABET = ("a", "b")

MODES = ("and", "or", "diff", "xor")


# ---------------------------------------------------------------- strategies


@st.composite
def dfas(draw, max_states: int = 6) -> DFA:
    """A random (possibly partial, possibly disconnected) dict DFA."""
    n = draw(st.integers(min_value=1, max_value=max_states))
    transitions = {}
    for q in range(n):
        row = {}
        for sym in ALPHABET:
            target = draw(st.integers(min_value=-1, max_value=n - 1))
            if target >= 0:
                row[sym] = target
        if row:
            transitions[q] = row
    accepting = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    return DFA(ALPHABET, range(n), 0, accepting, transitions)


@st.composite
def nfas(draw, max_states: int = 5) -> NFA:
    n = draw(st.integers(min_value=1, max_value=max_states))
    transitions = {}
    for q in range(n):
        row = {}
        for sym in ALPHABET + (EPSILON,):
            targets = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=2))
            if targets:
                row[sym] = targets
        if row:
            transitions[q] = row
    starts = draw(st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=2))
    accepting = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    return NFA(ALPHABET, range(n), starts, accepting, transitions)


@st.composite
def regex_texts(draw, depth: int = 3) -> str:
    """A random regex over {a, b} in the parser's concrete syntax."""
    if depth == 0:
        return draw(st.sampled_from(["a", "b", "(a|b)"]))
    left = draw(regex_texts(depth=depth - 1))
    right = draw(regex_texts(depth=depth - 1))
    shape = draw(st.sampled_from(["concat", "union", "star", "plus", "opt"]))
    if shape == "concat":
        return f"{left}{right}"
    if shape == "union":
        return f"({left}|{right})"
    if shape == "star":
        return f"({left})*"
    if shape == "plus":
        return f"({left})+"
    return f"({left})?"


words = st.lists(st.text(alphabet="ab", max_size=6), min_size=1, max_size=8)


def _same_language_on(words_, dense: DenseDFA, dict_dfa: DFA) -> None:
    for w in words_:
        assert dense.accepts(w) == dict_dfa.accepts(w), w


# ------------------------------------------------------- agreement properties


class TestDenseAgreesWithLegacy:
    @settings(max_examples=80, deadline=None)
    @given(dfa=dfas(), sample=words)
    def test_round_trip_preserves_language(self, dfa, sample):
        dense = to_dense(dfa)
        back = dense.to_dfa()
        for w in sample:
            assert dense.accepts(w) == dfa.accepts(w) == back.accepts(w), w

    @settings(max_examples=80, deadline=None)
    @given(dfa=dfas(), sample=words)
    def test_minimize_same_states_same_language(self, dfa, sample):
        legacy_min = dfa.minimize()
        kernel_min = minimize_dfa(dfa)
        assert kernel_min.num_states == legacy_min.num_states
        for w in sample:
            assert kernel_min.accepts(w) == legacy_min.accepts(w) == dfa.accepts(w), w

    @settings(max_examples=60, deadline=None)
    @given(left=dfas(), right=dfas(), sample=words)
    def test_products_agree_all_modes(self, left, right, sample):
        keeps = {
            "and": lambda a, b: a and b,
            "or": lambda a, b: a or b,
            "diff": lambda a, b: a and not b,
            "xor": lambda a, b: a != b,
        }
        for mode in MODES:
            eager = legacy.product(left, right, keeps[mode])
            lazy = product_dfa(left, right, mode)
            for w in sample:
                assert lazy.accepts(w) == eager.accepts(w), (mode, w)
            assert lazy.is_empty() == eager.minimize().is_empty(), mode

    @settings(max_examples=60, deadline=None)
    @given(nfa=nfas(), sample=words)
    def test_determinize_same_states_same_language(self, nfa, sample):
        legacy_min = nfa.determinize().minimize()
        kernel_min = determinize_minimized(nfa)
        assert kernel_min.num_states == legacy_min.num_states
        for w in sample:
            assert kernel_min.accepts(w) == nfa.accepts(w), w

    @settings(max_examples=40, deadline=None)
    @given(text=regex_texts(), sample=words)
    def test_regex_compilation_agrees(self, text, sample):
        alphabet = Alphabet("ab")
        via_kernel = compile_regex(text, alphabet)  # kernel-routed to_min_dfa
        via_legacy = (
            parse_regex(text).to_nfa(alphabet).determinize().minimize()
        )
        assert via_kernel.num_states == via_legacy.num_states
        for w in sample:
            assert via_kernel.accepts(w) == via_legacy.accepts(w), w

    @settings(max_examples=60, deadline=None)
    @given(left=dfas(), right=dfas())
    def test_hopcroft_karp_equivalence_agrees(self, left, right):
        # Independent oracle: the legacy eager XOR product is empty iff
        # the two automata accept the same language.
        xor = legacy.product(left, right, lambda a, b: a != b)
        assert equivalent_dfa(left, right) == xor.minimize().is_empty()

    @settings(max_examples=40, deadline=None)
    @given(chain=st.lists(dfas(max_states=4), min_size=1, max_size=4), sample=words)
    def test_nary_pipelines_agree_with_folds(self, chain, sample):
        inter = intersect_all_minimized(chain)
        union = union_all_minimized(chain)
        for w in sample:
            assert inter.accepts(w) == all(d.accepts(w) for d in chain), w
            assert union.accepts(w) == any(d.accepts(w) for d in chain), w


# ------------------------------------------------------- kernel-only behaviour


class TestKernelBehaviour:
    def test_symbol_table_interning_is_stable(self):
        table = SymbolTable("ab")
        assert table.intern("a") == 0 and table.intern("b") == 1
        assert table.intern("a") == 0  # idempotent
        assert table.index("z") == -1 and "z" not in table
        assert table.symbols == ("a", "b")

    def test_dense_cache_is_memoized_on_dfa(self):
        dfa = DFA(ALPHABET, [0, 1], 0, [1], {0: {"a": 1}, 1: {"a": 1}})
        assert dfa.to_dense() is dfa.to_dense()

    def test_lazy_product_short_circuits_emptiness(self):
        alphabet = Alphabet("ab")
        only_a = to_dense(compile_regex("a*", alphabet))
        only_b = to_dense(compile_regex("bb*", alphabet))
        anything = to_dense(compile_regex("(a|b)*", alphabet))
        # Disjoint languages: empty intersection, decided lazily.
        assert ProductPipeline([only_a, only_b], "and").is_empty()
        # Overlapping languages: the first accepting product state stops
        # exploration and counts a short-circuit in METRICS.
        before = METRICS.snapshot().get("kernel.short_circuits", 0)
        assert not ProductPipeline([only_a, anything], "and").is_empty()
        assert METRICS.snapshot().get("kernel.short_circuits", 0) > before

    def test_pipeline_containment(self):
        alphabet = Alphabet("ab")
        small = to_dense(compile_regex("ab", alphabet))
        big = to_dense(compile_regex("(a|b)*", alphabet))
        assert ProductPipeline([big], "and").contains(small)
        assert not ProductPipeline([small], "and").contains(big)

    def test_metrics_count_dense_builds(self):
        before = METRICS.snapshot()
        dfa = DFA(ALPHABET, [0, 1], 0, [1], {0: {"a": 1, "b": 0}})
        dfa.to_dense()
        minimize_dfa(dfa)
        after = METRICS.snapshot()
        assert after.get("kernel.dense_dfas", 0) > before.get("kernel.dense_dfas", 0)
        assert after.get("kernel.minimizations", 0) > before.get(
            "kernel.minimizations", 0
        )

    def test_empty_alphabet_edge(self):
        dfa = DFA([], [0], 0, [0], {})
        dense = to_dense(dfa)
        assert dense.accepts("")
        assert minimize_dfa(dfa).accepts("")
        assert not dense.accepts("a")


try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the image
    HAVE_NUMPY = False


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy fast paths not available")
class TestNumpyPurePathEquivalence:
    """The vectorized minimize/materialize must build byte-identical
    automata to the pure-Python fallbacks (state numbering included) —
    determinism across machines with and without numpy."""

    def _random_dense(self, rng: random.Random, n: int) -> DenseDFA:
        transitions = {
            q: {s: rng.randrange(n) for s in ALPHABET if rng.random() < 0.8}
            for q in range(n)
        }
        accepting = [q for q in range(n) if rng.random() < 0.4]
        return to_dense(DFA(ALPHABET, range(n), 0, accepting or [0], transitions))

    def test_minimize_paths_identical(self):
        import repro.automata.kernel as kernel

        rng = random.Random(11)
        for trial in range(10):
            dense = self._random_dense(rng, 24)  # above _NP_MINIMIZE_FLOOR
            via_np = dense.minimize()
            original_floor = kernel._NP_MINIMIZE_FLOOR
            kernel._NP_MINIMIZE_FLOOR = 1 << 30  # force the pure path
            try:
                via_pure = dense.minimize()
            finally:
                kernel._NP_MINIMIZE_FLOOR = original_floor
            assert via_np.delta == via_pure.delta, trial
            assert via_np.accepting == via_pure.accepting, trial

    def test_materialize_paths_identical(self):
        import repro.automata.kernel as kernel

        rng = random.Random(13)
        for trial in range(10):
            parts = [self._random_dense(rng, 8) for _ in range(3)]
            pipe = ProductPipeline(parts, "and")
            via_np = pipe._materialize_np(kernel._NP_PRODUCT_CAPACITY)
            via_pure = ProductPipeline(parts, "and")._materialize_lazy()
            assert via_np.delta == via_pure.delta, trial
            assert via_np.accepting == via_pure.accepting, trial
