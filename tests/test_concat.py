"""Tests for the RC_concat module: Proposition 1 and Corollary 1 artifacts."""

import pytest

from repro.concat import (
    BoundedConcatEngine,
    PcpInstance,
    TuringMachine,
    acceptance_formula,
    accepts_via_formula,
    concat,
    decide_state_safety,
    encode_history,
    encode_solution,
    is_witness,
    parity_machine,
    safety_reduction,
    solve_pcp,
    witness_formula,
)
from repro.database import Database
from repro.errors import UndecidableError
from repro.logic.dsl import eq, exists, not_
from repro.logic.formulas import Exists, QuantKind
from repro.logic.terms import Var
from repro.strings import Alphabet, BINARY

PCP_ALPHABET = Alphabet("01$%")


class TestBoundedEngine:
    def test_concat_term(self):
        t = concat(Var("x"), "1", Var("y"))
        assert t.evaluate({"x": "0", "y": "0"}) == "010"

    def test_exists_decomposition(self):
        # exists a, b: x = a . '1' . b  -- "x contains a 1".
        engine = BoundedConcatEngine(BINARY)
        f = Exists(
            "a",
            Exists("b", eq(Var("x"), concat(Var("a"), "1", Var("b"))), QuantKind.NATURAL),
            QuantKind.NATURAL,
        )
        assert engine.holds(f, {"x": "001"})
        assert not engine.holds(f, {"x": "000"})

    def test_forall_over_factors(self):
        # forall a, b: x = a.'1'.b -> a = eps   ("the only 1 is first").
        engine = BoundedConcatEngine(BINARY)
        from repro.logic.formulas import Forall

        body = eq(Var("x"), concat(Var("a"), "1", Var("b"))).implies(
            eq(Var("a"), Var("e"))
        )
        f = Forall("a", Forall("b", body, QuantKind.NATURAL), QuantKind.NATURAL)
        assert engine.holds(f, {"x": "100", "e": ""})
        assert not engine.holds(f, {"x": "010", "e": ""})

    def test_length_mode(self):
        engine = BoundedConcatEngine(BINARY, mode="length", bound=3)
        # exists y: x = y . y  ("x is a square") -- needs length search.
        f = Exists("y", eq(Var("x"), concat(Var("y"), Var("y"))), QuantKind.NATURAL)
        assert engine.holds(f, {"x": "0101"})
        assert not engine.holds(f, {"x": "010"})

    def test_square_via_pattern_fastpath(self):
        engine = BoundedConcatEngine(BINARY, mode="factors")
        f = Exists("y", eq(Var("x"), concat(Var("y"), Var("y"))), QuantKind.NATURAL)
        assert engine.holds(f, {"x": "0110" * 2})
        assert not engine.holds(f, {"x": "011"})

    def test_state_safety_undecidable(self):
        with pytest.raises(UndecidableError):
            decide_state_safety(eq(Var("x"), Var("x")), Database(BINARY, {}))


class TestPcp:
    SOLVABLE = PcpInstance(((("1"), ("111")), (("10111"), ("10")), (("10"), ("0"))))
    # The classic instance: solution 2 1 1 3 (1-based) -> [1, 0, 0, 2].
    UNSOLVABLE = PcpInstance((("0", "1"), ("1", "0")))
    TRIVIAL = PcpInstance((("01", "01"),))

    def test_solver_finds_classic_solution(self):
        solution = solve_pcp(self.SOLVABLE, max_length=20)
        assert solution is not None
        top = "".join(self.SOLVABLE.pairs[i][0] for i in solution)
        bottom = "".join(self.SOLVABLE.pairs[i][1] for i in solution)
        assert top == bottom

    def test_solver_unsolvable(self):
        assert solve_pcp(self.UNSOLVABLE, max_length=10) is None

    def test_encode_and_validate(self):
        solution = solve_pcp(self.TRIVIAL)
        assert solution == [0]
        witness = encode_solution(self.TRIVIAL, solution)
        assert witness == "$01%01$"
        assert is_witness(self.TRIVIAL, witness)

    def test_formula_accepts_genuine_witness(self):
        solution = solve_pcp(self.SOLVABLE, max_length=20)
        witness = encode_solution(self.SOLVABLE, solution)
        assert is_witness(self.SOLVABLE, witness)
        engine = BoundedConcatEngine(PCP_ALPHABET, mode="factors")
        assert engine.holds(witness_formula(self.SOLVABLE), {"x": witness})

    def test_formula_rejects_corruptions(self):
        solution = solve_pcp(self.SOLVABLE, max_length=20)
        witness = encode_solution(self.SOLVABLE, solution)
        engine = BoundedConcatEngine(PCP_ALPHABET, mode="factors")
        formula = witness_formula(self.SOLVABLE)
        corruptions = [
            witness[:-1],  # drop final marker
            witness[1:],  # drop leading marker
            witness.replace("%", "$", 1),
            witness[: len(witness) // 2] + witness[len(witness) // 2 + 1:],
            "$1%11$",  # wrong first block (not a pair)
            "$$",
            "",
        ]
        for bad in corruptions:
            assert not is_witness(self.SOLVABLE, bad), bad
            assert not engine.holds(formula, {"x": bad}), bad

    def test_formula_agrees_with_direct_check_on_small_strings(self):
        engine = BoundedConcatEngine(PCP_ALPHABET, mode="factors")
        formula = witness_formula(self.TRIVIAL)
        candidates = [
            "$01%01$",
            "$01%01$01%01$",  # not a valid continuation (0101 != 01+01? it is!)
            "$01%0$",
            "$01%01",
            "$0%1$",
            "$01%01$$",
        ]
        for x in candidates:
            assert engine.holds(formula, {"x": x}) == is_witness(self.TRIVIAL, x), x

    def test_garbage_middle_blocks_rejected(self):
        # The well-formedness clause must kill vacuous-adjacency cheats.
        inst = PcpInstance((("ab", "a"), ("c", "bc")))
        engine = BoundedConcatEngine(Alphabet("abc$%"), mode="factors")
        formula = witness_formula(inst)
        cheat = "$ab%a$$z%z$".replace("z", "c")
        assert not is_witness(inst, cheat)
        assert not engine.holds(formula, {"x": cheat})

    def test_safety_reduction_shape(self):
        psi = safety_reduction(self.TRIVIAL)
        assert psi.free_variables() == {"y"}
        # Solvable instance: exists x: witness(x) is true, so psi(y) holds
        # of every y -- infinite output (unsafe). We verify the existential
        # by supplying the witness through the engine.
        engine = BoundedConcatEngine(PCP_ALPHABET, mode="length", bound=0)
        # With bound 0 the blind search cannot find the witness: the
        # undecidability is real; the BFS solver is the semi-decision.
        solution = solve_pcp(self.TRIVIAL)
        assert solution is not None


class TestTuring:
    def test_parity_machine_runs(self):
        tm = parity_machine()
        assert tm.accepts("0110")
        assert tm.accepts("")
        assert not tm.accepts("01")
        assert not tm.accepts("1")

    def test_history_encoding(self):
        tm = parity_machine()
        history = tm.run("11")
        assert history is not None
        encoded = encode_history(history)
        assert encoded.startswith("$e11$")
        assert "A" in encoded

    def test_formula_accepts_genuine_history(self):
        tm = parity_machine()
        alphabet = Alphabet("01BeoA$")
        for tape in ["", "0", "11", "0110"]:
            history = tm.run(tape)
            assert history is not None
            encoded = encode_history(history)
            assert accepts_via_formula(tm, tape, encoded, alphabet), tape

    def test_formula_rejects_bad_histories(self):
        tm = parity_machine()
        alphabet = Alphabet("01BeoA$")
        history = tm.run("11")
        encoded = encode_history(history)
        bad_cases = [
            encoded.replace("$e11$", "$e10$", 1),  # wrong start
            encoded[:-1],  # truncated
            encoded.replace("A", "o"),  # never accepts
            "$e11$A$",  # skips steps illegally (e11 -> A is no step)
        ]
        for bad in bad_cases:
            assert not accepts_via_formula(tm, "11", bad, alphabet), bad

    def test_rejecting_input_has_no_accepting_history(self):
        tm = parity_machine()
        assert tm.run("1") is None

    def test_left_move_machine(self):
        # A machine that writes then walks left and accepts: exercises the
        # left-move encodings.
        tm = TuringMachine(
            states=("s", "t", "A"),
            tape_symbols=("0", "1", "B"),
            start="s",
            accept="A",
            blank="B",
            transitions={
                ("s", "0"): ("t", "1", "R"),
                ("t", "0"): ("t", "0", "L"),
                ("t", "1"): ("A", "1", "L"),
                ("t", "B"): ("A", "B", "L"),
            },
        )
        history = tm.run("00")
        assert history is not None
        alphabet = Alphabet("01BstA$")
        assert accepts_via_formula(tm, "00", encode_history(history), alphabet)
