"""Tests for the EF-game solver and the paper's game arguments.

Includes the Proposition 6 demonstration: finite approximations of the
paper's two databases (all strings of length <= K, vs. a lasso-shaped
family) are indistinguishable in few rounds although one is "complete"
and the other is not — the mechanism behind "finiteness is not definable
in RC(S)".
"""

import pytest

from repro.games import (
    FiniteStructure,
    distinguishing_rank,
    duplicator_wins,
    string_structure,
)
from repro.strings import BINARY, prefix_closure


class TestGameBasics:
    def test_identical_structures_duplicator_wins(self):
        a = FiniteStructure.build([1, 2, 3], {"R": {(1,), (2,)}})
        assert duplicator_wins(a, a, 3)

    def test_different_sizes_distinguished(self):
        # Linear orders of length 2 vs 3 are distinguishable (rank <= 3).
        def order(n):
            return FiniteStructure.build(
                range(n), {"lt": {(i, j) for i in range(n) for j in range(n) if i < j}}
            )

        assert duplicator_wins(order(2), order(3), 1)
        rank = distinguishing_rank(order(2), order(3), 4)
        assert rank is not None and rank <= 3

    def test_unary_counting(self):
        # |R| = 1 vs |R| = 2: distinguishable with 2 moves, not 1.
        a = FiniteStructure.build(["a", "b"], {"R": {("a",)}})
        b = FiniteStructure.build(["a", "b", "c"], {"R": {("a",), ("b",)}})
        assert duplicator_wins(a, b, 1)
        assert not duplicator_wins(a, b, 2)

    def test_rank_none_when_equivalent(self):
        a = FiniteStructure.build([0, 1], {"R": set()})
        b = FiniteStructure.build([2, 3], {"R": set()})
        assert distinguishing_rank(a, b, 3) is None

    def test_partial_isomorphism_relations_respected(self):
        a = FiniteStructure.build([0, 1], {"E": {(0, 1)}})
        b = FiniteStructure.build([0, 1], {"E": set()})
        assert not duplicator_wins(a, b, 2)


class TestStringStructures:
    def test_string_structure_relations(self):
        s = string_structure(["", "0", "01"], "01", db=["01"])
        assert ("0", "01") in s.relation("prefix")
        assert ("0", "01") in s.relation("ext1")
        assert ("", "01") not in s.relation("ext1")
        assert ("01",) in s.relation("U")
        assert ("01",) in s.relation("last_1")

    def test_isomorphic_string_sets(self):
        # {0, 00} and {1, 11} are isomorphic over prefix/ext1 alone but
        # differ on last-symbol predicates.
        a = string_structure(prefix_closure(["00"]), "01", db=["00"])
        b = string_structure(prefix_closure(["11"]), "01", db=["11"])
        rank = distinguishing_rank(a, b, 2)
        assert rank is not None  # last_0 vs last_1 distinguishes quickly


class TestProposition6Mechanism:
    """Finite approximations of the Prop 6 pair, shaped as in the paper.

    The proof compares ``D1 = Sigma^{<=K}`` against ``D2 = {(0^m 1^m)^j w
    : |w| <= K + 2m}`` (infinite; here truncated at ``j <= J``).  Both
    databases are prefix-predecessor-closed, every unary type of one is
    realized in the other, and the duplicator survives the 1-round game.

    Distinguishing them with 2 rounds *is* possible at these sizes — the
    spoiler exposes a depth difference with a "distance >= 2 extension"
    move — and killing that attack requires growing ``K`` with the round
    count (adequate approximations scale exponentially in ``k``, which is
    exactly why no *fixed* RC(S) sentence can define finiteness: the full
    proof chooses K, m after seeing k).  The second test certifies the
    scaling direction by measuring the distinguishing rank.
    """

    @staticmethod
    def _paper_pair(K: int, m: int, J: int):
        period = "0" * m + "1" * m
        d1 = [s for s in BINARY.strings_up_to(K + 2 * m)]
        d2 = sorted(
            {
                (period * j) + w
                for j in range(J + 1)
                for w in BINARY.strings_up_to(K + 2 * m)
            }
        )
        a = string_structure(prefix_closure(d1), "01", db=d1)
        b = string_structure(prefix_closure(d2), "01", db=d2)
        return a, b

    def test_one_round_indistinguishable(self):
        a, b = self._paper_pair(1, 1, 1)
        assert duplicator_wins(a, b, 1)
        a2, b2 = self._paper_pair(2, 1, 2)
        assert duplicator_wins(a2, b2, 1)

    def test_finiteness_gap_is_semantic_not_atomic(self):
        a, b = self._paper_pair(1, 1, 1)
        assert duplicator_wins(a, b, 1)
        # These (deliberately undersized) approximations fall at rank 2:
        # the spoiler plays a U-element with a distance->=2 U-extension
        # that the small complete database cannot mirror. Prop 6's proof
        # escapes by growing K with the round count.
        rank = distinguishing_rank(a, b, 2)
        assert rank == 2
