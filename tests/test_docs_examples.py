"""Keep the documentation executable.

Every fenced ``python -m repro ...`` command in ``docs/*.md`` (and the
README) is run as a subprocess against the tiny fixture database the docs
reference as ``db.json``; a docs edit that breaks a command fails CI.
``make docs-check`` runs just this module.
"""

import json
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

FIXTURE_DB = {
    "alphabet": "01",
    "relations": {"R": [["0110"], ["001"], ["11"]], "S": [["0"], ["01"]]},
}


def _doc_commands():
    """Yield (doc name, command) for every fenced `python -m repro` line."""
    for doc in sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]:
        fenced = False
        for line in doc.read_text().splitlines():
            if line.strip().startswith("```"):
                fenced = not fenced
                continue
            stripped = line.strip()
            if fenced and stripped.startswith("python -m repro"):
                yield pytest.param(doc.name, stripped, id=f"{doc.name}:{stripped[:60]}")


COMMANDS = list(_doc_commands())


def _run(command, cwd):
    argv = shlex.split(command)
    argv[0] = sys.executable  # "python" -> this interpreter
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        argv, cwd=cwd, env=env, capture_output=True, text=True, timeout=120
    )


def test_docs_reference_repro_commands():
    """The docs actually contain runnable commands (extraction sanity)."""
    assert len(COMMANDS) >= 5


@pytest.mark.parametrize("doc,command", COMMANDS)
def test_doc_command_runs(doc, command, tmp_path):
    (tmp_path / "db.json").write_text(json.dumps(FIXTURE_DB))
    proc = _run(command, cwd=tmp_path)
    assert proc.returncode == 0, (
        f"{doc}: `{command}` exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )


@pytest.mark.parametrize(
    "script", ["bench_abl_engines.py", "bench_sql_patterns.py"]
)
def test_benchmark_smoke_emits_parseable_metrics(script, tmp_path):
    """`--smoke --explain-json` (the `make bench-smoke` path) produces JSON."""
    out = tmp_path / "metrics.json"
    proc = _run(
        f"python {REPO / 'benchmarks' / script} --smoke --explain-json {out}",
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert payload["metrics"], f"{script}: empty metrics snapshot"
    assert payload["benchmark"] == script.removesuffix(".py")
