"""Tests for the SQL front end: LIKE, SIMILAR TO, SELECT translation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import is_star_free
from repro.database import Database
from repro.errors import ParseError, SignatureError
from repro.eval import AutomataEngine
from repro.sql import (
    compile_like,
    compile_similar,
    like_atom,
    like_matches,
    like_to_regex_text,
    similar_atom,
    similar_matches,
    translate_select,
)
from repro.strings import ABC, Alphabet, BINARY
from repro.structures import S, S_len, S_reg, by_name


class TestLike:
    @pytest.mark.parametrize(
        "pattern,matching,failing",
        [
            ("0%", ["0", "01", "0110"], ["", "10"]),
            ("%0", ["0", "10", "110"], ["", "01"]),
            ("%01%", ["01", "001", "0101"], ["0", "10"]),
            ("_1", ["01", "11"], ["1", "011"]),
            ("", [""], ["0"]),
            ("%", ["", "0", "0101"], []),
            ("0_1", ["001", "011"], ["01", "0011"]),
        ],
    )
    def test_like_matching(self, pattern, matching, failing):
        for s in matching:
            assert like_matches(s, pattern, BINARY), (pattern, s)
        for s in failing:
            assert not like_matches(s, pattern, BINARY), (pattern, s)

    def test_escape(self):
        sigma = Alphabet(["a", "%"])
        assert like_matches("a%", "a\\%", sigma, escape="\\")
        assert not like_matches("aa", "a\\%", sigma, escape="\\")
        # Unescaped % is still a wildcard.
        assert like_matches("aa", "a%", sigma)

    def test_dangling_escape(self):
        with pytest.raises(ParseError):
            like_to_regex_text("a\\", escape="\\")

    @given(st.text(alphabet="01_%", max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_every_like_language_is_star_free(self, pattern):
        """The Section 4 claim behind LIKE in RC(S)."""
        dfa = compile_like(pattern, BINARY)
        assert is_star_free(dfa)

    def test_like_atom_accepted_by_s(self):
        atom = like_atom("x", "0%1")
        S(BINARY).check_formula(atom)  # no SignatureError

    def test_like_semantics_via_engine(self):
        db = Database(BINARY, {"R": {"0", "01", "10", "011"}})
        atom = like_atom("x", "0%")
        from repro.logic.dsl import rel

        result = AutomataEngine(S(BINARY), db).run(rel("R", "x") & atom)
        assert result.as_set() == {("0",), ("01",), ("011",)}


class TestSimilar:
    def test_similar_regular_power(self):
        # (00)* is expressible with SIMILAR but not LIKE.
        assert similar_matches("0000", "(00)*", BINARY)
        assert not similar_matches("000", "(00)*", BINARY)

    def test_percent_and_underscore(self):
        assert similar_matches("abc", "a%", ABC)
        assert similar_matches("ab", "a_", ABC)
        assert not similar_matches("a", "a_", ABC)

    def test_class_keeps_wildcards_literalish(self):
        # Inside [...] the SQL wildcards are not wildcards.
        sigma = Alphabet(["a", "%"])
        assert similar_matches("%", "[%]", sigma)
        assert not similar_matches("a", "[%]", sigma)

    def test_similar_atom_needs_s_reg(self):
        atom = similar_atom("x", "(00)*")
        with pytest.raises(SignatureError):
            S(BINARY).check_formula(atom)
        S_reg(BINARY).check_formula(atom)
        S_len(BINARY).check_formula(atom)

    def test_unterminated_class(self):
        with pytest.raises(ParseError):
            similar_matches("a", "[ab", ABC)

    def test_compile_similar_agrees_with_matching(self):
        dfa = compile_similar("0+1?", BINARY)
        for s in BINARY.strings_up_to(4):
            expected = similar_matches(s, "0+1?", BINARY)
            assert dfa.accepts(s) == expected


FACULTY_DB = Database(
    BINARY,
    {
        "FACULTY": {("0110", "0"), ("0111", "1"), ("1010", "0")},
        "DEPT": {("0", "00"), ("1", "01")},
    },
)


class TestSelect:
    def test_simple_like(self):
        q = translate_select(
            "SELECT f.1 FROM FACULTY f WHERE f.1 LIKE '01%'", FACULTY_DB.schema
        )
        assert q.structure_name == "S"
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, FACULTY_DB).run(q.formula)
        assert result.as_set() == {("0110",), ("0111",)}

    def test_join(self):
        q = translate_select(
            "SELECT f.1, d.2 FROM FACULTY f, DEPT d WHERE f.2 = d.1",
            FACULTY_DB.schema,
        )
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, FACULTY_DB).run(q.formula)
        expected = {("0110", "00"), ("1010", "00"), ("0111", "01")}
        # Engine returns sorted-variable order; map to requested output.
        mapping = dict(zip(result.variables, range(len(result.variables))))
        got = {
            tuple(row[mapping[v]] for v in q.output_variables)
            for row in result.as_set()
        }
        assert got == expected

    def test_similar_upgrades_structure(self):
        q = translate_select(
            "SELECT f.1 FROM FACULTY f WHERE f.1 SIMILAR TO '(01)*10'",
            FACULTY_DB.schema,
        )
        assert q.structure_name == "S_reg"

    def test_length_upgrades_structure(self):
        q = translate_select(
            "SELECT f.1 FROM FACULTY f, DEPT d "
            "WHERE LENGTH(f.1) = LENGTH(d.2) AND f.2 = d.1",
            FACULTY_DB.schema,
        )
        assert q.structure_name == "S_len"

    def test_lex_comparison(self):
        q = translate_select(
            "SELECT f.1 FROM FACULTY f WHERE f.1 < '0111'", FACULTY_DB.schema
        )
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, FACULTY_DB).run(q.formula)
        assert result.as_set() == {("0110",)}

    def test_not_like(self):
        q = translate_select(
            "SELECT f.1 FROM FACULTY f WHERE f.1 NOT LIKE '01%'", FACULTY_DB.schema
        )
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, FACULTY_DB).run(q.formula)
        assert result.as_set() == {("1010",)}

    def test_prefix_predicate(self):
        q = translate_select(
            "SELECT d.1 FROM DEPT d WHERE PREFIX(d.1, d.2)", FACULTY_DB.schema
        )
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, FACULTY_DB).run(q.formula)
        assert result.as_set() == {("0",)}

    def test_or_and_parens(self):
        q = translate_select(
            "SELECT f.1 FROM FACULTY f WHERE (f.1 LIKE '0%' AND f.2 = '0') "
            "OR f.1 LIKE '1%'",
            FACULTY_DB.schema,
        )
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, FACULTY_DB).run(q.formula)
        assert result.as_set() == {("0110",), ("1010",)}

    def test_errors(self):
        for bad in [
            "SELECT FROM FACULTY f",
            "SELECT f.1 FROM NOSUCH f",
            "SELECT f.1 FROM FACULTY f WHERE f.9 = '0'",
            "SELECT f.1 FROM FACULTY f WHERE",
            "SELECT f.1 FROM FACULTY f, FACULTY f",
            "SELECT x.1 FROM FACULTY f",
        ]:
            with pytest.raises(ParseError):
                translate_select(bad, FACULTY_DB.schema)

    def test_quoted_literal_with_apostrophe(self):
        db = Database(BINARY, {"R": {"0"}})
        q = translate_select("SELECT r.1 FROM R r WHERE r.1 = '0'", db.schema)
        structure = by_name(q.structure_name, BINARY)
        result = AutomataEngine(structure, db).run(q.formula)
        assert result.as_set() == {("0",)}
