"""Unit and property tests for the string kernel (paper Section 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlphabetError
from repro.strings import (
    ABC,
    Alphabet,
    BINARY,
    add_first,
    add_last,
    d_distance,
    down_closure,
    equal_length,
    extends_by_one,
    is_prefix,
    is_strict_prefix,
    last_symbol_is,
    lcp,
    lcp_with_set,
    lex_le,
    lex_lt,
    prefix_closure,
    prefixes,
    subtract,
    trim_first,
    trim_trailing,
)

binary_strings = st.text(alphabet="01", max_size=8)


class TestAlphabet:
    def test_symbols_in_order(self):
        assert BINARY.symbols == ("0", "1")
        assert ABC.symbols == ("a", "b", "c")

    def test_index(self):
        assert BINARY.index("0") == 0
        assert BINARY.index("1") == 1

    def test_index_missing_raises(self):
        with pytest.raises(AlphabetError):
            BINARY.index("x")

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("aa")

    def test_multichar_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["ab"])

    def test_contains(self):
        assert "0" in BINARY
        assert "x" not in BINARY

    def test_contains_string(self):
        assert BINARY.contains_string("0101")
        assert BINARY.contains_string("")
        assert not BINARY.contains_string("012")

    def test_check_string_raises(self):
        with pytest.raises(AlphabetError):
            BINARY.check_string("abc")
        with pytest.raises(AlphabetError):
            BINARY.check_string(42)  # type: ignore[arg-type]

    def test_strings_of_length(self):
        assert list(BINARY.strings_of_length(0)) == [""]
        assert list(BINARY.strings_of_length(2)) == ["00", "01", "10", "11"]
        assert list(BINARY.strings_of_length(-1)) == []

    def test_strings_up_to(self):
        got = list(BINARY.strings_up_to(2))
        assert got == ["", "0", "1", "00", "01", "10", "11"]

    def test_count_up_to_matches_enumeration(self):
        for n in range(5):
            assert BINARY.count_up_to(n) == len(list(BINARY.strings_up_to(n)))
            assert ABC.count_up_to(n) == len(list(ABC.strings_up_to(n)))

    def test_count_up_to_unary(self):
        unary = Alphabet("a")
        assert unary.count_up_to(4) == 5

    def test_equality_and_hash(self):
        assert Alphabet("01") == BINARY
        assert hash(Alphabet("01")) == hash(BINARY)
        assert Alphabet("10") != BINARY


class TestPrefixOrder:
    def test_is_prefix(self):
        assert is_prefix("", "01")
        assert is_prefix("01", "01")
        assert is_prefix("0", "01")
        assert not is_prefix("1", "01")

    def test_strict_prefix(self):
        assert is_strict_prefix("0", "01")
        assert not is_strict_prefix("01", "01")

    def test_extends_by_one(self):
        assert extends_by_one("0", "01")
        assert not extends_by_one("0", "011")
        assert not extends_by_one("1", "01")
        assert extends_by_one("", "0")

    @given(binary_strings, binary_strings)
    def test_prefix_antisymmetry(self, x, y):
        if is_prefix(x, y) and is_prefix(y, x):
            assert x == y

    @given(binary_strings, binary_strings, binary_strings)
    def test_prefix_transitivity(self, x, y, z):
        if is_prefix(x, y) and is_prefix(y, z):
            assert is_prefix(x, z)


class TestFunctions:
    def test_add_last_add_first(self):
        assert add_last("01", "1") == "011"
        assert add_first("01", "1") == "101"
        assert add_last("", "0") == "0"
        assert add_first("", "0") == "0"

    def test_last_symbol(self):
        assert last_symbol_is("10", "0")
        assert not last_symbol_is("10", "1")
        assert not last_symbol_is("", "0")

    def test_subtract_paper_semantics(self):
        # x - y = z when x = y.z, else epsilon.
        assert subtract("0110", "01") == "10"
        assert subtract("0110", "10") == ""
        assert subtract("0110", "") == "0110"
        assert subtract("", "0") == ""

    def test_trim_first(self):
        assert trim_first("011", "0") == "11"
        assert trim_first("011", "1") == ""
        assert trim_first("", "0") == ""

    def test_trim_trailing(self):
        assert trim_trailing("0110", "0") == "011"
        assert trim_trailing("0100", "0") == "01"
        assert trim_trailing("111", "1") == ""

    @given(binary_strings, st.sampled_from("01"))
    def test_trim_first_inverts_add_first(self, x, a):
        assert trim_first(add_first(x, a), a) == x

    @given(binary_strings, binary_strings)
    def test_subtract_inverts_concat(self, y, z):
        assert subtract(y + z, y) == z


class TestLcp:
    def test_lcp_basic(self):
        assert lcp("0110", "010") == "01"
        assert lcp("", "010") == ""
        assert lcp("11", "00") == ""
        assert lcp("01", "01") == "01"

    @given(binary_strings, binary_strings)
    def test_lcp_commutes(self, x, y):
        assert lcp(x, y) == lcp(y, x)

    @given(binary_strings, binary_strings)
    def test_lcp_is_common_prefix(self, x, y):
        p = lcp(x, y)
        assert is_prefix(p, x) and is_prefix(p, y)

    def test_lcp_with_set(self):
        assert lcp_with_set("0110", ["00", "0111", "1"]) == "011"
        assert lcp_with_set("0110", []) == ""

    @given(binary_strings, st.lists(binary_strings, max_size=5))
    def test_lcp_with_set_is_prefix_of_x(self, x, c):
        assert is_prefix(lcp_with_set(x, c), x)


class TestOrderingsAndClosures:
    def test_equal_length(self):
        assert equal_length("01", "10")
        assert not equal_length("0", "10")

    def test_lex_order_binary(self):
        assert lex_lt("", "0", BINARY)
        assert lex_lt("0", "00", BINARY)
        assert lex_lt("01", "1", BINARY)
        assert lex_le("01", "01", BINARY)
        assert not lex_le("1", "01", BINARY)

    @given(st.lists(binary_strings, min_size=1, max_size=8))
    def test_lex_total_order(self, strings):
        ordered = sorted(strings, key=lambda s: tuple(BINARY.index(c) for c in s))
        for a, b in zip(ordered, ordered[1:]):
            assert lex_le(a, b, BINARY)

    def test_prefixes(self):
        assert list(prefixes("011")) == ["", "0", "01", "011"]

    def test_prefix_closure(self):
        assert prefix_closure(["01"]) == {"", "0", "01"}
        assert prefix_closure([]) == frozenset()

    @given(st.lists(binary_strings, max_size=5))
    def test_prefix_closure_is_closed(self, strings):
        closed = prefix_closure(strings)
        for s in closed:
            for p in prefixes(s):
                assert p in closed

    def test_down_closure(self):
        assert down_closure(["01"], BINARY) == {"", "0", "1", "00", "01", "10", "11"}
        assert down_closure([], BINARY) == frozenset()

    def test_down_closure_size(self):
        assert len(down_closure(["0000"], BINARY)) == BINARY.count_up_to(4)

    def test_d_distance(self):
        # d(s, C) = |s| - |s ^ C|
        assert d_distance("0110", ["01"]) == 2
        assert d_distance("0110", ["0110"]) == 0
        assert d_distance("0110", []) == 4
