"""Unit-suite guards for the headline figures (compact bench mirrors).

The full reconstructions live in ``benchmarks/bench_fig1_inclusions.py``
and ``benchmarks/bench_fig2_summary.py``; these tests pin the same facts
inside the plain test suite so `pytest tests/` alone certifies the
reproduction's headlines.
"""

import pytest

from repro import Query, SignatureError, StringDatabase, UndecidableError
from repro.concat import decide_state_safety
from repro.database import Database
from repro.logic import parse_formula
from repro.logic.dsl import prefix, rel
from repro.logic.terms import Var
from repro.safety import ConjunctiveQuery, cq_is_safe, is_safe_on
from repro.strings import BINARY
from repro.structures import FACTORIES, by_name


class TestFigure1:
    """The expressiveness diagram's edges and separations."""

    SEPARATORS = {
        # witness -> {calculus: expressible?}
        "matches(x, '(00)*')": {"S": False, "S_left": False, "S_reg": True, "S_len": True},
        "eq(add_first(x, '1'), y)": {"S": False, "S_left": True, "S_reg": False, "S_len": True},
        "el(x, y)": {"S": False, "S_left": False, "S_reg": False, "S_len": True},
        "matches(x, '0(0|1)*')": {"S": True, "S_left": True, "S_reg": True, "S_len": True},
    }

    @pytest.mark.parametrize("witness", sorted(SEPARATORS))
    def test_separator(self, witness):
        for calculus, expected in self.SEPARATORS[witness].items():
            try:
                Query(witness, structure=calculus)
                got = True
            except SignatureError:
                got = False
            assert got == expected, (witness, calculus)

    def test_incomparability_of_intermediates(self):
        # S_left has f_a but not (00)*; S_reg the reverse.
        Query("eq(add_first(x, '1'), y)", structure="S_left")
        with pytest.raises(SignatureError):
            Query("matches(x, '(00)*')", structure="S_left")
        Query("matches(x, '(00)*')", structure="S_reg")
        with pytest.raises(SignatureError):
            Query("eq(add_first(x, '1'), y)", structure="S_reg")


class TestFigure2:
    """One spot-check per column of the summary table, per calculus."""

    DB = StringDatabase("01", {"R": {"01", "110"}})

    @pytest.mark.parametrize("name", ["S", "S_left", "S_reg", "S_len"])
    def test_state_safety_column(self, name):
        structure = by_name(name, BINARY)
        assert is_safe_on(parse_formula("R(x)"), structure, self.DB.db)
        assert not is_safe_on(parse_formula("!R(x)"), structure, self.DB.db)

    @pytest.mark.parametrize("name", ["S", "S_left", "S_reg", "S_len"])
    def test_cq_safety_column(self, name):
        structure = by_name(name, BINARY)
        safe = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), prefix(Var("x"), Var("y")), ("y",)
        )
        unsafe = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), prefix(Var("y"), Var("x")), ("y",)
        )
        assert cq_is_safe(safe, structure)
        assert not cq_is_safe(unsafe, structure)

    @pytest.mark.parametrize("name", ["S", "S_left", "S_reg", "S_len"])
    def test_algebra_column(self, name):
        structure = by_name(name, BINARY)
        q = Query("R(x) & last(x, '0')", structure=structure)
        compiled = q.to_algebra(self.DB.schema, slack=1)
        assert compiled.evaluate(self.DB.db) == {("110",)}

    def test_rc_concat_column(self):
        with pytest.raises(UndecidableError):
            decide_state_safety(parse_formula("x = x"), Database(BINARY, {}))

    def test_all_four_structures_present(self):
        assert set(FACTORIES) >= {"S", "S_left", "S_reg", "S_len"}
