"""The FO[<] fragment of MSO: compiled sentences are star-free.

McNaughton-Papert: a language is FO[<]-definable iff star-free.  Our MSO
compiler restricted to position quantifiers therefore must always produce
aperiodic DFAs — a strong differential check of both the compiler and the
Schuetzenberger test, and the logic-side twin of the paper's Section 4
claim that S-definable languages are exactly the star-free ones.
"""

from hypothesis import given, settings, strategies as st

from repro.automata import is_star_free
from repro.mso import (
    ExistsPos,
    ExistsSet,
    InSet,
    Label,
    Less,
    MsoAnd,
    MsoFormula,
    MsoNot,
    MsoOr,
    Succ,
    forall_pos,
    mso_to_dfa,
)
from repro.strings import BINARY

POS_VARS = ["x", "y"]


def fo_atoms() -> st.SearchStrategy[MsoFormula]:
    var = st.sampled_from(POS_VARS)
    return (
        st.builds(Label, var, st.sampled_from("01"))
        | st.builds(Less, var, var)
        | st.builds(Succ, var, var)
    )


def fo_formulas(depth: int) -> st.SearchStrategy[MsoFormula]:
    base = fo_atoms()
    if depth == 0:
        return base
    sub = fo_formulas(depth - 1)
    return (
        base
        | st.builds(lambda a, b: MsoAnd((a, b)), sub, sub)
        | st.builds(lambda a, b: MsoOr((a, b)), sub, sub)
        | st.builds(MsoNot, sub)
        | st.builds(ExistsPos, st.sampled_from(POS_VARS), sub)
    )


def close_positions(f: MsoFormula) -> MsoFormula:
    for v in sorted(f.free_position_vars(), reverse=True):
        f = ExistsPos(v, f)
    return f


class TestFoFragment:
    @settings(max_examples=40, deadline=None)
    @given(formula=fo_formulas(2).map(close_positions))
    def test_fo_sentences_compile_to_star_free(self, formula):
        dfa = mso_to_dfa(formula, BINARY)
        assert is_star_free(dfa), str(formula)

    def test_mso_proper_reaches_beyond_fo(self):
        # With set quantification we leave the star-free world: the
        # odd-length language from the main MSO tests is not aperiodic.
        x, y, z = "x", "y", "z"
        from repro.mso import implies

        first_in = ExistsPos(x, InSet(x, "X") & MsoNot(ExistsPos(y, Less(y, x))))
        closed = forall_pos(
            x,
            forall_pos(
                y,
                forall_pos(
                    z,
                    implies(InSet(x, "X") & Succ(x, y) & Succ(y, z), InSet(z, "X")),
                ),
            ),
        )
        only = forall_pos(
            x,
            implies(
                InSet(x, "X"),
                MsoNot(ExistsPos(y, Less(y, x)))
                | ExistsPos(y, ExistsPos(z, InSet(y, "X") & Succ(y, z) & Succ(z, x))),
            ),
        )
        last_in = ExistsPos(x, InSet(x, "X") & MsoNot(ExistsPos(y, Less(x, y))))
        sentence = ExistsSet("X", first_in & closed & only & last_in)
        dfa = mso_to_dfa(sentence, BINARY)
        assert not is_star_free(dfa)

    def test_specific_fo_sentences(self):
        # "the word contains 01 as a factor"
        contains_01 = close_positions(
            ExistsPos(
                "x",
                ExistsPos("y", Label("x", "0") & Label("y", "1") & Succ("x", "y")),
            )
        )
        dfa = mso_to_dfa(contains_01, BINARY)
        assert is_star_free(dfa)
        for s in BINARY.strings_up_to(5):
            assert dfa.accepts(s) == ("01" in s)
