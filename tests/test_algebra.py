"""Tests for the relational algebras and the calculus<->algebra bridges.

The round-trip tests are the operational reproduction of Theorems 4 and 8
(safe RC(M) = RA(M)): compiled plans agree with the automata engine's
natural semantics, and hand-built plans agree with their calculus
translations.
"""

import pytest

from repro.algebra import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    CompileError,
    Difference,
    DownOp,
    EpsilonRel,
    PrefixOp,
    Product,
    Project,
    RA_S,
    RA_S_left,
    RA_S_len,
    RA_S_reg,
    Select,
    TrimFirstOp,
    Union,
    col,
    compile_query,
    is_collapsed_form,
    to_calculus,
)
from repro.database import Database, random_database
from repro.errors import ArityError, EvaluationError, SignatureError
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.dsl import eq, exists, last, matches, prefix, rel
from repro.strings import BINARY
from repro.structures import S, S_left, S_len, S_reg


def db(**relations):
    return Database(BINARY, relations)


S_BIN = S(BINARY)


class TestPlanNodes:
    def test_base_and_select(self):
        plan = Select(BaseRel("R", 1), last(col(0), "0"))
        rows = plan.evaluate(db(R={"00", "01", "10"}), S_BIN)
        assert rows == {("00",), ("10",)}

    def test_epsilon_rel(self):
        assert EpsilonRel().evaluate(db(R=set()), S_BIN) == {("",)}

    def test_project_permute_duplicate(self):
        plan = Project(BaseRel("E", 2), (1, 0, 0))
        rows = plan.evaluate(db(E={("0", "1")}), S_BIN)
        assert rows == {("1", "0", "0")}

    def test_product_union_difference(self):
        r = BaseRel("R", 1)
        s = BaseRel("S", 1)
        d = db(R={"0", "1"}, S={"1", "00"})
        assert Product(r, s).evaluate(d, S_BIN) == {
            ("0", "1"), ("0", "00"), ("1", "1"), ("1", "00")
        }
        assert Union(r, s).evaluate(d, S_BIN) == {("0",), ("1",), ("00",)}
        assert Difference(r, s).evaluate(d, S_BIN) == {("0",)}

    def test_arity_mismatch_checked(self):
        with pytest.raises(ArityError):
            Union(BaseRel("R", 1), BaseRel("E", 2)).evaluate(
                db(R={"0"}, E={("0", "1")}), S_BIN
            )

    def test_prefix_op(self):
        plan = PrefixOp(BaseRel("R", 1), 0)
        rows = plan.evaluate(db(R={"01"}), S_BIN)
        assert rows == {("01", ""), ("01", "0"), ("01", "01")}

    def test_add_last_op(self):
        plan = AddLastOp(BaseRel("R", 1), 0, "1")
        assert plan.evaluate(db(R={"0"}), S_BIN) == {("0", "01")}

    def test_add_first_trim_first_ops(self):
        sl = S_left(BINARY)
        plan = AddFirstOp(BaseRel("R", 1), 0, "1")
        assert plan.evaluate(db(R={"0"}), sl) == {("0", "10")}
        plan2 = TrimFirstOp(BaseRel("R", 1), 0, "0")
        assert plan2.evaluate(db(R={"01", "11"}), sl) == {("01", "1"), ("11", "")}

    def test_down_op_exponential(self):
        slen = S_len(BINARY)
        plan = DownOp(BaseRel("R", 1), 0)
        rows = plan.evaluate(db(R={"000"}), slen)
        # 2^4 - 1 strings of length <= 3, paired with "000".
        assert len(rows) == 15

    def test_select_with_quantified_condition(self):
        # Condition: exists y: y << c0 & last(y, '1') -- pure M-formula.
        cond = exists("y", parse_formula("y << c0 & last(y, '1')"))
        plan = Select(BaseRel("R", 1), cond)
        rows = plan.evaluate(db(R={"10", "00", "011"}), S_BIN)
        assert rows == {("10",), ("011",)}

    def test_select_rejects_db_reference(self):
        plan = Select(BaseRel("R", 1), rel("S", col(0)))
        with pytest.raises(EvaluationError):
            plan.evaluate(db(R={"0"}, S={"0"}), S_BIN)

    def test_select_bad_column(self):
        plan = Select(BaseRel("R", 1), last(col(3), "0"))
        with pytest.raises(ArityError):
            plan.evaluate(db(R={"0"}), S_BIN)


class TestDialects:
    def test_ra_s_rejects_down(self):
        plan = DownOp(BaseRel("R", 1), 0)
        with pytest.raises(SignatureError):
            RA_S(BINARY).validate(plan)
        RA_S_len(BINARY).validate(plan)

    def test_ra_s_rejects_add_first(self):
        plan = AddFirstOp(BaseRel("R", 1), 0, "0")
        with pytest.raises(SignatureError):
            RA_S(BINARY).validate(plan)
        RA_S_left(BINARY).validate(plan)

    def test_ra_s_len_has_no_primitive_add_first(self):
        plan = AddFirstOp(BaseRel("R", 1), 0, "0")
        with pytest.raises(SignatureError):
            RA_S_len(BINARY).validate(plan)

    def test_condition_signature_checked(self):
        plan = Select(BaseRel("R", 1), parse_formula("el(c0, c0)"))
        with pytest.raises(SignatureError):
            RA_S(BINARY).validate(plan)
        RA_S_len(BINARY).validate(plan)

    def test_ra_s_reg_patterns(self):
        plan = Select(BaseRel("R", 1), matches(col(0), "(00)*"))
        with pytest.raises(SignatureError):
            RA_S(BINARY).validate(plan)
        RA_S_reg(BINARY).validate(plan)
        rows = RA_S_reg(BINARY).evaluate(plan, db(R={"00", "0", "0000"}))
        assert rows == {("00",), ("0000",)}


COMPILE_CORPUS = [
    (S, "R(x) & last(x, '0')"),
    (S, "exists adom y: E(x, y)"),
    (S, "exists adom y: R(y) & x <<= y"),
    (S, "R(x) & !S(x)"),
    (S, "exists adom x: R(x) & exists adom y: S(y) & x <<= y"),
    (S, "R(x) & exists y: y << x & last(y, '1')"),  # natural M-quantifier
    (S_reg, "R(x) & matches(x, '(00)*')"),
    (S_left, "exists adom x: R(x) & eq(add_first(x, '1'), y)"),
    (S_len, "R(x) & exists adom y: S(y) & el(x, y)"),
]


class TestCompiler:
    @pytest.mark.parametrize("factory,text", COMPILE_CORPUS)
    def test_compiled_matches_engine(self, factory, text):
        structure = factory(BINARY)
        formula = parse_formula(text)
        for seed in (0, 1):
            database = random_database(
                BINARY, {"R": 1, "S": 1, "E": 2}, tuples_per_relation=4, max_len=3, seed=seed
            )
            expected = AutomataEngine(structure, database).run(formula)
            assert expected.is_finite(), text
            compiled = compile_query(formula, structure, database.schema, slack=2)
            got = compiled.evaluate(database)
            assert got == expected.as_set(), (text, seed)

    def test_constants_covered_on_empty_db(self):
        formula = parse_formula("x = '01'")
        database = Database(BINARY, {"R": set()})
        compiled = compile_query(formula, S_BIN, database.schema, slack=0)
        assert compiled.evaluate(database) == {("01",)}

    def test_not_collapsed_raises(self):
        formula = parse_formula("exists x: R(x) & last(x, '0')")
        with pytest.raises(CompileError):
            compile_query(formula, S_BIN, db(R={"0"}).schema)

    def test_is_collapsed_form(self):
        assert is_collapsed_form(parse_formula("exists adom x: R(x)"))
        assert is_collapsed_form(parse_formula("R(x) & exists y: y <<= x"))
        assert not is_collapsed_form(parse_formula("exists x: R(x)"))

    def test_range_restricted_semantics_on_unsafe_query(self):
        # last(x, '0') is unsafe; the compiled plan returns its gamma-bounded
        # restriction (the paper's range-restricted semantics).
        formula = parse_formula("last(x, '0')")
        database = db(R={"01"})
        compiled = compile_query(formula, S_BIN, database.schema, slack=1)
        got = compiled.evaluate(database)
        # Everything in the bound ending with 0 -- finite, nonempty.
        assert got
        assert all(s.endswith("0") for (s,) in got)


class TestToCalculus:
    PLANS = [
        Select(BaseRel("R", 1), last(col(0), "0")),
        Project(BaseRel("E", 2), (1,)),
        Project(BaseRel("E", 2), (1, 0)),
        Union(BaseRel("R", 1), BaseRel("S", 1)),
        Difference(BaseRel("R", 1), BaseRel("S", 1)),
        Product(BaseRel("R", 1), BaseRel("S", 1)),
        PrefixOp(BaseRel("R", 1), 0),
        AddLastOp(BaseRel("R", 1), 0, "1"),
        Project(Select(Product(BaseRel("R", 1), BaseRel("S", 1)),
                       eq(col(0), col(1))), (0,)),
    ]

    @pytest.mark.parametrize("plan", PLANS, ids=[str(p) for p in PLANS])
    def test_roundtrip_plan_to_calculus(self, plan):
        database = random_database(
            BINARY, {"R": 1, "S": 1, "E": 2}, tuples_per_relation=4, max_len=3, seed=5
        )
        structure = S_BIN
        expected = plan.evaluate(database, structure)
        formula = to_calculus(plan)
        result = AutomataEngine(structure, database).run(formula)
        assert result.as_set() == expected, str(plan)

    def test_left_ops_roundtrip(self):
        database = db(R={"0", "01"})
        structure = S_left(BINARY)
        for plan in [AddFirstOp(BaseRel("R", 1), 0, "1"), TrimFirstOp(BaseRel("R", 1), 0, "0")]:
            expected = plan.evaluate(database, structure)
            formula = to_calculus(plan)
            result = AutomataEngine(structure, database).run(formula)
            assert result.as_set() == expected

    def test_down_roundtrip(self):
        database = db(R={"00"})
        structure = S_len(BINARY)
        plan = DownOp(BaseRel("R", 1), 0)
        expected = plan.evaluate(database, structure)
        result = AutomataEngine(structure, database).run(to_calculus(plan))
        assert result.as_set() == expected

    def test_duplicate_projection_roundtrip(self):
        database = db(E={("0", "0"), ("0", "1")})
        plan = Project(BaseRel("E", 2), (0, 0))
        expected = plan.evaluate(database, S_BIN)
        result = AutomataEngine(S_BIN, database).run(to_calculus(plan))
        assert result.as_set() == expected
