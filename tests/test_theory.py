"""Tests for the theory decision procedure (decidable Th(S_len) and reducts)."""

import pytest

from repro.errors import EvaluationError, SignatureError
from repro.strings import Alphabet, BINARY
from repro.theory import decide, solutions


class TestDecide:
    @pytest.mark.parametrize(
        "sentence,expected",
        [
            # Every string has a one-symbol extension.
            ("forall x: exists y: ext1(x, y)", True),
            # Epsilon is below everything.
            ("forall x: prefix(eps, x)", True),
            # There is no longest string.
            ("exists x: forall y: len_le(y, x)", False),
            # Strict prefix is irreflexive and transitive.
            ("forall x: !sprefix(x, x)", True),
            (
                "forall x: forall y: forall z: "
                "(sprefix(x, y) & sprefix(y, z)) -> sprefix(x, z)",
                True,
            ),
            # Prefix order is not total.
            ("forall x: forall y: prefix(x, y) | prefix(y, x)", False),
            # Lexicographic order IS total.
            ("forall x: forall y: lex_le(x, y) | lex_le(y, x)", True),
            # Equal length is an equivalence with finite classes witness:
            ("forall x: exists y: el(x, y) & !eq(x, y) | eq(x, eps)", True),
            # Every nonempty string has a last symbol.
            ("forall x: eq(x, eps) | last(x, '0') | last(x, '1')", True),
            # Density failure: between x and x.a there is no strict middle.
            (
                "forall x: forall y: ext1(x, y) -> "
                "!exists z: (sprefix(x, z) & sprefix(z, y))",
                True,
            ),
        ],
    )
    def test_slen_sentences(self, sentence, expected):
        assert decide(sentence, BINARY, "S_len") is expected, sentence

    def test_s_reduct(self):
        assert decide("forall x: prefix(x, x)", BINARY, "S")
        with pytest.raises(SignatureError):
            decide("forall x: el(x, x)", BINARY, "S")

    def test_rejects_free_variables(self):
        with pytest.raises(EvaluationError):
            decide("prefix(x, y)")

    def test_rejects_db_relations(self):
        with pytest.raises(EvaluationError):
            decide("forall x: R(x) -> R(x)")

    def test_other_alphabet(self):
        abc = Alphabet("abc")
        assert decide("forall x: exists y: ext1(x, y)", abc)
        # With three symbols, three one-symbol strings exist.
        assert decide(
            "exists x: exists y: exists z: ext1(eps, x) & ext1(eps, y) & "
            "ext1(eps, z) & x != y & y != z & x != z",
            abc,
        )
        assert not decide(
            "exists x: exists y: exists z: ext1(eps, x) & ext1(eps, y) & "
            "ext1(eps, z) & x != y & y != z & x != z",
            BINARY,
        )


class TestSolutions:
    def test_finite_solution_set(self):
        result = solutions("prefix(x, '011')", BINARY, "S")
        assert result.as_set() == {("",), ("0",), ("01",), ("011",)}

    def test_infinite_solution_set_is_regular(self):
        result = solutions("last(x, '1')", BINARY, "S")
        assert not result.is_finite()
        sample = set(result.tuples(limit=4))
        assert all(s.endswith("1") for (s,) in sample)

    def test_binary_relation(self):
        result = solutions("ext1(x, y)", BINARY, "S")
        assert result.contains(("0", "01"))
        assert not result.contains(("0", "011"))

    def test_rejects_db_relations(self):
        with pytest.raises(EvaluationError):
            solutions("R(x)")
