"""Tests for multi-process sharded scatter-gather execution.

The acceptance properties (ISSUE 6): the ``sharded`` backend is a
registered :class:`EngineBackend` whose merged answers equal
single-process execution on every distributable plan (empty and skewed
partitions included); non-distributing plans fall back rather than
merge wrongly; EXPLAIN shows the shard decomposition in text and JSON;
and a failed or unknown shard surfaces as a structured *retryable*
error — never as a silent partial result.
"""

import json

import pytest

from repro.core import Query, StringDatabase
from repro.database.schema import Schema
from repro.engine import global_cache
from repro.engine.backend import backend_names
from repro.engine.metrics import METRICS
from repro.engine.planner import plan_query
from repro.errors import ShardError
from repro.algebra.distribute import analyze
from repro.shard import (
    ShardCoordinator,
    partition_database,
    route_for,
    shard_database,
    shard_of_relation,
    shard_of_row,
)

GUARDED = "R(x) & forall prefix y: (!(y <<= x) | !last(y, '1'))"

DB = StringDatabase(
    "01",
    {
        "R": {"0110", "001", "11", "010", "000", "100", "0"},
        "S": {"0", "01"},
        "T": {("0", "01"), ("11", "1")},
    },
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    global_cache().reset()
    yield
    global_cache().reset()


@pytest.fixture(scope="module")
def coordinator():
    with ShardCoordinator(shards=2) as coord:
        coord.register_database("main", DB)
        yield coord


def _single(query, engine="direct"):
    return sorted(Query(query).result(DB, engine=engine).as_set())


def _sharded(query):
    return sorted(Query(query).result(DB, engine="sharded").as_set())


# -------------------------------------------------------------- partitioner


class TestPartitioner:
    def test_hash_partitions_union_back(self):
        parts = partition_database(DB.db, 3)
        for name in DB.db.relation_names:
            merged = frozenset().union(*(p.relation(name) for p in parts))
            assert merged == DB.db.relation(name)
            # Disjoint: total tuples preserved.
            assert sum(len(p.relation(name)) for p in parts) == len(
                DB.db.relation(name)
            )

    def test_partitioning_is_deterministic(self):
        a = partition_database(DB.db, 4)
        b = partition_database(DB.db, 4)
        for pa, pb in zip(a, b):
            for name in DB.db.relation_names:
                assert pa.relation(name) == pb.relation(name)
        assert all(
            shard_of_row(row, 4) == shard_of_row(tuple(row), 4)
            for row in DB.db.relation("T")
        )

    def test_every_partition_keeps_the_full_schema(self):
        parts = partition_database(DB.db, 8)  # more shards than tuples
        for part in parts:
            assert set(part.relation_names) == set(DB.db.relation_names)
            assert part.schema.arity("T") == 2  # empty on most shards

    def test_relation_scheme_keeps_relations_whole(self):
        parts = partition_database(DB.db, 3, scheme="relation")
        for name in DB.db.relation_names:
            owner = shard_of_relation(name, 3)
            for i, part in enumerate(parts):
                expected = DB.db.relation(name) if i == owner else frozenset()
                assert part.relation(name) == expected

    def test_shard_database_fingerprints(self):
        sharded = shard_database("main", DB, 2)
        assert sharded.shards == 2
        assert len(sharded.part_fingerprints) == 2
        assert sum(sharded.part_sizes()) == DB.db.size

    def test_bad_arguments_raise(self):
        with pytest.raises(ShardError):
            partition_database(DB.db, 0)
        with pytest.raises(ShardError):
            partition_database(DB.db, 2, scheme="roundrobin")
        with pytest.raises(ShardError):
            ShardCoordinator(shards=2, scheme="nope")


# ------------------------------------------------------------ distributivity


class TestDistributivityAnalysis:
    def _analyze(self, query, **kwargs):
        q = Query(query)
        return analyze(q.formula, q.structure, DB.db, slack=1, **kwargs)

    def test_guarded_selection_scatters(self):
        d = self._analyze(GUARDED)
        assert d.mode == "scatter" and d.certificate == "guarded-formula"

    def test_plain_scan_and_union_scatter(self):
        assert self._analyze("R(x)").mode == "scatter"
        d = self._analyze("R(x) | S(x)")
        assert d.mode == "scatter" and d.certificate == "plan-shape"

    def test_join_does_not_distribute(self):
        d = self._analyze("R(x) & S(x)")
        assert d.mode == "single" and not d.distributes

    def test_join_routes_when_relations_colocated(self):
        d = self._analyze("R(x) & S(x)", relation_shards={"R": 1, "S": 1})
        assert d.mode == "route" and d.shard == 1
        d = self._analyze("R(x) & S(x)", relation_shards={"R": 0, "S": 1})
        assert d.mode == "single"

    def test_adom_quantifier_does_not_scatter(self):
        # `exists adom y` ranges over the *global* active domain; a shard
        # only sees its own strings, so scattering would change answers.
        d = self._analyze("R(x) & exists adom y: (y <<= x)")
        assert d.mode == "single"

    def test_database_free_sentence_routes_to_one_worker(self):
        # No relations, no restricted quantifiers: every shard computes
        # the identical answer, so one worker suffices.
        d = self._analyze("'01' <<= '010'")
        assert d.mode == "route" and d.shard == 0

    def test_relation_free_restricted_sentence_does_not_route(self):
        # Relation-free but *not* database-free: the PREFIX domain
        # derives from adom(D), and a partition's active domain is a
        # strict subset — a lone shard could answer differently.
        d = self._analyze("exists prefix y: last(y, '1')")
        assert d.mode == "single" and not d.distributes


# --------------------------------------------------------------- end-to-end


class TestScatterGather:
    @pytest.mark.parametrize(
        "query",
        [GUARDED, "R(x)", "R(x) | S(x)", "T(x, y)", "R(x) & last(x, '0')"],
    )
    def test_sharded_equals_single_process(self, coordinator, query):
        assert _sharded(query) == _single(query)

    def test_fallback_answers_join_correctly(self, coordinator):
        # No certificate: runs on a full copy, never a wrong merge.
        assert _sharded("R(x) & S(x)") == _single("R(x) & S(x)")
        assert METRICS.snapshot().get("shard.fallbacks", 0) >= 1

    def test_empty_and_skewed_partitions(self):
        tiny = StringDatabase("01", {"R": {"0110"}})
        with ShardCoordinator(shards=3) as coord:
            coord.register_database("tiny", tiny)
            sharded = coord.get("tiny")
            assert sorted(sharded.part_sizes()).count(0) >= 2  # skew
            rows = Query("R(x)").result(tiny, engine="sharded").as_set()
            assert rows == {("0110",)}

    def test_empty_relation_keeps_arity_on_every_shard(self):
        # Binary T empty on some shards: without the register_db schema
        # field it would re-infer arity 1 and break T(x, y) there.
        db = StringDatabase(
            "01",
            {"R": {"0"}, "T": {("0", "01")}},
            schema=Schema({"R": 1, "T": 2}),
        )
        with ShardCoordinator(shards=2) as coord:
            coord.register_database("arity", db)
            rows = Query("T(x, y)").result(db, engine="sharded").as_set()
            assert rows == {("0", "01")}

    def test_planner_costs_include_sharded(self, coordinator):
        q = Query(GUARDED)
        plan = plan_query(q.formula, q.structure, DB.db)
        assert "sharded" in plan.costs
        assert plan.costs["sharded"] != float("inf")
        assert "sharded" in backend_names()

    def test_relation_free_restricted_sentence_uses_full_adom(self):
        # Place every witness string (ending in '1') on shard 1 so that
        # worker 0's partition has none: routing the sentence to a lone
        # partition would answer False where the database answers True.
        zeros = [s for s in ("0", "00", "000", "0000") if shard_of_row((s,), 2) == 0]
        ones = [s for s in ("1", "01", "11", "011") if shard_of_row((s,), 2) == 1]
        assert zeros and ones  # SHA-1 placement is deterministic
        db = StringDatabase("01", {"R": set(zeros) | set(ones)})
        query = "exists prefix y: last(y, '1')"
        with ShardCoordinator(shards=2) as coord:
            coord.register_database("witness", db)
            sharded = Query(query).result(db, engine="sharded").as_set()
        assert sharded == Query(query).result(db, engine="direct").as_set()

    def test_reregistering_a_name_withdraws_the_old_route(self):
        old = StringDatabase("01", {"R": {"0"}})
        new = StringDatabase("01", {"R": {"1"}})
        with ShardCoordinator(shards=2) as coord:
            coord.register_database("swap", old)
            assert route_for(old.db) is not None
            coord.register_database("swap", new)
            # The old content's route is gone: a Database still holding
            # it falls back to the in-process engines (correct answers)
            # instead of scattering against the replacement partitions.
            assert route_for(old.db) is None
            assert route_for(new.db) is not None
            assert Query("R(x)").result(old).as_set() == {("0",)}
            assert (
                Query("R(x)").result(new, engine="sharded").as_set()
                == {("1",)}
            )

    def test_reregistering_keeps_routes_shared_with_other_names(self):
        shared = StringDatabase("01", {"R": {"0"}})
        other = StringDatabase("01", {"R": {"1"}})
        with ShardCoordinator(shards=2) as coord:
            coord.register_database("a", shared)
            coord.register_database("b", shared)  # same content, new name
            coord.register_database("a", other)
            # "b" still serves the shared content: its route survives.
            assert route_for(shared.db) is not None

    def test_at_sign_in_database_name_is_rejected(self):
        # "@" is reserved for the coordinator's worker-side names — a
        # user database "x@full" would collide with x's fallback copy.
        with ShardCoordinator(shards=1) as coord:
            with pytest.raises(ShardError):
                coord.register_database("x@full", DB)

    def test_route_for_matches_content_not_identity(self, coordinator):
        # Routing is keyed on the database fingerprint (content), so an
        # unregistered database never routes to someone else's shards.
        assert route_for(DB.db) is not None
        other = StringDatabase("01", {"R": {"1"}})
        assert route_for(other.db) is None


class TestExplain:
    def test_text_explain_shows_decomposition(self, coordinator):
        report = Query(GUARDED).explain(DB, engine="sharded")
        text = report.render()
        assert "gather[union-dedup]" in text
        assert "mode=scatter" in text
        assert "certificate=guarded-formula" in text
        assert "shard[0]" in text and "shard[1]" in text

    def test_json_explain_shows_decomposition(self, coordinator):
        report = Query("R(x)").explain(DB, engine="sharded")
        payload = json.loads(json.dumps(report.to_dict()))
        tree = payload["tree"]
        assert tree["kind"] == "shard-gather"
        assert tree["annotations"]["mode"] == "scatter"
        kinds = {child["kind"] for child in tree["children"]}
        assert kinds == {"shard-run"}


class TestFailureHandling:
    def test_killed_worker_is_restarted_and_retried(self):
        with ShardCoordinator(shards=2) as coord:
            coord.register_database("main", DB)
            victim = coord.pool.worker(1)
            victim.process.kill()
            victim.process.wait()
            before = METRICS.snapshot().get("shard.retries", 0)
            rows = Query("R(x)").result(DB, engine="sharded").as_set()
            assert rows == DB.db.relation("R")
            assert METRICS.snapshot().get("shard.retries", 0) > before
            assert coord.pool.worker(1).alive

    def test_closed_coordinator_raises_structured_error(self):
        coord = ShardCoordinator(shards=1)
        coord.register_database("main", DB)
        sharded = coord.get("main")
        q = Query("R(x)")
        plan = plan_query(q.formula, q.structure, DB.db, force="sharded")
        coord.close()
        with pytest.raises(ShardError):
            coord.execute(sharded, plan)
        # Closing withdrew the route: the backend is unregistered again.
        assert "sharded" not in backend_names()

    def test_shard_error_classifies_with_retryable_bit(self):
        from repro.service import classify_error

        soft = classify_error(ShardError("worker died", retryable=True))
        assert (soft.code, soft.retryable) == ("shard", True)
        hard = classify_error(ShardError("bad scheme", retryable=False))
        assert (hard.code, hard.retryable) == ("shard", False)


# ------------------------------------------------------------------ service


class TestServiceIntegration:
    def test_sharded_service_answers_and_reports_stats(self):
        from repro.service import QueryService, RunRequest

        with QueryService(workers=2, shards=2) as svc:
            svc.register_database("main", DB)
            response = svc.execute(
                RunRequest(query="R(x)", database="main", engine="sharded")
            )
            assert response.ok and response.engine == "sharded"
            assert response.rows == sorted(
                list(t) for t in DB.db.relation("R")
            )
            stats = svc.stats()
            assert stats["sharding"]["shards"] == 2
            assert stats["sharding"]["alive"] == [True, True]
            assert "main" in stats["sharding"]["databases"]
        assert "sharded" not in backend_names()

    def test_protocol_register_db_schema_field(self):
        from repro.service import Dispatcher, QueryService

        with QueryService(workers=1) as svc:
            dispatcher = Dispatcher(svc)
            response, _ = dispatcher.handle({
                "op": "register_db",
                "id": 1,
                "name": "main",
                "db": {
                    "alphabet": "01",
                    "relations": {"R": [["0"]], "T": []},
                    "schema": {"R": 1, "T": 2},
                },
            })
            assert response["ok"], response
            run, _ = dispatcher.handle(
                {"op": "run", "id": 2, "query": "T(x, y)", "db": "main"}
            )
            assert run["ok"] and run["rows"] == []

    def test_protocol_rejects_bad_schema(self):
        from repro.service import Dispatcher, QueryService

        with QueryService(workers=1) as svc:
            dispatcher = Dispatcher(svc)
            response, _ = dispatcher.handle({
                "op": "register_db",
                "id": 1,
                "name": "main",
                "db": {"relations": {}, "schema": {"R": "one"}},
            })
            assert not response["ok"]
            assert response["error"]["code"] == "invalid"
