"""Property tests: sharded execution is answer-invariant.

Hypothesis generates random databases — including empty relations,
single-row databases (so most shards are empty), and skewed contents —
and asserts that scatter-gather execution over a live worker pool
returns exactly the rows of single-process execution, for every engine
that can run the query in-process (direct and automata always; algebra
on its ADOM-only shapes).

One worker pool per partitioning scheme is shared across all examples
(process spawns are the expensive part); each example registers its
database under a fresh name, so worker-side caches never leak answers
between examples.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Query, StringDatabase
from repro.database.schema import Schema
from repro.engine import global_cache
from repro.shard import ShardCoordinator

#: Queries with a distributivity certificate (scatter) plus one join
#: (falls back to a full copy) — the property must hold for both paths.
QUERIES = [
    "R(x)",
    "R(x) | S(x)",
    "R(x) & last(x, '0')",
    "R(x) & forall prefix y: (!(y <<= x) | !last(y, '1'))",
    "R(x) & S(x)",
]

#: Engines the answer is checked against.  Algebra only compiles the
#: ADOM-only shapes, so restricted-quantifier queries skip it.
ALGEBRA_OK = {"R(x)", "R(x) | S(x)", "R(x) & S(x)"}

strings = st.text(alphabet="01", min_size=0, max_size=6)
relation = st.frozensets(strings, max_size=8)

_names = itertools.count()


@pytest.fixture(scope="module", params=["hash", "relation"])
def coordinator(request):
    global_cache().reset()
    with ShardCoordinator(shards=3, scheme=request.param) as coord:
        yield coord
    global_cache().reset()


@given(r=relation, s=relation)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_sharded_equals_every_engine(coordinator, r, s):
    db = StringDatabase("01", {"R": r, "S": s}, schema=Schema({"R": 1, "S": 1}))
    coordinator.register_database(f"prop{next(_names)}", db)
    for text in QUERIES:
        query = Query(text)
        sharded = query.result(db, engine="sharded").as_set()
        engines = ["direct", "automata"]
        if text in ALGEBRA_OK:
            engines.append("algebra")
        for engine in engines:
            assert sharded == query.result(db, engine=engine).as_set(), (
                f"{text} via sharded != {engine} "
                f"(scheme={coordinator.scheme}, |R|={len(r)}, |S|={len(s)})"
            )


@given(row=strings)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_single_row_database_leaves_most_shards_empty(coordinator, row):
    """Maximal skew: every shard but one holds nothing, answers still match."""
    db = StringDatabase("01", {"R": {row}, "S": set()},
                        schema=Schema({"R": 1, "S": 1}))
    name = f"skew{next(_names)}"
    coordinator.register_database(name, db)
    if coordinator.scheme == "hash":
        assert sorted(coordinator.get(name).part_sizes()).count(0) >= 2
    for text in ("R(x)", "R(x) | S(x)", "S(x)"):
        query = Query(text)
        assert (
            query.result(db, engine="sharded").as_set()
            == query.result(db, engine="automata").as_set()
        )
