"""The paper's own example formulas, verified executably.

Section 2 and Section 4 of the paper exhibit concrete first-order
definitions (the LIKE pattern formula, the lexicographic order, the
definition of F_a over S_len, |x| < |y| over el).  These tests build each
formula verbatim and check it against the built-in semantics through the
exact engine — the strongest form of "we implemented the same structure
the paper reasons about".
"""

import pytest

from repro.database import Database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.dsl import (
    and_,
    el,
    eq,
    exists,
    forall,
    implies,
    last,
    lex_le,
    not_,
    or_,
    prefix,
    sprefix,
)
from repro.logic.terms import Var
from repro.strings import BINARY, lex_le as lex_le_concrete
from repro.structures import S, S_len

EMPTY = Database(BINARY, {})
ENGINE_S = AutomataEngine(S(BINARY), EMPTY)
ENGINE_LEN = AutomataEngine(S_len(BINARY), EMPTY)


def language_of(engine, formula, var="x", up_to=5):
    result = engine.run(formula)
    return {s for s in BINARY.strings_up_to(up_to) if result.contains((s,))}


class TestSection2Example:
    def test_ends_with_10(self):
        """The paper's first example: 'there is a string in R ending 10',
        via the largest-proper-prefix construction (no z with y < z < x)."""
        text = (
            "exists x: R(x) & last(x, '0') & "
            "exists y: y << x & last(y, '1') & !exists z: (y << z & z << x)"
        )
        q = parse_formula(text)
        yes = AutomataEngine(S(BINARY), Database(BINARY, {"R": {"0110"}}))
        no = AutomataEngine(S(BINARY), Database(BINARY, {"R": {"011", "100"}}))
        assert yes.decide(q)
        assert not no.decide(q)


class TestSection4Like:
    def test_like_pattern_via_prefix_chain(self):
        """x LIKE '0_1%' unfolded the paper's way: prefixes u < v < w
        pinned to positions with last-symbol tests."""
        # First symbol 0, third symbol 1 (positions via chained ext1).
        text = (
            "exists u: exists v: exists w: "
            "u <<= x & ext1(eps, u) & last(u, '0') & "
            "ext1(u, v) & ext1(v, w) & w <<= x & last(w, '1')"
        )
        q = parse_formula(text)
        expected = {
            s
            for s in BINARY.strings_up_to(5)
            if len(s) >= 3 and s[0] == "0" and s[2] == "1"
        }
        assert language_of(ENGINE_S, q) == expected


class TestSection4LexOrder:
    def test_paper_lex_definition_matches_builtin(self):
        """The paper's FO definition of <=_lex over <<= and l_a:

        x <=_lex y  iff  x <<= y, or there is a common prefix z with
        z.a_i <<= x and z.a_j <<= y for symbols a_i < a_j.
        """
        x, y, z = Var("x"), Var("y"), Var("z")
        text = (
            "x <<= y | exists z: (z <<= x & z <<= y & "
            "exists u: (ext1(z, u) & u <<= x & last(u, '0')) & "
            "exists v: (ext1(z, v) & v <<= y & last(v, '1')))"
        )
        paper_def = parse_formula(text)
        builtin = lex_le("x", "y")
        paper_rel = ENGINE_S.run(paper_def)
        builtin_rel = ENGINE_S.run(builtin)
        for a in BINARY.strings_up_to(3):
            for b in BINARY.strings_up_to(3):
                expected = lex_le_concrete(a, b, BINARY)
                assert builtin_rel.contains((a, b)) == expected
                assert paper_rel.contains((a, b)) == expected, (a, b)


class TestSection4FaDefinability:
    def test_f_a_defined_over_s_len(self):
        """Section 4: the graph of f_a is definable over S_len.

        y = f_1(x) iff |y| = |x| + 1, the first symbol of y is 1, and for
        every proper prefix z of x, the symbol of x at |z|+1 equals the
        symbol of y at |z|+2 (expressed with el and last over prefixes).
        """
        text = (
            # |y| = |x| + 1:
            "exists w: (w << y & el(w, x) & forall w2: (w2 << y -> len_le(w2, w))) & "
            # first symbol of y is 1:
            "exists f: (ext1(eps, f) & f <<= y & last(f, '1')) & "
            # symbols shift by one: for every prefix u of x with |u| >= 1,
            # the prefix v of y with |v| = |u| + 1 has the same last symbol.
            "forall u: (u <<= x & !eq(u, eps)) -> "
            "exists v: (v <<= y & exists u2: (ext1(u2, v) & el(u2, u)) & "
            "((last(u, '0') & last(v, '0')) | (last(u, '1') & last(v, '1'))))"
        )
        paper_def = parse_formula(text)
        S_len(BINARY).check_formula(paper_def)
        paper_rel = ENGINE_LEN.run(paper_def)
        for a in BINARY.strings_up_to(3):
            for b in BINARY.strings_up_to(4):
                expected = b == "1" + a
                assert paper_rel.contains((a, b)) == expected, (a, b)


class TestSection4LengthComparison:
    def test_len_lt_via_el(self):
        """|x| < |y| expressed as 'exists z: z << y and el(z, x)'."""
        q = parse_formula("exists z: z << y & el(z, x)")
        rel = ENGINE_LEN.run(q)
        for a in BINARY.strings_up_to(3):
            for b in BINARY.strings_up_to(3):
                assert rel.contains((a, b)) == (len(a) < len(b)), (a, b)


class TestSection6FinitenessInSLen:
    def test_finiteness_sentence_shape(self):
        """Section 6.1: finiteness of a unary U is definable in RC(S_len)
        by 'exists y forall x (U(x) -> exists z <<= y with el(z, x))'.
        Database relations are always finite here, so the sentence must
        hold for every database interpretation of U."""
        sentence = parse_formula(
            "exists y: forall adom x: U(x) -> exists z: z <<= y & el(z, x)"
        )
        for strings in [set(), {"0"}, {"0", "0110", "111"}]:
            db = Database(BINARY, {"U": {(s,) for s in strings}})
            assert AutomataEngine(S_len(BINARY), db).decide(sentence), strings
