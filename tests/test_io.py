"""Tests for serialization / DOT export (repro.io)."""

from hypothesis import given, settings, strategies as st

from repro.automata import compile_regex, dfa_from_finite_language
from repro.automatic import presentations as pres
from repro.database import Database, random_database
from repro.io import (
    database_from_json,
    database_to_json,
    dfa_to_dot,
    relation_to_dot,
    to_dot,
)
from repro.strings import BINARY


class TestDatabaseJson:
    def test_roundtrip(self):
        db = Database(BINARY, {"R": {("0",), ("01",)}, "E": {("0", "01")}})
        again = database_from_json(database_to_json(db))
        assert again == db

    def test_stable_output(self):
        db = Database(BINARY, {"R": {("1",), ("0",)}})
        assert database_to_json(db) == database_to_json(db)

    @settings(max_examples=25, deadline=None)
    @given(
        r=st.sets(st.text(alphabet="01", max_size=4), max_size=5),
        e=st.sets(
            st.tuples(
                st.text(alphabet="01", max_size=3), st.text(alphabet="01", max_size=3)
            ),
            max_size=4,
        ),
    )
    def test_roundtrip_property(self, r, e):
        db = Database(BINARY, {"R": {(x,) for x in r}, "E": e})
        assert database_from_json(database_to_json(db)) == db

    def test_default_alphabet(self):
        db = database_from_json('{"relations": {"R": [["0"]]}}')
        assert db.alphabet.symbols == ("0", "1")


class TestDot:
    def test_dfa_dot_structure(self):
        dfa = compile_regex("01*", BINARY)
        dot = dfa_to_dot(dfa, "m")
        assert dot.startswith("digraph m {")
        assert "doublecircle" in dot  # accepting state present
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_relation_dot(self):
        rel = pres.prefix(BINARY)
        dot = relation_to_dot(rel)
        assert "(#," in dot or "(0,0)" in dot  # convolution columns labeled

    def test_polymorphic(self):
        dfa = dfa_from_finite_language(BINARY, {"01"})
        assert to_dot(dfa).startswith("digraph")
        assert to_dot(pres.equality(BINARY)).startswith("digraph")

    def test_long_labels_truncated(self):
        rel = pres.lcp_graph(BINARY)  # arity-3 columns: many labels per edge
        dot = relation_to_dot(rel)
        for line in dot.splitlines():
            if 'label="' in line and "->" in line:
                label = line.split('label="')[1].rsplit('"', 1)[0]
                assert len(label) <= 40
