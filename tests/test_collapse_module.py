"""Unit tests for the collapse machinery (repro.eval.collapse) itself."""

import pytest

from repro.eval.collapse import MAX_DEFAULT_SLACK, CollapsedQuery, collapse, default_slack
from repro.logic import QuantKind, parse_formula
from repro.logic.formulas import Exists, Forall
from repro.strings import BINARY
from repro.structures import S, S_len


class TestDefaultSlack:
    def test_grows_with_quantifier_rank(self):
        f0 = parse_formula("R(x)")
        f1 = parse_formula("exists y: R(y)")
        f2 = parse_formula("exists y: exists z: R(y) & R(z)")
        assert default_slack(f0) == 2  # rank 0 treated as rank 1
        assert default_slack(f1) == 2
        assert default_slack(f2) == 4

    def test_cap(self):
        text = "R(x)"
        for v in "abcdefgh":  # rank 8 -> 2^8 = 256, capped
            text = f"exists {v}: ({text} | R({v}))"
        f = parse_formula(text)
        assert f.quantifier_rank() == 8
        assert default_slack(f) == MAX_DEFAULT_SLACK


class TestCollapse:
    def test_retargets_natural_only(self):
        f = parse_formula("exists x: R(x) & exists adom y: S(y)")
        q = collapse(f, S(BINARY))
        kinds = [
            sub.kind for sub in q.formula.walk() if isinstance(sub, (Exists, Forall))
        ]
        assert kinds == [QuantKind.PREFIX, QuantKind.ADOM]
        assert q.kind is QuantKind.PREFIX

    def test_s_len_gets_length_kind(self):
        f = parse_formula("exists x: el(x, x)")
        q = collapse(f, S_len(BINARY))
        assert q.kind is QuantKind.LENGTH
        inner = next(s for s in q.formula.walk() if isinstance(s, Exists))
        assert inner.kind is QuantKind.LENGTH

    def test_explicit_slack_respected(self):
        f = parse_formula("exists x: R(x)")
        q = collapse(f, S(BINARY), slack=7)
        assert q.slack == 7

    def test_collapsed_query_is_frozen_record(self):
        f = parse_formula("exists x: R(x)")
        q = collapse(f, S(BINARY))
        assert isinstance(q, CollapsedQuery)
        with pytest.raises(Exception):
            q.slack = 99  # type: ignore[misc]

    def test_forall_also_collapsed(self):
        f = parse_formula("forall x: R(x) -> last(x, '0')")
        q = collapse(f, S(BINARY))
        quantifier = next(
            s for s in q.formula.walk() if isinstance(s, (Exists, Forall))
        )
        assert isinstance(quantifier, Forall)
        assert quantifier.kind is QuantKind.PREFIX
