"""Tests for the canonical formula pipeline (repro.logic.canonical).

Two properties under test: the *identity* property (alpha-equivalent and
conjunct-permuted spellings share one fingerprint and one canonical form)
and the *unification* property (those spellings share cache entries in
every layer — automaton cache, direct/algebra result caches, the algebra
compiled-plan cache, and the service's prepared-query plan cache).
"""

import pytest

from repro.core import Query, StringDatabase
from repro.engine import METRICS, global_cache
from repro.logic import parse_formula
from repro.logic.canonical import (
    canonical_fingerprint,
    canonical_serialization,
    canonicalize,
)
from repro.service import QueryService, RunRequest


@pytest.fixture
def db():
    return StringDatabase("01", {"R": {"0110", "001", "11"}, "S": {"0", "01"}})


@pytest.fixture(autouse=True)
def _fresh():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


# Alpha-equivalent pairs (bound names differ) and commutative permutations.
ALPHA_PAIRS = [
    ("exists adom y: R(y)", "exists adom z: R(z)"),
    (
        "R(x) & (exists adom y: S(y) & y <<= x)",
        "R(x) & (exists adom w: S(w) & w <<= x)",
    ),
    (
        "exists adom a: exists adom b: R(a) & S(b)",
        "exists adom u: exists adom v: R(u) & S(v)",
    ),
    # Conjunct and disjunct permutations.
    (
        "R(x) & (exists adom y: S(y) & y <<= x)",
        "(exists adom y: y <<= x & S(y)) & R(x)",
    ),
    ("R(x) | S(x)", "S(x) | R(x)"),
]

DIFFERENT_PAIRS = [
    # Free variables are output columns: renaming them changes the query.
    ("R(x)", "R(y)"),
    ("exists adom y: R(y)", "exists adom y: S(y)"),
    ("R(x) & S(x)", "R(x) | S(x)"),
    # Distinct bound structure, same text-length.
    ("exists adom y: forall adom z: R(y)", "forall adom y: exists adom z: R(y)"),
]


class TestFingerprint:
    @pytest.mark.parametrize("left,right", ALPHA_PAIRS)
    def test_equivalent_spellings_share_fingerprint(self, left, right):
        f, g = parse_formula(left), parse_formula(right)
        assert canonical_serialization(f) == canonical_serialization(g)
        assert canonical_fingerprint(f) == canonical_fingerprint(g)

    @pytest.mark.parametrize("left,right", DIFFERENT_PAIRS)
    def test_different_queries_differ(self, left, right):
        f, g = parse_formula(left), parse_formula(right)
        assert canonical_fingerprint(f) != canonical_fingerprint(g)

    @pytest.mark.parametrize("left,right", ALPHA_PAIRS)
    def test_canonicalize_is_idempotent_and_unifying(self, left, right):
        f, g = parse_formula(left), parse_formula(right)
        assert canonicalize(f) == canonicalize(g)
        assert canonicalize(canonicalize(f)) == canonicalize(f)
        assert canonical_fingerprint(canonicalize(f)) == canonical_fingerprint(f)

    @pytest.mark.parametrize("left,right", ALPHA_PAIRS + DIFFERENT_PAIRS)
    def test_canonicalize_preserves_free_variables(self, left, right):
        for text in (left, right):
            f = parse_formula(text)
            assert canonicalize(f).free_variables() == f.free_variables()

    def test_binder_rename_avoids_free_name_capture(self):
        # A free variable already named like a canonical binder must not
        # be captured by the renaming.
        f = parse_formula("R(_c0) & (exists adom y: y <<= _c0)")
        canon = canonicalize(f)
        assert canon.free_variables() == {"_c0"}
        # The binder got a name distinct from the free one.
        assert "exists adom _c1" in str(canon) or "_c0" not in str(canon).split(":")[0]


class TestCacheUnification:
    def test_alpha_variant_hits_automaton_cache(self, db):
        # NATURAL quantifier -> automata engine, subformula compilations
        # land in the automaton cache keyed by canonical fingerprint.
        first = Query("R(x) & exists y: y <<= x", structure="S").run(db)
        misses = global_cache().stats()["misses"]
        assert misses > 0
        second = Query("R(x) & exists w: w <<= x", structure="S").run(db)
        warm = global_cache().stats()
        assert warm["misses"] == misses        # nothing recompiled
        assert warm["hits"] > 0                # served from cache
        assert first.rows() == second.rows()

    def test_conjunct_permutation_hits_direct_result_cache(self, db):
        q1 = Query("R(x) & (exists adom y: S(y) & y <<= x)", structure="S")
        q2 = Query("(exists adom y: y <<= x & S(y)) & R(x)", structure="S")
        assert q1.plan(db).engine == "direct"
        first = q1.run(db)
        misses = global_cache().stats()["misses"]
        second = q2.run(db)
        assert global_cache().stats()["misses"] == misses
        assert global_cache().stats()["hits"] >= 1
        assert first.rows() == second.rows()

    def test_plans_share_fingerprint(self, db):
        q1 = Query("exists adom y: R(y) & S(y)", structure="S")
        q2 = Query("exists adom z: S(z) & R(z)", structure="S")
        p1, p2 = q1.plan(db), q2.plan(db)
        assert p1.fingerprint == p2.fingerprint
        assert str(p1.formula) == str(p2.formula)  # same canonical form


class TestServicePreparedQueries:
    def test_alpha_equivalent_prepares_share_handle_and_plans(self, db):
        with QueryService(workers=2) as svc:
            svc.register_database("main", db)
            h1 = svc.prepare("exists adom y: R(y)")
            h2 = svc.prepare("exists adom z: R(z)")
            assert h1 is h2                            # interned by fingerprint
            assert METRICS.get("service.prepared_queries") == 1

            r1 = svc.execute(RunRequest(query=h1, database="main"))
            assert r1.ok
            hits_before = METRICS.get("service.plan_cache_hits")
            r2 = svc.execute(
                RunRequest(query="exists adom z: R(z)", database="main")
            )
            assert r2.ok and r2.rows == r1.rows
            # The second spelling reused the first's cached plan.
            assert METRICS.get("service.plan_cache_hits") == hits_before + 1

    def test_same_text_fast_path_still_interns(self, db):
        with QueryService(workers=1) as svc:
            assert svc.prepare("R(x)") is svc.prepare("R(x)")
            assert METRICS.get("service.prepared_queries") == 1
