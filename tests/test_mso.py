"""Tests for MSO-over-strings and the Proposition 5 pipeline."""

import pytest

from repro.automata import dfa_all_strings, equivalent, compile_regex, is_star_free
from repro.database import (
    complete_graph,
    cycle_graph,
    graph_database,
    random_graph,
)
from repro.mso import (
    ExistsPos,
    ExistsSet,
    InSet,
    Label,
    Less,
    MsoNot,
    PosEq,
    Succ,
    forall_pos,
    implies,
    is_three_colorable_bruteforce,
    is_three_colorable_via_rc_slen,
    mso_to_dfa,
    three_colorability_sentence,
)
from repro.strings import BINARY


class TestMsoToDfa:
    def test_exists_label(self):
        # "some position carries 1"
        sentence = ExistsPos("x", Label("x", "1"))
        dfa = mso_to_dfa(sentence, BINARY)
        assert equivalent(dfa, compile_regex("0*1(0|1)*", BINARY))

    def test_forall_label(self):
        # "every position carries 0" == 0*
        sentence = forall_pos("x", Label("x", "0"))
        dfa = mso_to_dfa(sentence, BINARY)
        assert equivalent(dfa, compile_regex("0*", BINARY))

    def test_first_position_is_1(self):
        # exists x: Q_1(x) and no y < x.
        sentence = ExistsPos(
            "x", Label("x", "1") & MsoNot(ExistsPos("y", Less("y", "x")))
        )
        dfa = mso_to_dfa(sentence, BINARY)
        assert equivalent(dfa, compile_regex("1(0|1)*", BINARY))

    def test_succ(self):
        # some position with 1 immediately followed by 0.
        sentence = ExistsPos(
            "x", ExistsPos("y", Label("x", "1") & Label("y", "0") & Succ("x", "y"))
        )
        dfa = mso_to_dfa(sentence, BINARY)
        assert equivalent(dfa, compile_regex("(0|1)*10(0|1)*", BINARY))

    def test_pos_eq(self):
        sentence = ExistsPos("x", ExistsPos("y", PosEq("x", "y") & Label("x", "1")))
        dfa = mso_to_dfa(sentence, BINARY)
        assert equivalent(dfa, compile_regex("(0|1)*1(0|1)*", BINARY))

    def test_set_quantification_even_length(self):
        # EXISTS X: (positions alternate membership, first in X, last not in X)
        # encodes even length. Simpler: use the classic even-1s via sets is
        # longer; here: every word whose positions can be split so that X
        # contains exactly the even positions and the last position is in X
        # <=> odd length. Test a set-quantified sentence against brute force.
        # X contains position 0 and is closed under double successor and
        # the last position is in X  ->  length is odd.
        x, y, z = "x", "y", "z"
        first_in = ExistsPos(
            x, InSet(x, "X") & MsoNot(ExistsPos(y, Less(y, x)))
        )
        closed = forall_pos(
            x,
            forall_pos(
                y,
                forall_pos(
                    z,
                    implies(
                        InSet(x, "X") & Succ(x, y) & Succ(y, z), InSet(z, "X")
                    ),
                ),
            ),
        )
        only = forall_pos(
            x,
            implies(
                InSet(x, "X"),
                MsoNot(ExistsPos(y, Less(y, x)))
                | ExistsPos(
                    y, ExistsPos(z, InSet(y, "X") & Succ(y, z) & Succ(z, x))
                ),
            ),
        )
        last_in = ExistsPos(
            x, InSet(x, "X") & MsoNot(ExistsPos(y, Less(x, y)))
        )
        sentence = ExistsSet("X", first_in & closed & only & last_in)
        dfa = mso_to_dfa(sentence, BINARY)
        for s in BINARY.strings_up_to(6):
            assert dfa.accepts(s) == (len(s) % 2 == 1), s

    def test_mso_can_define_non_star_free(self):
        # The odd-length language above is not star-free? Odd length IS
        # non-aperiodic (length parity). Confirm via the checker.
        sentence = ExistsPos("x", MsoNot(ExistsPos("y", Less("x", "y"))))
        # "there is a last position" == nonempty == star-free.
        assert is_star_free(mso_to_dfa(sentence, BINARY))

    def test_sentence_required(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            mso_to_dfa(Label("x", "1"), BINARY)


@pytest.mark.slow
class TestProp5:
    """MSO 3-colorability through RC(S_len) on width-1 databases."""

    @pytest.mark.parametrize(
        "n,edges,expected",
        [
            (3, cycle_graph(3), True),  # triangle: 3-colorable
            (4, complete_graph(4), False),  # K4: not 3-colorable
            (4, cycle_graph(4), True),
            (3, complete_graph(3), True),
            (5, cycle_graph(5), True),
        ],
    )
    def test_against_bruteforce(self, n, edges, expected):
        assert is_three_colorable_bruteforce(n, edges) is expected
        db = graph_database(n, edges, BINARY)
        assert db.width() == 1
        assert is_three_colorable_via_rc_slen(db) is expected

    def test_random_graphs_agree(self):
        for seed in range(3):
            edges = random_graph(4, 0.6, seed=seed)
            db = graph_database(4, edges, BINARY)
            expected = is_three_colorable_bruteforce(4, edges)
            assert is_three_colorable_via_rc_slen(db) is expected, seed

    def test_sentence_is_rc_slen(self):
        from repro.structures import S_len

        S_len(BINARY).check_formula(three_colorability_sentence())

    def test_sentence_not_rc_s(self):
        from repro.errors import SignatureError
        from repro.structures import S

        with pytest.raises(SignatureError):
            S(BINARY).check_formula(three_colorability_sentence())
