"""Tests for the public facade (repro.core / top-level package)."""

import pytest

from repro import (
    BINARY,
    Query,
    SignatureError,
    StringDatabase,
    UnsafeQueryError,
    definable_language,
    language_is_star_free,
    parse_query,
)
from repro.automata import equivalent, compile_regex
from repro.errors import EvaluationError


DB = StringDatabase("01", {"R": {"0110", "001", "11"}, "E": {("0", "01")}})


class TestStringDatabase:
    def test_construction_from_symbols(self):
        assert DB.alphabet is not None
        assert DB.adom == {"0110", "001", "11", "0", "01"}

    def test_schema_and_width(self):
        assert DB.schema.arity("E") == 2
        assert DB.width() >= 2  # "0" << "01" << "011..." chains

    def test_unary_shorthand(self):
        db = StringDatabase("ab", {"R": {"a", "ab"}})
        assert db.db.relation("R") == {("a",), ("ab",)}


class TestQuery:
    def test_paper_example_end_to_end(self):
        q = Query("R(x) & last(x, '0') & exists y: ext1(y, x) & last(y, '1')")
        table = q.run(DB)
        assert table.rows() == [("0110",)]
        assert ("0110",) in table
        assert len(table) == 1

    def test_decide(self):
        assert Query("exists x: R(x) & last(x, '1')").decide(DB)
        assert not Query("exists x: R(x) & x = eps").decide(DB)

    def test_signature_enforced_at_construction(self):
        with pytest.raises(SignatureError):
            Query("el(x, y)", structure="S")
        Query("el(x, y)", structure="S_len")

    def test_direct_engine_agrees(self):
        q = Query("R(x) & last(x, '1')")
        assert q.run(DB, engine="direct").rows() == q.run(DB).rows()

    def test_unsafe_query_raises_without_limit(self):
        q = Query("last(x, '0')")
        with pytest.raises(UnsafeQueryError):
            q.run(DB)
        sample = q.run(DB, limit=4)
        assert len(sample) == 4

    def test_safety_api(self):
        assert Query("R(x)").is_safe_on(DB)
        assert not Query("!R(x)").is_safe_on(DB)
        report = Query("R(x)").safety_report(DB)
        assert report.safe and report.output_size == 3

    def test_range_restricted(self):
        rr = Query("exists adom y: x <<= y").range_restricted(slack=0)
        out = rr.evaluate(DB.db)
        assert ("0",) in out and ("0110",) in out

    def test_to_algebra(self):
        q = Query("R(x) & last(x, '1')")
        compiled = q.to_algebra(DB.schema)
        assert compiled.evaluate(DB.db) == {("11",), ("001",)}

    def test_unknown_engine(self):
        with pytest.raises(EvaluationError):
            Query("R(x)").run(DB, engine="quantum")

    def test_free_variables(self):
        assert Query("E(x, y) & last(x, '0')").free_variables == ("x", "y")

    def test_parse_query_alias(self):
        q = parse_query("R(x)", structure="S")
        assert q.structure.name == "S"


class TestDefinableLanguage:
    def test_star_free_language_from_s(self):
        q = Query("last(x, '0')", structure="S")
        dfa = definable_language(q)
        assert equivalent(dfa, compile_regex("(0|1)*0", BINARY))
        assert language_is_star_free(q)

    def test_regular_language_from_s_reg(self):
        q = Query('matches(x, "(00)*")', structure="S_reg")
        dfa = definable_language(q)
        assert equivalent(dfa, compile_regex("(00)*", BINARY))
        assert not language_is_star_free(q)

    def test_s_len_definable_even_length(self):
        # even length via el and a midpoint: exists y: el(y, y) ... simpler:
        # exists y: prefix(y, x) & el-trick is complex; use matches instead.
        q = Query('matches(x, "((0|1)(0|1))*")', structure="S_len")
        assert not language_is_star_free(q)

    def test_requires_unary_db_free(self):
        with pytest.raises(EvaluationError):
            definable_language(Query("R(x)"))
        with pytest.raises(EvaluationError):
            definable_language(Query("prefix(x, y)"))
