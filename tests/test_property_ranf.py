"""Differential property tests for the RANF-widened fast-engine regime.

Hypothesis generates safe formulas across the regimes this translation
opened up — anchored queries under restricted PREFIX/LENGTH quantifiers
(which the old collapsed-form gate rejected outright) and gamma-bounded
queries whose free variables are certified by
:func:`repro.safety.bounded.range_bounded_variables` instead of being
anchored — and asserts the RANF-translated algebra/codegen evaluation
agrees tuple-for-tuple with the exact automata engine (and the direct
engine where its own gate admits the query).  A final suite evolves a
versioned database through random deltas and checks the maintained
answers of widened queries still match a from-scratch build.
"""

import itertools

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core import Query
from repro.database import Database
from repro.database.schema import Schema
from repro.delta import VersionedDatabase
from repro.engine.backend import restricted_output_gate
from repro.engine.planner import algebra_eligible
from repro.logic.canonical import canonicalize
from repro.logic.dsl import (
    and_,
    el,
    eq,
    exists_len,
    exists_prefix,
    last,
    len_le,
    not_,
    or_,
    prefix,
    rel,
    sprefix,
)
from repro.logic.formulas import Formula
from repro.strings import BINARY
from repro.structures import S_len
from repro.structures.catalog import by_name

VARS = ["u", "v", "w"]

short_string = st.text(alphabet="01", max_size=3)

databases = st.builds(
    lambda r, s: Database(
        BINARY,
        {"R": {(x,) for x in r}, "S": {(x,) for x in s}},
        schema=Schema({"R": 1, "S": 1}),
    ),
    st.sets(short_string, min_size=1, max_size=3),
    st.sets(short_string, max_size=3),
)


def _atoms(variables: list[str]) -> st.SearchStrategy[Formula]:
    var = st.sampled_from(variables)
    unary = (
        st.builds(lambda t, a: last(t, a), var, st.sampled_from("01"))
        | st.builds(lambda t: rel("R", t), var)
        | st.builds(lambda t: rel("S", t), var)
    )
    binary_ctor = st.sampled_from([prefix, sprefix, eq, el, len_le])
    binary = st.builds(lambda c, t1, t2: c(t1, t2), binary_ctor, var, var)
    return unary | binary


def _quantified(depth: int) -> st.SearchStrategy[Formula]:
    """Formulas whose quantifiers are restricted PREFIX/LENGTH only —
    every non-trivial example sits outside the old ADOM-only gate."""
    base = _atoms(VARS)
    if depth == 0:
        return base
    sub = _quantified(depth - 1)
    quantifier = st.builds(
        lambda q, v, f: q(v, f),
        st.sampled_from([exists_prefix, exists_len]),
        st.sampled_from(VARS),
        sub,
    )
    boolean = (
        st.builds(lambda a, b: and_(a, b), sub, sub)
        | st.builds(lambda a, b: or_(a, b), sub, sub)
        | st.builds(not_, sub)
    )
    return base | quantifier | boolean


def _anchor(formula: Formula) -> Formula:
    for v in sorted(formula.free_variables(), reverse=True):
        formula = and_(rel("R", v), formula)
    return formula


STRUCTURE = S_len(BINARY)


class TestWidenedRegimeAgreement:
    @settings(max_examples=50, deadline=None)
    @given(formula=_quantified(depth=2), db=databases)
    def test_restricted_quantifier_queries_agree(self, formula, db):
        anchored = _anchor(formula)
        canonical = canonicalize(anchored)
        assume(algebra_eligible(canonical, STRUCTURE))
        query = Query(anchored, structure="S_len")
        engines = ["automata", "algebra", "codegen"]
        if restricted_output_gate(canonical, db)[0]:
            engines.append("direct")
        rows = {
            e: query.result(db, engine=e, slack=1).as_set() for e in engines
        }
        assert len(set(map(frozenset, rows.values()))) == 1, (
            str(canonical), rows,
        )

    # The double assume (old gate no, widened gate yes) discards most
    # draws, and engine runs are slow on a loaded box — both are the
    # point of the test, not a strategy bug, so silence those checks.
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[
            HealthCheck.filter_too_much,
            HealthCheck.too_slow,
        ],
    )
    @given(formula=_quantified(depth=2), db=databases)
    def test_old_gate_rejections_now_agree(self, formula, db):
        """Specifically the formulas the pre-RANF gate refused."""
        anchored = _anchor(formula)
        canonical = canonicalize(anchored)
        assume(not algebra_eligible(canonical))  # old gate said no
        assume(algebra_eligible(canonical, STRUCTURE))  # widened gate: yes
        query = Query(anchored, structure="S_len")
        auto = query.result(db, engine="automata", slack=1).as_set()
        fast = query.result(db, engine="algebra", slack=1).as_set()
        assert auto == fast, str(canonical)


def _gamma_formulas() -> st.SearchStrategy[Formula]:
    """eq-copied unanchored outputs over an anchored core, optionally
    negating a second relation on the copied variable."""
    core = st.builds(
        lambda v: and_(eq("u", v), rel("R", v)), st.sampled_from(["v", "w"])
    )
    extra = st.sampled_from(
        ["none", "not_s", "last0", "prefix_guard"]
    )

    def build(base, tag):
        if tag == "not_s":
            return and_(base, not_(rel("S", "u")))
        if tag == "last0":
            return and_(base, last("u", "0"))
        if tag == "prefix_guard":
            return and_(base, prefix("u", "u"))
        return base

    return st.builds(build, core, extra)


class TestGammaBoundedAgreement:
    @settings(max_examples=40, deadline=None)
    @given(formula=_gamma_formulas(), db=databases)
    def test_gamma_bounded_queries_agree(self, formula, db):
        canonical = canonicalize(formula)
        assume(algebra_eligible(canonical, by_name("S", BINARY)))
        # These outputs are not anchored: the old regime had automata only.
        assert not restricted_output_gate(canonical, db)[0]
        query = Query(formula, structure="S")
        auto = query.result(db, engine="automata", slack=1)
        fast = query.result(db, engine="algebra", slack=1)
        assert auto.as_set() == fast.as_set(), str(canonical)


# ------------------------------------------------------------ MVCC deltas


#: Widened queries (old gate: rejected) maintained across versions.
DELTA_QUERIES = [
    "R(x) & (exists prefix y: (sprefix(y, x) & S(y)))",
    "R(x) & (exists prefix y: (y <<= x & !S(y)))",
    "eq(x, y) & R(y) & !S(x)",
]

strings6 = st.text(alphabet="01", min_size=0, max_size=5)
step = st.tuples(
    st.sampled_from(["insert", "delete"]),
    st.sampled_from(["R", "S"]),
    st.frozensets(strings6, min_size=1, max_size=3),
)

_count = itertools.count()


class TestDeltaMaintenance:
    @settings(max_examples=20, deadline=None)
    @given(
        r=st.frozensets(strings6, min_size=1, max_size=6),
        s=st.frozensets(strings6, max_size=6),
        ops=st.lists(step, max_size=4),
    )
    def test_evolved_equals_fresh_on_widened_queries(self, r, s, ops):
        vdb = VersionedDatabase(
            Database(
                BINARY,
                {"R": {(x,) for x in r}, "S": {(x,) for x in s}},
                schema=Schema({"R": 1, "S": 1}),
            )
        )
        model = {"R": set(r), "S": set(s)}
        probes = [Query(text, structure="S") for text in DELTA_QUERIES]
        for op, name, rows in ops:
            if op == "insert":
                vdb.insert(name, rows)
                model[name] |= rows
            else:
                vdb.delete(name, rows)
                model[name] -= rows
            # Mid-chain queries engage the incremental maintenance paths.
            for probe in probes:
                probe.result(vdb.head.database, engine="algebra", slack=1)
        fresh = Database(
            BINARY,
            {name: {(x,) for x in rows} for name, rows in model.items()},
            schema=Schema({"R": 1, "S": 1}),
        )
        evolved = vdb.head.database
        for text in DELTA_QUERIES:
            query = Query(text, structure="S")
            got = query.result(evolved, engine="algebra", slack=1).as_set()
            want = query.result(fresh, engine="automata", slack=1).as_set()
            assert got == want, (
                f"{text}: maintained algebra answer diverged after "
                f"{len(ops)} deltas"
            )
