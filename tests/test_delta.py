"""Unit tests for the MVCC delta store and incremental maintenance.

Covers the store's snapshot semantics (pinning, effective deltas,
pruning, schema extension, error cases), the chained-fingerprint memo,
and the maintenance layer's cache survival guarantees — the ΔQ algebra
path, automata/subformula promotion, and the delta service verbs.
"""

import pytest

from repro.core.query import Query, StringDatabase
from repro.database.instance import Database
from repro.delta import (
    Delta,
    DeltaError,
    VersionedDatabase,
    chained_fingerprint,
    evolve_database,
    transition_for,
)
from repro.engine.cache import database_fingerprint, global_cache
from repro.engine.metrics import METRICS
from repro.errors import ArityError
from repro.service import QueryService, RunRequest
from repro.service.protocol import Dispatcher
from repro.strings import BINARY


def make_db(r=("01", "0110"), s=("0",)):
    return Database(BINARY, {"R": {(x,) for x in r}, "S": {(x,) for x in s}})


# ----------------------------------------------------------------- the store


class TestVersionedDatabase:
    def test_insert_creates_new_pinned_snapshot(self):
        vdb = VersionedDatabase(make_db())
        v0 = vdb.head
        v1 = vdb.insert("R", ["111"])
        assert v1.version == 1
        assert v0.database.relation("R") == {("01",), ("0110",)}
        assert v1.database.relation("R") == {("01",), ("0110",), ("111",)}
        # Untouched relations share the parent's frozenset object.
        assert v1.database.relation("S") is v0.database.relation("S")

    def test_delete_and_effective_normalization(self):
        vdb = VersionedDatabase(make_db())
        v1 = vdb.delete("R", ["01", "111111"])  # second row is absent
        assert v1.delta.deleted("R") == {("01",)}  # absent rows dropped
        v2 = vdb.insert("R", ["0110"])  # already present: effective no-op
        assert v2 is v1
        assert vdb.head.version == 1

    def test_noop_counts_metric_not_version(self):
        vdb = VersionedDatabase(make_db())
        before = METRICS.get("delta.noops")
        vdb.delete("S", ["11111"])  # not present
        assert METRICS.get("delta.noops") == before + 1
        assert vdb.head.version == 0

    def test_combined_apply_is_atomic(self):
        vdb = VersionedDatabase(make_db())
        head = vdb.apply(inserts={"R": ["111"]}, deletes={"S": ["0"]})
        assert head.version == 1
        assert head.database.relation("S") == frozenset()
        assert ("111",) in head.database.relation("R")

    def test_same_relation_in_both_sides_rejected(self):
        vdb = VersionedDatabase(make_db())
        with pytest.raises(DeltaError, match="both inserts and deletes"):
            vdb.apply(inserts={"R": ["111"]}, deletes={"R": ["01"]})

    def test_delete_unknown_relation_rejected(self):
        vdb = VersionedDatabase(make_db())
        with pytest.raises(DeltaError, match="unknown relation"):
            vdb.delete("T", ["0"])

    def test_insert_unknown_relation_extends_schema(self):
        vdb = VersionedDatabase(make_db())
        head = vdb.insert("T", [("0", "1")])
        assert head.schema_changed
        assert head.database.schema.arity("T") == 2
        assert head.plan_epoch == vdb.version(0).plan_epoch + 1

    def test_arity_mismatch_rejected(self):
        vdb = VersionedDatabase(make_db())
        with pytest.raises(ArityError):
            vdb.insert("R", [("0", "1")])
        with pytest.raises(ArityError):
            vdb.insert("T", [("0", "1"), ("0",)])

    def test_adom_maintained_by_refcounts(self):
        vdb = VersionedDatabase(make_db(r=("01",), s=("01",)))
        # "01" occurs in R and S: deleting one occurrence keeps it active.
        v1 = vdb.delete("R", ["01"])
        assert not v1.adom_changed
        assert "01" in v1.database.adom
        v2 = vdb.delete("S", ["01"])
        assert v2.adom_changed
        assert v2.database.adom == frozenset()

    def test_plan_epoch_tracks_adom_and_schema_only(self):
        vdb = VersionedDatabase(make_db(r=("01",), s=("01", "0")))
        v1 = vdb.insert("R", ["0"])  # "0" already active via S
        assert not v1.adom_changed and v1.plan_epoch == 0
        v2 = vdb.insert("R", ["111"])  # new active string
        assert v2.adom_changed and v2.plan_epoch == 1

    def test_version_pruning(self):
        vdb = VersionedDatabase(make_db(), keep_versions=2)
        pinned = vdb.head
        for i in range(4):
            vdb.insert("R", [f"1{'0' * i}1"])
        with pytest.raises(DeltaError, match="unknown or pruned"):
            vdb.version(0)
        assert vdb.head.version == 4
        # Pinned references keep answering regardless of pruning.
        assert pinned.database.relation("R") == {("01",), ("0110",)}

    def test_versions_summary_shape(self):
        vdb = VersionedDatabase(make_db())
        vdb.insert("R", ["111"])
        summaries = vdb.versions()
        assert [v["version"] for v in summaries] == [0, 1]
        assert summaries[1]["delta_size"] == 1
        assert summaries[1]["fingerprint"] == vdb.head.fingerprint


class TestFingerprints:
    def test_chained_fingerprint_differs_from_content(self):
        vdb = VersionedDatabase(make_db())
        head = vdb.insert("R", ["111"])
        fresh = make_db(r=("01", "0110", "111"))
        assert head.database.relation("R") == fresh.relation("R")
        # Same content, different history: conservative cache miss.
        assert database_fingerprint(head.database) != database_fingerprint(fresh)
        assert head.fingerprint == chained_fingerprint(
            vdb.version(0).fingerprint, head.delta.digest()
        )

    def test_fingerprint_memoized_per_instance(self):
        db = make_db()
        first = database_fingerprint(db)
        before = METRICS.get("cache.fingerprint_memo_hits")
        assert database_fingerprint(db) == first
        assert METRICS.get("cache.fingerprint_memo_hits") == before + 1

    def test_delta_digest_order_invariant(self):
        a = Delta(
            inserts=(("R", frozenset({("0",), ("1",)})),),
            deletes=(("S", frozenset({("00",)})),),
        )
        b = Delta(
            inserts=(("R", frozenset({("1",), ("0",)})),),
            deletes=(("S", frozenset({("00",)})),),
        )
        assert a.digest() == b.digest()

    def test_evolve_database_shares_untouched_relations(self):
        db = make_db()
        out = evolve_database(db, {"R": frozenset({("111",)})}, {})
        assert out.relation("S") is db.relation("S")
        assert out.relation("R") == db.relation("R") | {("111",)}
        assert out.adom == db.adom | {"111"}


# ----------------------------------------------------------- cache survival


class TestIncrementalMaintenance:
    def test_algebra_result_maintained_across_delta(self):
        vdb = VersionedDatabase(
            Database(
                BINARY,
                {
                    "R": {(f"{i:04b}",) for i in range(12)},
                    "S": {(f"{i:05b}",) for i in range(12)},
                },
            )
        )
        query = Query("R(x) & S(y) & x <<= y")
        baseline = query.result(vdb.head.database, engine="algebra").as_set()
        assert baseline is not None
        before = METRICS.get("delta.algebra_maintained")
        head = vdb.insert("S", ["01010", "11111"])
        incremental = query.result(head.database, engine="algebra").as_set()
        fresh = Database(
            BINARY,
            {
                "R": {(f"{i:04b}",) for i in range(12)},
                "S": {(f"{i:05b}",) for i in range(12)}
                | {("01010",), ("11111",)},
            },
        )
        assert incremental == query.result(fresh, engine="algebra").as_set()
        assert METRICS.get("delta.algebra_maintained") == before + 1

    def test_untouched_formula_result_promoted(self):
        vdb = VersionedDatabase(make_db())
        query = Query("R(x) & last(x, '0')")
        first = query.result(vdb.head.database, engine="direct").as_set()
        before = METRICS.get("delta.result_promotions")
        head = vdb.insert("S", ["0110"])  # adom unchanged, R untouched
        promoted = query.result(head.database, engine="direct").as_set()
        assert promoted == first
        assert METRICS.get("delta.result_promotions") == before + 1

    def test_automata_cache_survives_deltas(self):
        cache = global_cache()
        vdb = VersionedDatabase(make_db())
        query = Query("exists adom x: R(x) & last(x, '0')")
        query.result(vdb.head.database, engine="automata")
        before = METRICS.get("delta.automata_promotions")
        head = vdb.insert("S", ["01"])  # R untouched, adom unchanged
        out = query.result(head.database, engine="automata").as_set()
        assert METRICS.get("delta.automata_promotions") > before
        fresh = make_db(s=("0", "01"))
        assert out == query.result(fresh, engine="automata").as_set()

    def test_adom_sensitive_formula_not_promoted_on_adom_change(self):
        vdb = VersionedDatabase(make_db())
        query = Query("exists adom x: R(x) & last(x, '0')")
        query.result(vdb.head.database, engine="automata")
        head = vdb.insert("S", ["111111"])  # R untouched but adom grew
        fresh = make_db(s=("0", "111111"))
        assert (
            query.result(head.database, engine="automata").as_set()
            == query.result(fresh, engine="automata").as_set()
        )

    def test_transition_registry_records_chain(self):
        vdb = VersionedDatabase(make_db())
        v1 = vdb.insert("R", ["111"])
        v2 = vdb.delete("S", ["0"])
        t = transition_for(v2.fingerprint)
        assert t is not None
        assert t.parent_fingerprint == v1.fingerprint
        assert transition_for(v1.fingerprint).parent_fingerprint == (
            vdb.version(0).fingerprint
        )

    def test_peek_does_not_distort_cache_stats(self):
        cache = global_cache()
        cache.put(("probe-key",), ("value",))
        stats = cache.stats()
        assert cache.peek(("probe-key",)) == ("value",)
        assert cache.peek(("missing-key",)) is None
        after = cache.stats()
        assert after["hits"] == stats["hits"]
        assert after["misses"] == stats["misses"]


# ------------------------------------------------------------- service layer


class TestServiceDeltas:
    @pytest.fixture()
    def service(self):
        svc = QueryService(workers=2)
        svc.register_database(
            "main", StringDatabase("01", {"R": {"01", "0110"}, "S": {"0"}})
        )
        yield svc
        svc.close()

    def test_insert_delete_roundtrip(self, service):
        d = Dispatcher(service)
        resp, _ = d.handle(
            {"op": "insert", "db": "main", "relation": "R", "rows": [["110"]]}
        )
        assert resp["ok"] and resp["version"] == 1
        run, _ = d.handle(
            {"op": "run", "query": "R(x) & last(x, '0')", "db": "main"}
        )
        assert sorted(run["rows"]) == [["0110"], ["110"]]
        resp, _ = d.handle(
            {"op": "delete", "db": "main", "relation": "R", "rows": ["0110"]}
        )
        assert resp["ok"] and resp["version"] == 2
        run, _ = d.handle(
            {"op": "run", "query": "R(x) & last(x, '0')", "db": "main"}
        )
        assert run["rows"] == [["110"]]

    def test_db_versions_and_stats(self, service):
        d = Dispatcher(service)
        d.handle({"op": "insert", "db": "main", "relation": "S", "rows": ["10"]})
        resp, _ = d.handle({"op": "db_versions", "name": "main"})
        assert [v["version"] for v in resp["versions"]] == [0, 1]
        stats = service.stats()
        assert stats["versions"]["main"]["head"] == 1
        assert stats["versions"]["main"]["retained"] == 2

    def test_unregister_db(self, service):
        d = Dispatcher(service)
        resp, _ = d.handle({"op": "unregister_db", "name": "main"})
        assert resp["ok"] and resp["removed"]
        resp, _ = d.handle({"op": "unregister_db", "name": "main"})
        assert resp["ok"] and not resp["removed"]
        run, _ = d.handle({"op": "run", "query": "R(x)", "db": "main"})
        assert not run["ok"] and run["error"]["code"] == "invalid"

    def test_plan_reused_across_adom_stable_delta(self, service):
        d = Dispatcher(service)
        query = "R(x) & last(x, '0')"
        # First delta wraps the entry in the MVCC store; the run after it
        # caches the plan under the epoch key.
        d.handle({"op": "insert", "db": "main", "relation": "S", "rows": ["01"]})
        d.handle({"op": "run", "query": query, "db": "main"})
        # "0110" is already active (it is in R): adom and schema unchanged,
        # so the prepared plan survives the delta without re-planning.
        d.handle(
            {"op": "insert", "db": "main", "relation": "S", "rows": ["0110"]}
        )
        before = METRICS.get("delta.replans_avoided")
        d.handle({"op": "run", "query": query, "db": "main"})
        assert METRICS.get("delta.replans_avoided") == before + 1

    def test_pinned_snapshot_unaffected_by_delta(self, service):
        entry_db = service._entry("main").database
        service.insert_rows("main", "R", ["111"])
        # The pre-delta snapshot still answers identically (MVCC reads).
        assert entry_db.relation("R") == {("01",), ("0110",)}
        assert service._entry("main").database.relation("R") == {
            ("01",), ("0110",), ("111",)
        }
