"""Tests for the safety analyses (paper Section 6 and its Section 7 heirs)."""

import pytest

from repro.database import Database, random_database
from repro.logic import parse_formula
from repro.logic.dsl import el, eq, last, len_le, prefix, rel, sprefix, true
from repro.logic.formulas import TrueF
from repro.logic.terms import Var
from repro.safety import (
    ConjunctiveQuery,
    analyze_state_safety,
    cq_is_safe,
    enumerate_safe_queries,
    finiteness_formula,
    is_safe_on,
    range_restrict,
    union_is_safe,
)
from repro.eval.automata_engine import AutomataEngine
from repro.strings import BINARY
from repro.structures import S, S_left, S_len, S_reg


def db(**relations):
    return Database(BINARY, relations)


S_BIN = S(BINARY)
S_LEN = S_len(BINARY)


class TestStateSafety:
    """Proposition 7: state-safety decidable for RC(S) and RC(S_len)."""

    def test_safe_queries(self):
        d = db(R={"01", "0110"})
        assert is_safe_on(parse_formula("R(x)"), S_BIN, d)
        assert is_safe_on(parse_formula("exists y: R(y) & x <<= y"), S_BIN, d)
        assert is_safe_on(parse_formula("R(x) & last(x, '1')"), S_BIN, d)

    def test_unsafe_queries(self):
        d = db(R={"01"})
        assert not is_safe_on(parse_formula("last(x, '0')"), S_BIN, d)
        assert not is_safe_on(parse_formula("!R(x)"), S_BIN, d)
        assert not is_safe_on(
            parse_formula("exists y: R(y) & y <<= x"), S_BIN, d
        )

    def test_safety_depends_on_database(self):
        # exists y: R(y) & el(x, y): safe on every finite DB, but output
        # grows with the longest string.
        q = parse_formula("exists y: R(y) & el(x, y)")
        report = analyze_state_safety(q, S_LEN, db(R={"00"}))
        assert report.safe
        assert report.output_size == 4  # strings of length 2
        report2 = analyze_state_safety(q, S_LEN, db(R={"0000"}))
        assert report2.output_size == 16

    def test_report_gives_output(self):
        q = parse_formula("R(x) & last(x, '0')")
        report = analyze_state_safety(q, S_BIN, db(R={"10", "11"}))
        assert report.safe
        assert report.result.as_set() == {("10",)}

    def test_unsafe_output_still_inspectable(self):
        q = parse_formula("last(x, '0')")
        report = analyze_state_safety(q, S_BIN, db(R={"1"}))
        assert not report.safe
        assert report.output_size is None
        assert report.result.contains(("10",))


class TestRangeRestriction:
    """Theorems 3 and 7: (gamma, phi) coincides with safe phi."""

    SAFE_QUERIES = [
        (S, "R(x) & last(x, '1')"),
        (S, "exists adom y: x <<= y"),
        (S, "exists adom y: ext1(y, x)"),  # one-symbol extensions of adom
        (S_reg, "R(x) & matches(x, '0(0|1)*')"),
        (S_left, "exists adom y: R(y) & eq(add_first(y, '1'), x)"),
        (S_len, "exists adom y: el(x, y)"),
    ]

    @pytest.mark.parametrize("factory,text", SAFE_QUERIES)
    def test_restricted_equals_original_when_safe(self, factory, text):
        structure = factory(BINARY)
        formula = parse_formula(text)
        rr = range_restrict(formula, structure)
        for seed in (0, 1):
            database = random_database(
                BINARY, {"R": 1}, tuples_per_relation=3, max_len=3, seed=seed
            )
            assert rr.agrees_with_original_on(database), (text, seed)

    def test_restricted_output_finite_even_for_unsafe(self):
        rr = range_restrict(parse_formula("last(x, '0')"), S_BIN, slack=1)
        out = rr.evaluate(db(R={"01"}))
        assert out  # nonempty
        assert all(s.endswith("0") for (s,) in out)

    def test_restricted_semantics_definition(self):
        # Q(D) = gamma(adom) intersect phi(D): check against direct filter.
        formula = parse_formula("exists adom y: x <<= y")
        rr = range_restrict(formula, S_BIN, slack=0)
        d = db(R={"011"})
        assert rr.evaluate(d) == {("",), ("0",), ("01",), ("011",)}


class TestFinitenessFormula:
    """Finiteness definable with parameters in S_len (Theorem 5 ingredient)."""

    def test_finite_section(self):
        # psi(z, y): z <<= y -- finitely many z per y.
        psi = prefix(Var("z"), Var("y"))
        fin = finiteness_formula(psi, ["z"])
        engine = AutomataEngine(S_LEN, db(R=set()))
        # For every y the set is finite: forall y: fin.
        from repro.logic.formulas import Forall, QuantKind

        assert engine.decide(Forall("y", fin, QuantKind.NATURAL), check_signature=False)

    def test_infinite_section(self):
        # psi(z, y): y <<= z -- infinitely many z per y.
        psi = prefix(Var("y"), Var("z"))
        fin = finiteness_formula(psi, ["z"])
        from repro.logic.formulas import Exists, QuantKind

        engine = AutomataEngine(S_LEN, db(R=set()))
        assert not engine.decide(Exists("y", fin, QuantKind.NATURAL), check_signature=False)

    def test_parameter_dependence(self):
        # psi(z, y): z <<= y and last(z, '1'); finite for every y, and
        # the fin formula must hold for y = '11' specifically.
        psi = prefix(Var("z"), Var("y")) & last(Var("z"), "1")
        fin = finiteness_formula(psi, ["z"])
        engine = AutomataEngine(S_LEN, db(R=set()))
        result = engine.run(fin, check_signature=False)
        assert result.contains(("11",))


class TestCQSafety:
    """Corollary 6: safety of conjunctive queries is decidable."""

    def test_anchored_head_safe(self):
        # Q(x) :- R(x): safe.
        cq = ConjunctiveQuery(("x",), (rel("R", "x"),), TrueF())
        assert cq_is_safe(cq, S_BIN)

    def test_prefix_of_anchored_safe(self):
        # Q(x) :- R(y), x <<= y: safe (finitely many prefixes).
        cq = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), prefix(Var("x"), Var("y")), ("y",)
        )
        assert cq_is_safe(cq, S_BIN)

    def test_extension_of_anchored_unsafe(self):
        # Q(x) :- R(y), y <<= x: unsafe.
        cq = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), prefix(Var("y"), Var("x")), ("y",)
        )
        assert not cq_is_safe(cq, S_BIN)

    def test_unconstrained_head_unsafe(self):
        # Q(x, z) :- R(x): z free-floating.
        cq = ConjunctiveQuery(("x", "z"), (rel("R", "x"),), TrueF())
        assert not cq_is_safe(cq, S_BIN)

    def test_el_bounded_safe(self):
        # Q(x) :- R(y), el(x, y): safe in S_len.
        cq = ConjunctiveQuery(("x",), (rel("R", "y"),), el(Var("x"), Var("y")), ("y",))
        assert cq_is_safe(cq, S_LEN)

    def test_len_le_bounded_safe(self):
        cq = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), len_le(Var("x"), Var("y")), ("y",)
        )
        assert cq_is_safe(cq, S_LEN)

    def test_last_only_unsafe(self):
        # Q(x) :- R(y), last(x, '0'): unbounded.
        cq = ConjunctiveQuery(("x",), (rel("R", "y"),), last(Var("x"), "0"), ("y",))
        assert not cq_is_safe(cq, S_BIN)

    def test_boolean_cq_no_head_safe(self):
        cq = ConjunctiveQuery((), (rel("R", "x"),), TrueF())
        assert cq_is_safe(cq, S_BIN)

    def test_union_safety(self):
        safe = ConjunctiveQuery(("x",), (rel("R", "x"),), TrueF())
        unsafe = ConjunctiveQuery(("x",), (rel("R", "y"),), TrueF(), ("y",))
        assert union_is_safe([safe, safe], S_BIN)
        assert not union_is_safe([safe, unsafe], S_BIN)

    def test_cq_evaluate(self):
        cq = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), sprefix(Var("x"), Var("y")), ("y",)
        )
        result = cq.evaluate(S_BIN, db(R={"01"}))
        assert result.as_set() == {("",), ("0",)}

    def test_safe_cq_is_actually_safe_on_random_dbs(self):
        cq = ConjunctiveQuery(
            ("x",), (rel("R", "y"),), prefix(Var("x"), Var("y")), ("y",)
        )
        assert cq_is_safe(cq, S_BIN)
        for seed in range(3):
            d = random_database(BINARY, {"R": 1}, 3, max_len=4, seed=seed)
            assert cq.evaluate(S_BIN, d).is_finite()


class TestEffectiveSyntax:
    """Corollary 5/9: an r.e. family of safe queries."""

    def test_enumerated_queries_are_safe(self):
        schema = db(R={"0"}, E={("0", "1")}).schema
        queries = list(enumerate_safe_queries(S_BIN, schema, limit=12))
        assert len(queries) == 12
        d = db(R={"0", "01"}, E={("0", "01"), ("01", "1")})
        for q in queries:
            out = q.evaluate(d)  # finite by construction (no exception)
            assert isinstance(out, frozenset)

    def test_enumeration_covers_multiple_shapes(self):
        schema = db(R={"0"}).schema
        queries = list(enumerate_safe_queries(S_BIN, schema, limit=20, max_slack=1))
        formulas = {str(q.formula) for q in queries}
        assert len(formulas) >= 5  # several distinct formulas, not just slacks

    def test_s_len_enumeration_includes_el(self):
        schema = db(R={"0"}).schema
        queries = list(enumerate_safe_queries(S_LEN, schema, limit=40))
        assert any("el(" in str(q.formula) for q in queries)
