"""The one-symbol alphabet special cases the paper remarks on.

* Section 3: over a one-symbol alphabet, ``(Sigma*, .)`` is essentially
  ``(N, +)`` — decidable, with effective syntax for safe queries;
* Section 5.2: over one symbol, equal length is simply equality, so
  S_len adds nothing to S.
"""

import pytest

from repro.database import Database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.strings import Alphabet
from repro.structures import S, S_len
from repro.theory import decide

UNARY = Alphabet("a")


class TestUnaryAlphabet:
    def test_el_is_equality(self):
        """Section 5.2's parenthetical, verified as a theory sentence."""
        assert decide("forall x: forall y: el(x, y) <-> eq(x, y)", UNARY, "S_len")

    def test_el_adds_no_power_on_a_database(self):
        db = Database(UNARY, {"R": {("a",), ("aaa",)}})
        q_el = parse_formula("R(x) & exists adom y: R(y) & el(x, y) & !eq(x, y)")
        q_eq = parse_formula("R(x) & exists adom y: R(y) & eq(x, y) & !eq(x, y)")
        engine = AutomataEngine(S_len(UNARY), db)
        assert engine.run(q_el).as_set() == engine.run(q_eq).as_set() == frozenset()

    def test_prefix_is_total_order(self):
        """Over one symbol the prefix order is the (total) length order."""
        assert decide("forall x: forall y: prefix(x, y) | prefix(y, x)", UNARY, "S")

    def test_unary_strings_behave_like_numbers(self):
        # "Addition by one" (ext1) is a total injective function: N's successor.
        assert decide("forall x: exists y: ext1(x, y)", UNARY, "S")
        assert decide(
            "forall x: forall y: forall z: (ext1(x, y) & ext1(x, z)) -> eq(y, z)",
            UNARY,
            "S",
        )
        assert decide("!exists x: ext1(x, eps)", UNARY, "S")

    def test_queries_run_normally(self):
        db = Database(UNARY, {"R": {("aa",), ("aaaa",)}})
        q = parse_formula("exists adom y: R(y) & x <<= y")
        result = AutomataEngine(S(UNARY), db).run(q)
        assert result.as_set() == {("",), ("a",), ("aa",), ("aaa",), ("aaaa",)}

    def test_width_one_encoding_rejected(self):
        db = Database(UNARY, {"R": {("a",), ("aa",)}})
        with pytest.raises(ValueError):
            db.width_one_encoding()

    def test_unary_width_is_chain_length(self):
        # All unary strings are prefix-comparable: width = |adom|.
        db = Database(UNARY, {"R": {("a",), ("aa",), ("aaaa",)}})
        assert db.width() == 3

    def test_star_freeness_over_unary(self):
        # (aa)* over a unary alphabet is still not star-free.
        from repro.automata import compile_regex, is_star_free

        assert not is_star_free(compile_regex("(aa)*", UNARY))
        assert is_star_free(compile_regex("aa*", UNARY))
