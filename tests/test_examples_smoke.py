"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; this keeps them from rotting.
The 3-colorability example is exercised with its smallest case elsewhere
(tests/test_mso.py) and skipped here for suite speed.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "faculty_directory",
    "safety_analysis",
    "string_transformations",
    "problematic_concatenation",
    "section8_extension",
]


def _load_module(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec and spec.loader
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = _load_module(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_examples_directory_complete():
    scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts >= set(FAST_EXAMPLES) | {"three_colorability"}
