"""Tests for the automata evaluation engine (exact natural semantics)."""

import pytest

from repro.database import Database
from repro.errors import EvaluationError, SignatureError
from repro.eval import AutomataEngine, evaluate
from repro.logic import parse_formula
from repro.logic.dsl import (
    add_first,
    add_last,
    el,
    eq,
    exists,
    exists_adom,
    forall,
    forall_adom,
    last,
    lit,
    matches,
    not_,
    prefix,
    psuffix,
    rel,
    sprefix,
)
from repro.strings import BINARY
from repro.structures import S, S_left, S_len, S_reg


def db(**relations):
    return Database(BINARY, relations)


class TestSentences:
    def test_paper_section2_ends_with_10(self):
        # exists x: R(x) & L_0(x) & exists y: y < x & L_1(y)
        q = parse_formula(
            "exists x: R(x) & last(x, '0') & exists y: ext1(y, x) & last(y, '1')"
        )
        engine = AutomataEngine(S(BINARY), db(R={"0110", "001"}))
        assert engine.decide(q)
        engine2 = AutomataEngine(S(BINARY), db(R={"011", "001"}))
        assert not engine2.decide(engine2.structure.check_formula(q))

    def test_natural_quantifier_exact(self):
        # exists x: last(x, '0')  -- true in Sigma* regardless of the DB.
        q = parse_formula("exists x: last(x, '0')")
        assert AutomataEngine(S(BINARY), db(R=set())).decide(q)

    def test_forall_natural(self):
        # forall x: prefix(eps, x) -- universally true.
        q = parse_formula("forall x: prefix(eps, x)")
        assert AutomataEngine(S(BINARY), db(R=set())).decide(q)
        # forall x: last(x, '0') -- false (epsilon, strings ending in 1).
        q2 = parse_formula("forall x: last(x, '0')")
        assert not AutomataEngine(S(BINARY), db(R=set())).decide(q2)

    def test_adom_quantifier(self):
        q = parse_formula("exists adom x: last(x, '1')")
        assert AutomataEngine(S(BINARY), db(R={"01", "00"})).decide(q)
        assert not AutomataEngine(S(BINARY), db(R={"00", "10"})).decide(q)

    def test_adom_quantifier_empty_db(self):
        q = parse_formula("exists adom x: prefix(eps, x)")
        assert not AutomataEngine(S(BINARY), db(R=set())).decide(q)
        q2 = parse_formula("forall adom x: false")
        assert AutomataEngine(S(BINARY), db(R=set())).decide(q2)

    def test_not_a_sentence(self):
        with pytest.raises(EvaluationError):
            AutomataEngine(S(BINARY), db(R={"0"})).decide(parse_formula("R(x)"))

    def test_signature_enforced(self):
        with pytest.raises(SignatureError):
            AutomataEngine(S(BINARY), db(R={"0"})).decide(
                parse_formula("exists x: el(x, x)")
            )


class TestOpenQueries:
    def test_select_from_relation(self):
        q = parse_formula("R(x) & last(x, '0')")
        result = evaluate(q, S(BINARY), db(R={"00", "01", "10"}))
        assert result.as_set() == {("00",), ("10",)}
        assert result.variables == ("x",)

    def test_join(self):
        q = parse_formula("R(x) & E(x, y)")
        result = evaluate(
            q, S(BINARY), db(R={"0", "1"}, E={("0", "00"), ("1", "01"), ("11", "0")})
        )
        assert result.as_set() == {("0", "00"), ("1", "01")}
        assert result.variables == ("x", "y")

    def test_projection_via_exists(self):
        q = parse_formula("exists y: E(x, y)")
        result = evaluate(q, S(BINARY), db(E={("0", "00"), ("0", "01"), ("1", "11")}))
        assert result.as_set() == {("0",), ("1",)}

    def test_unsafe_query_detected(self):
        # All strings with last symbol 0: infinite.
        q = parse_formula("last(x, '0')")
        result = evaluate(q, S(BINARY), db(R={"0"}))
        assert not result.is_finite()
        sample = set(result.tuples(limit=5))
        assert all(s.endswith("0") for (s,) in sample)

    def test_unsafe_raises_on_materialize(self):
        from repro.errors import UnsafeQueryError

        q = parse_formula("last(x, '0')")
        result = evaluate(q, S(BINARY), db(R={"0"}))
        with pytest.raises(UnsafeQueryError):
            result.as_set()
        with pytest.raises(UnsafeQueryError):
            result.count()

    def test_prefixes_of_adom(self):
        # Safe query with output beyond adom: all prefixes of R-strings.
        q = parse_formula("exists y: R(y) & x <<= y")
        result = evaluate(q, S(BINARY), db(R={"011"}))
        assert result.as_set() == {("",), ("0",), ("01",), ("011",)}

    def test_repeated_variable_atom(self):
        q = parse_formula("E(x, x)")
        result = evaluate(q, S(BINARY), db(E={("0", "0"), ("0", "1"), ("11", "11")}))
        assert result.as_set() == {("0",), ("11",)}

    def test_constant_in_relation_atom(self):
        q = parse_formula("E('0', y)")
        result = evaluate(q, S(BINARY), db(E={("0", "00"), ("1", "01")}))
        assert result.as_set() == {("00",)}

    def test_negation_within_adom(self):
        # Strings in R that are not in S.
        q = parse_formula("R(x) & !S(x)")
        result = evaluate(q, S(BINARY), db(R={"0", "1", "01"}, S={"1"}))
        assert result.as_set() == {("0",), ("01",)}


class TestTermsAndFunctions:
    def test_add_last_term(self):
        # y = x . '1' for x in R.
        q = eq(add_last("x", "1"), "y") & rel("R", "x")
        result = evaluate(q, S(BINARY), db(R={"0", "11"}))
        assert result.as_set() == {("0", "01"), ("11", "111")}

    def test_add_first_term_needs_s_left(self):
        q = eq(add_first("x", "1"), "y") & rel("R", "x")
        with pytest.raises(SignatureError):
            evaluate(q, S(BINARY), db(R={"0"}))
        result = evaluate(q, S_left(BINARY), db(R={"0", "01"}))
        assert result.as_set() == {("0", "10"), ("01", "101")}

    def test_select_a_dot_x_from_r(self):
        # The paper's motivating query SELECT a.x FROM R (Section 1):
        # inexpressible in RC(S), a one-liner in RC(S_left).
        q = exists("x", rel("R", "x") & eq(add_first("x", "1"), "y"))
        result = evaluate(q, S_left(BINARY), db(R={"0", "00"}))
        assert result.as_set() == {("10",), ("100",)}

    def test_nested_terms(self):
        q = eq(add_last(add_last("x", "0"), "1"), "y") & rel("R", "x")
        result = evaluate(q, S(BINARY), db(R={"1"}))
        assert result.as_set() == {("1", "101")}

    def test_trim_first_term(self):
        q = eq(lit("01"), "x") & eq(add_last("x", "1"), "x2") | rel("R", "x")
        # Simpler: y = trim_first(x, '0') over R.
        from repro.logic.dsl import trim_first

        q = rel("R", "x") & eq(trim_first("x", "0"), "y")
        result = evaluate(q, S_left(BINARY), db(R={"01", "11", ""}))
        assert result.as_set() == {("01", "1"), ("11", ""), ("", "")}


class TestPatterns:
    def test_matches_star_free_in_s(self):
        q = rel("R", "x") & matches("x", "0(0|1)*1")
        result = evaluate(q, S(BINARY), db(R={"01", "001", "10", "0"}))
        assert result.as_set() == {("01",), ("001",)}

    def test_matches_regular_in_s_reg(self):
        q = rel("R", "x") & matches("x", "(00)*")
        result = evaluate(q, S_reg(BINARY), db(R={"", "00", "000", "0000", "01"}))
        assert result.as_set() == {("",), ("00",), ("0000",)}

    def test_psuffix(self):
        # pairs (x, y) in E with y = x followed by 1s only.
        q = rel("E", "x", "y") & psuffix("x", "y", "1*")
        result = evaluate(
            q, S_reg(BINARY), db(E={("0", "011"), ("0", "010"), ("1", "1")})
        )
        assert result.as_set() == {("0", "011"), ("1", "1")}


class TestSLen:
    def test_el_query(self):
        # Pairs from R x R of equal length.
        q = rel("R", "x") & rel("R", "y") & el("x", "y") & not_(eq("x", "y"))
        result = evaluate(q, S_len(BINARY), db(R={"00", "01", "1"}))
        assert result.as_set() == {("00", "01"), ("01", "00")}

    def test_length_restricted_quantifier(self):
        # exists len y: el(y, x) & last(y, '1'): some equal-length string
        # ending in 1 exists (true whenever |x| >= 1).
        q = parse_formula("R(x) & exists len y: el(y, x) & last(y, '1')")
        result = evaluate(q, S_len(BINARY), db(R={"", "0", "00"}))
        assert result.as_set() == {("0",), ("00",)}

    def test_el_infinite_output(self):
        q = parse_formula("el(x, x)")  # all strings
        result = evaluate(q, S_len(BINARY), db(R={"0"}))
        assert not result.is_finite()


class TestPrefixRestrictedSemantics:
    def test_prefix_kind_bounds_witnesses(self):
        # exists prefix y: y <<= x ... witnesses come from prefixes of
        # adom and of x; with slack 0 domain = prefix closure.
        q = parse_formula("exists prefix y: R(y) & y << x")
        result = evaluate(q, S(BINARY), db(R={"0"}))
        # x ranges over everything extending "0": infinite, but engine
        # still computes the relation exactly.
        assert not result.is_finite()
        assert result.contains(("01",))
        assert not result.contains(("1",))

    def test_prefix_kind_with_slack(self):
        # With slack 1 the PREFIX domain includes one-symbol extensions.
        q = parse_formula("exists prefix y: last(y, '1') & x <<= y & !eq(x, y)")
        engine0 = AutomataEngine(S(BINARY), db(R={"00"}), slack=0)
        engine1 = AutomataEngine(S(BINARY), db(R={"00"}), slack=1)
        # With slack 0, y must be a prefix of adom or x..., "001" not
        # available as witness for x = "00".
        assert not engine0.run(q).contains(("00",))
        assert engine1.run(q).contains(("00",))
