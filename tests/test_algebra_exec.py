"""The set-at-a-time algebra engine: fusion, physical joins, memo, planner.

Covers the execution layer added on top of the paper's RA(M) plans:
``optimize_for_execution``'s hash-join fusion and pushdowns
(:mod:`repro.algebra.optimize`), the physical executor's hash/semi/anti
joins and subplan memoization (:mod:`repro.algebra.exec`), the planner's
third engine (:mod:`repro.engine.planner`), and the EXPLAIN surface.
"""

import pytest

from repro.algebra.compile import CompileError, compile_query
from repro.algebra.exec import AlgebraExecutor, run_algebra
from repro.algebra.optimize import optimize, optimize_for_execution
from repro.algebra.plan import BaseRel, Join, Product, Project, Select, col
from repro.algebra.to_calculus import to_calculus
from repro.core import Query
from repro.database import Database, random_database
from repro.engine.deadline import deadline_scope
from repro.engine.metrics import METRICS
from repro.engine.planner import Planner, algebra_eligible
from repro.errors import EvaluationTimeout
from repro.logic.dsl import and_, eq, exists, exists_prefix, prefix, rel
from repro.logic.parser import parse_formula
from repro.logic.transform import flatten_terms
from repro.strings import BINARY
from repro.structures.catalog import S as S_factory

S_BIN = S_factory(BINARY)


def db2() -> Database:
    """Two binary relations with a joinable middle column."""
    return Database(
        BINARY,
        {
            "R": {("0", "01"), ("1", "11"), ("01", "0")},
            "T": {("01", "1"), ("11", "0")},
        },
    )


def compiled_join_plan(db):
    formula = flatten_terms(parse_formula("R(x,y) & T(y,z)"))
    return compile_query(formula, S_BIN, db.schema)


class TestJoinFusion:
    def test_select_product_fuses_to_join(self):
        db = db2()
        plan = optimize_for_execution(compiled_join_plan(db).plan)
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Join)
        assert plan.child.pairs == ((1, 0),)
        assert plan.child.residual is None

    def test_fused_plan_evaluates_identically(self):
        db = db2()
        compiled = compiled_join_plan(db)
        naive = optimize(compiled.plan).evaluate(db, S_BIN)
        fused = optimize_for_execution(compiled.plan).evaluate(db, S_BIN)
        assert naive == fused

    def test_residual_condition_survives_fusion(self):
        # eq(c0,c2) is a join key; prefix(c1,c3) stays as the residual.
        raw = Select(
            Product(BaseRel("R", 2), BaseRel("T", 2)),
            and_(eq(col(0), col(2)), prefix(col(1), col(3))),
        )
        fused = optimize_for_execution(raw)
        assert isinstance(fused, Join)
        assert fused.pairs == ((0, 0),)
        assert fused.residual is not None
        db = db2()
        assert fused.evaluate(db, S_BIN) == raw.evaluate(db, S_BIN)

    def test_single_side_conjuncts_are_pushed(self):
        raw = Select(
            Product(BaseRel("R", 2), BaseRel("T", 2)),
            and_(eq(col(1), col(2)), prefix(col(0), col(1))),
        )
        fused = optimize_for_execution(raw)
        assert isinstance(fused, Join)
        # The left-only prefix conjunct moved below the join.
        assert isinstance(fused.left, Select)
        assert fused.residual is None
        db = db2()
        assert fused.evaluate(db, S_BIN) == raw.evaluate(db, S_BIN)

    def test_projection_prunes_dead_columns(self):
        raw = Project(
            Select(
                Product(BaseRel("R", 2), BaseRel("T", 2)),
                eq(col(1), col(2)),
            ),
            (0,),
        )
        fused = optimize_for_execution(raw)
        db = db2()
        assert fused.evaluate(db, S_BIN) == raw.evaluate(db, S_BIN)
        # Only column 0 of the left and the key columns survive below.
        assert isinstance(fused, Project)
        join = fused.child
        assert isinstance(join, Join)
        assert join.right.arity == 1  # T's dead z column was pruned

    def test_join_round_trips_through_calculus(self):
        fused = Join(BaseRel("R", 2), BaseRel("T", 2), ((1, 0),), None)
        translated = to_calculus(fused)
        result = Query(translated, structure=S_BIN).result(
            db2(), engine="automata"
        )
        assert result.as_set() == fused.evaluate(db2(), S_BIN)


class TestExecutor:
    def test_hash_join_stats(self):
        db = db2()
        plan = optimize_for_execution(compiled_join_plan(db).plan)
        rows, stats = AlgebraExecutor(S_BIN, db).run(plan)
        assert len(rows) == 2
        kinds = set()
        stack = [stats]
        while stack:
            node = stack.pop()
            kinds.add(node.kind)
            stack.extend(node.children)
        assert "HashJoin" in kinds

    def test_semi_join_for_exists_projection(self):
        db = Database(
            BINARY,
            {"R": {("0110",), ("001",), ("11",)}, "U": {("0",), ("01",)}},
        )
        formula = flatten_terms(
            parse_formula("R(x) & exists adom y: U(y) & y <<= x")
        )
        _cols, rows, stats = run_algebra(formula, S_BIN, db)
        assert rows == {("0110",), ("001",)}
        kinds = set()
        stack = [stats]
        while stack:
            node = stack.pop()
            kinds.add(node.kind)
            stack.extend(node.children)
        assert "SemiJoin" in kinds

    def test_anti_join_for_difference(self):
        db = db2()
        formula = flatten_terms(
            parse_formula("R(x,y) & !(exists adom z: T(y, z))")
        )
        cols, rows, stats = run_algebra(formula, S_BIN, db)
        assert cols == ("x", "y")
        assert rows == {("01", "0")}
        direct = Query(parse_formula("R(x,y) & !(exists adom z: T(y, z))"),
                       structure=S_BIN).result(db, engine="direct")
        assert rows == direct.as_set()

    def test_subplan_memoization_counts(self):
        db = Database(
            BINARY,
            {"R": {("0110",), ("001",)}, "U": {("0",), ("01",)}},
        )
        # Both conjuncts mention the same bound subplan shapes; run twice
        # on one executor — the second run is answered from the memo.
        formula = flatten_terms(
            parse_formula("R(x) & exists adom y: U(y) & y <<= x")
        )
        compiled = compile_query(formula, S_BIN, db.schema)
        plan = optimize_for_execution(compiled.plan)
        executor = AlgebraExecutor(S_BIN, db)
        before = METRICS.get("algebra.memo_hits")
        first, _ = executor.run(plan)
        mid = METRICS.get("algebra.memo_hits")
        second, stats = executor.run(plan)
        after = METRICS.get("algebra.memo_hits")
        assert first == second
        assert mid > before          # repeated gamma-bound subplans
        assert after > mid           # whole plan memoized across runs
        assert stats.memo_hit

    def test_metrics_counters_increment(self):
        db = db2()
        plan = optimize_for_execution(compiled_join_plan(db).plan)
        joins0 = METRICS.get("algebra.joins")
        probed0 = METRICS.get("algebra.rows_probed")
        AlgebraExecutor(S_BIN, db).run(plan)
        assert METRICS.get("algebra.joins") == joins0 + 1
        assert METRICS.get("algebra.rows_probed") > probed0

    def test_join_loops_respect_deadlines(self):
        n = 300
        db = Database(
            BINARY,
            {
                "R": {(format(i, "09b"), format(i + 1, "09b")) for i in range(n)},
                "T": {(format(i + 1, "09b"), format(i, "09b")) for i in range(n)},
            },
        )
        plan = optimize_for_execution(compiled_join_plan(db).plan)
        with pytest.raises(EvaluationTimeout):
            with deadline_scope(1e-9):
                AlgebraExecutor(S_BIN, db).run(plan)

    def test_streamed_select_product_respects_deadlines(self):
        # Satellite: the naive Select(Product) path streams pairs and
        # checkpoints, so a deadline interrupts it mid-product instead of
        # after a full cross-product materialization.
        raw = Select(
            Product(BaseRel("R", 2), BaseRel("T", 2)), eq(col(1), col(2))
        )
        n = 300
        db = Database(
            BINARY,
            {
                "R": {(format(i, "09b"), format(i + 1, "09b")) for i in range(n)},
                "T": {(format(i + 1, "09b"), format(i, "09b")) for i in range(n)},
            },
        )
        with pytest.raises(EvaluationTimeout):
            with deadline_scope(1e-9):
                raw.evaluate(db, S_BIN)


class TestPlannerIntegration:
    def test_algebra_eligibility(self):
        assert algebra_eligible(parse_formula("R(x,y) & T(y,z)"))
        assert algebra_eligible(
            parse_formula("R(x) & exists adom y: U(y) & y <<= x")
        )
        # PREFIX quantifier: outside the slack-independent regime.
        assert not algebra_eligible(
            and_(rel("R", "x"), exists_prefix("y", prefix("y", "x")))
        )
        # NATURAL quantifier over a database atom: not collapsed.
        assert not algebra_eligible(
            exists("y", and_(rel("R", "y"), rel("U", "y")))
        )
        # Constant in a relation atom flattens to a NATURAL quantifier.
        assert not algebra_eligible(parse_formula("R(x, '01')"))

    def test_large_join_auto_selects_algebra(self):
        db = random_database(BINARY, {"R": 2, "T": 2}, 300, max_len=4, seed=3)
        plan = Planner(S_BIN, db).plan(parse_formula("R(x,y) & T(y,z)"))
        assert plan.engine == "algebra"
        assert plan.algebra_cost < plan.direct_cost
        assert "hash joins" in plan.reason

    def test_small_query_still_goes_direct(self):
        db = Database(
            BINARY,
            {"R": {("0110",), ("001",), ("11",)}, "U": {("0",), ("01",)}},
        )
        plan = Planner(S_BIN, db).plan(
            parse_formula("R(x) & exists adom y: U(y) & y <<= x")
        )
        assert plan.engine == "direct"
        assert plan.algebra_cost != float("inf")  # costed, just not chosen

    def test_forced_algebra_rejects_uncollapsible(self):
        db = db2()
        with pytest.raises(CompileError):
            # Constant argument in a database atom flattens to a NATURAL
            # quantifier over R — not collapsed, so not compilable.
            Planner(S_BIN, db).plan(
                parse_formula("R(x, '01')"), force="algebra"
            )

    def test_forced_algebra_agrees_with_other_engines(self):
        db = db2()
        q = Query("R(x,y) & T(y,z)", structure=S_BIN)
        expected = q.result(db, engine="automata").as_set()
        assert q.result(db, engine="algebra").as_set() == expected
        assert q.result(db, engine="direct").as_set() == expected

    def test_planner_counter_for_algebra(self):
        db = random_database(BINARY, {"R": 2, "T": 2}, 300, max_len=4, seed=3)
        before = METRICS.get("planner.backend.algebra.chosen")
        Planner(S_BIN, db).plan(parse_formula("R(x,y) & T(y,z)"))
        assert METRICS.get("planner.backend.algebra.chosen") == before + 1


class TestExplainSurface:
    def test_explain_shows_hash_join_not_select_product(self):
        db = random_database(BINARY, {"R": 2, "T": 2}, 300, max_len=4, seed=3)
        report = Query("R(x,y) & T(y,z)", structure=S_BIN).explain(db)
        assert report.plan.engine == "algebra"
        tree = report.to_dict()["tree"]
        kinds, labels = set(), []

        def walk(node):
            kinds.add(node["kind"])
            labels.append(node["label"])
            for child in node["children"]:
                walk(child)

        walk(tree)
        assert "HashJoin" in kinds
        # No Select(Product(...)) anywhere: products render as "(l x r)".
        assert not any(" x " in label for label in labels), labels
        assert "algebra.joins" in report.counters

    def test_explain_result_cache_round_trip(self):
        db = db2()
        q = Query("R(x,y) & T(y,z)", structure=S_BIN)
        first = q.explain(db, engine="algebra")
        second = q.explain(db, engine="algebra")
        assert first.to_dict()["result"] == second.to_dict()["result"]
        # Second run is a whole-result cache hit: no joins executed.
        assert "algebra.joins" not in second.counters
