"""Property tests for the safety machinery on random queries.

Random *anchored* formulas are safe on every database; Theorem 3's
range-restricted version must agree with the exact output, and the
state-safety decision must say "safe".  Random unanchored ones get the
decision cross-checked against the exact engine's finiteness.
"""

from hypothesis import given, settings, strategies as st

from repro.database import Database
from repro.eval import AutomataEngine
from repro.logic.dsl import and_, exists_adom, last, not_, or_, prefix, rel, sprefix
from repro.logic.formulas import Formula
from repro.safety import analyze_state_safety, range_restrict
from repro.strings import BINARY
from repro.structures import S

short = st.text(alphabet="01", max_size=3)

databases = st.builds(
    lambda r, s: Database(BINARY, {"R": {(x,) for x in r}, "S": {(x,) for x in s}}),
    st.sets(short, min_size=1, max_size=4),
    st.sets(short, max_size=3),
)


def guards() -> st.SearchStrategy[Formula]:
    """Database-free conditions over x and an adom-bound y."""
    x = "x"
    y = "y"
    base = (
        st.builds(lambda a: last(x, a), st.sampled_from("01"))
        | st.just(prefix(x, y))
        | st.just(sprefix(x, y))
        | st.just(prefix(y, x))
    )
    return base | st.builds(lambda a, b: or_(a, b), base, base) | st.builds(not_, base)


def anchored_queries() -> st.SearchStrategy[Formula]:
    """phi(x) = exists adom y: R(y) and x <<= y and <guard>: safe always."""
    return guards().map(
        lambda g: exists_adom("y", and_(rel("R", "y"), prefix(x_var(), "y"), g))
    )


def x_var():
    return "x"


class TestRangeRestrictionProperty:
    @settings(max_examples=40, deadline=None)
    @given(formula=anchored_queries(), db=databases)
    def test_safe_queries_agree_with_range_restriction(self, formula, db):
        structure = S(BINARY)
        exact = AutomataEngine(structure, db).run(formula)
        assert exact.is_finite()  # prefixes of adom strings: finite
        rr = range_restrict(formula, structure, slack=1)
        assert rr.evaluate(db) == exact.as_set(), str(formula)

    @settings(max_examples=40, deadline=None)
    @given(guard=guards(), db=databases)
    def test_state_safety_matches_exact_finiteness(self, guard, db):
        structure = S(BINARY)
        # Maybe-unsafe query: guard alone over x, with y bound to adom.
        formula = exists_adom("y", and_(rel("R", "y"), guard))
        report = analyze_state_safety(formula, structure, db)
        assert report.safe == report.result.is_finite()
        # Decision must match brute-force sampling evidence: if we can
        # find > |bound| distinct outputs, it cannot be safe.
        sample = set(report.result.tuples(limit=50))
        if not report.safe:
            assert len(sample) == 50 or len(sample) > 0

    @settings(max_examples=25, deadline=None)
    @given(formula=anchored_queries(), db=databases)
    def test_range_restricted_is_subset_of_exact(self, formula, db):
        structure = S(BINARY)
        rr = range_restrict(formula, structure, slack=0)
        exact = AutomataEngine(structure, db).run(formula)
        for row in rr.evaluate(db):
            assert exact.contains(row)
