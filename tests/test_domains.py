"""Tests for the quantifier-domain machinery (repro.eval.domains).

The PREFIX/LENGTH domains and their automata forms must agree — they are
shared between the two engines, which is what makes the engines
semantically interchangeable on restricted formulas.
"""

from hypothesis import given, settings, strategies as st

from repro.eval.domains import (
    extension_set_relation,
    length_bound_set_relation,
    length_le_plus_relation,
    length_domain,
    near_prefix_relation,
    prefix_domain,
)
from repro.strings import BINARY, lcp, prefix_closure

short = st.text(alphabet="01", max_size=4)


class TestPrefixDomain:
    def test_slack_zero_is_prefix_closure(self):
        base = ["011", "10"]
        assert set(prefix_domain(BINARY, base, 0)) == set(prefix_closure(base))

    def test_slack_extends(self):
        got = set(prefix_domain(BINARY, ["0"], 1))
        assert got == {"", "0", "1", "00", "01"}

    def test_empty_base_still_has_epsilon(self):
        assert set(prefix_domain(BINARY, [], 0)) == {""}
        assert set(prefix_domain(BINARY, [], 1)) == {"", "0", "1"}

    @given(base=st.sets(short, max_size=4), slack=st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_no_duplicates(self, base, slack):
        out = list(prefix_domain(BINARY, base, slack))
        assert len(out) == len(set(out))

    @given(base=st.sets(short, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_matches_extension_set_relation(self, base):
        slack = 1
        enumerated = set(prefix_domain(BINARY, base, slack))
        relation = extension_set_relation(BINARY, sorted(base), slack)
        for s in BINARY.strings_up_to(5):
            assert relation.contains((s,)) == (s in enumerated), s


class TestLengthDomain:
    def test_enumeration(self):
        assert set(length_domain(BINARY, ["01"], 0)) == set(BINARY.strings_up_to(2))
        assert set(length_domain(BINARY, [], 1)) == {"", "0", "1"}

    def test_matches_relation(self):
        relation = length_bound_set_relation(BINARY, 3)
        for s in BINARY.strings_up_to(5):
            assert relation.contains((s,)) == (len(s) <= 3)


class TestNearPrefix:
    @given(x=short, y=short, slack=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_semantics(self, x, y, slack):
        relation = near_prefix_relation(BINARY, slack)
        expected = len(x) - len(lcp(x, y)) <= slack
        assert relation.contains((x, y)) == expected, (x, y, slack)

    def test_slack_zero_is_prefix(self):
        relation = near_prefix_relation(BINARY, 0)
        for x in BINARY.strings_up_to(3):
            for y in BINARY.strings_up_to(3):
                assert relation.contains((x, y)) == y.startswith(x)


class TestLengthLePlus:
    @given(x=short, y=short, slack=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_semantics(self, x, y, slack):
        relation = length_le_plus_relation(BINARY, slack)
        assert relation.contains((x, y)) == (len(x) <= len(y) + slack)
