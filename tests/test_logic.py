"""Tests for the FO logic layer: AST, DSL, parser, transformations."""

import pytest

from repro.errors import ArityError, ParseError
from repro.logic import (
    And,
    Atom,
    Exists,
    Forall,
    Not,
    Or,
    QuantKind,
    RelAtom,
    StrConst,
    Var,
    flatten_terms,
    has_natural_quantifier,
    is_active_domain_formula,
    parse_formula,
    restrict_quantifiers,
    to_nnf,
)
from repro.logic.dsl import (
    V,
    add_first,
    add_last,
    and_,
    el,
    eq,
    exists,
    exists_adom,
    exists_prefix,
    forall,
    iff,
    implies,
    last,
    lcp,
    lit,
    matches,
    not_,
    or_,
    prefix,
    psuffix,
    rel,
    sprefix,
    trim_first,
)
from repro.logic.transform import GRAPH_PREDS


class TestTerms:
    def test_evaluate(self):
        t = add_last(add_first("x", "1"), "0")  # (1.x).0
        assert t.evaluate({"x": "01"}) == "1010"

    def test_trim_first_semantics(self):
        t = trim_first("x", "0")
        assert t.evaluate({"x": "01"}) == "1"
        assert t.evaluate({"x": "11"}) == ""
        assert t.evaluate({"x": ""}) == ""

    def test_lcp_term(self):
        t = lcp("x", lit("0101"))
        assert t.evaluate({"x": "0110"}) == "01"

    def test_variables(self):
        t = lcp(add_last("x", "0"), "y")
        assert t.variables() == {"x", "y"}

    def test_substitute(self):
        t = add_last("x", "0").substitute({"x": lit("11")})
        assert t.evaluate({}) == "110"

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            V("x").evaluate({})


class TestFormulas:
    def test_free_variables(self):
        f = exists("y", rel("R", "x", "y") & prefix("y", "z"))
        assert f.free_variables() == {"x", "z"}

    def test_relation_names(self):
        f = exists("y", rel("R", "y") | rel("S", "y", "x"))
        assert f.relation_names() == {"R", "S"}

    def test_quantifier_rank(self):
        f = exists("x", forall("y", exists("z", eq("x", "z"))))
        assert f.quantifier_rank() == 3
        assert eq("x", "y").quantifier_rank() == 0

    def test_atom_arity_checked(self):
        from repro.logic import check_atom

        with pytest.raises(ArityError):
            check_atom(Atom("prefix", (Var("x"),)))
        with pytest.raises(ArityError):
            check_atom(Atom("nosuch", (Var("x"),)))
        with pytest.raises(ArityError):
            check_atom(Atom("last", (Var("x"),)))  # missing param

    def test_substitution_capture_avoidance(self):
        # (exists y: R(x, y))[x := y] must rename the bound y.
        f = exists("y", rel("R", "x", "y"))
        g = f.substitute({"x": Var("y")})
        assert isinstance(g, Exists)
        assert g.var != "y"
        assert g.free_variables() == {"y"}

    def test_operator_sugar(self):
        f = prefix("x", "y") & ~eq("x", "y")
        assert isinstance(f, And)
        assert isinstance(f.parts[1], Not)

    def test_str_roundtrips_through_parser(self):
        examples = [
            exists("x", rel("R", "x") & last("x", "0")),
            forall("x", implies(rel("R", "x"), matches("x", "0(0|1)*"))),
            exists_adom("y", el("x", "y")),
            exists_prefix("y", sprefix("y", "x")),
            psuffix("x", "y", "1*"),
            and_(eq("x", lit("01")), or_(prefix("x", "y"), not_(el("x", "y")))),
        ]
        for f in examples:
            again = parse_formula(str(f))
            assert str(again) == str(f)


class TestParser:
    def test_paper_section2_example(self):
        # "some string in R ends with 10"
        text = (
            "exists x: R(x) & last(x, '0') & "
            "exists y: (ext1(y, x) & last(y, '1'))"
        )
        f = parse_formula(text)
        assert f.free_variables() == frozenset()
        assert f.relation_names() == {"R"}

    def test_comparisons(self):
        f = parse_formula("x <<= y & y << z & x = w & x != v")
        assert isinstance(f, And)
        preds = [p.pred if isinstance(p, Atom) else "not" for p in f.parts]
        assert preds == ["prefix", "sprefix", "eq", "not"]

    def test_quantifier_kinds(self):
        f = parse_formula("exists adom x: R(x)")
        assert isinstance(f, Exists) and f.kind is QuantKind.ADOM
        f = parse_formula("exists prefix x: x <<= y")
        assert isinstance(f, Exists) and f.kind is QuantKind.PREFIX
        f = parse_formula("forall len x: el(x, y)")
        assert isinstance(f, Forall) and f.kind is QuantKind.LENGTH

    def test_multi_var_quantifier(self):
        f = parse_formula("exists x, y: R(x, y)")
        assert isinstance(f, Exists) and isinstance(f.body, Exists)

    def test_terms_in_atoms(self):
        f = parse_formula("eq(add_last(x, '0'), y)")
        assert isinstance(f, Atom)
        f2 = parse_formula("prefix(lcp(x, y), trim_first(z, '1'))")
        assert isinstance(f2, Atom)

    def test_string_literals(self):
        f = parse_formula("x = '010'")
        assert isinstance(f, Atom)
        assert isinstance(f.args[1], StrConst)
        assert f.args[1].value == "010"

    def test_eps(self):
        f = parse_formula("x = eps")
        assert f.args[1].value == ""

    def test_implication_right_assoc(self):
        f = parse_formula("R(x) -> S(x) -> T(x)")
        # a -> (b -> c): outer Or(Not a, Or(Not b, c))
        assert isinstance(f, Or)
        assert isinstance(f.parts[1], Or)

    def test_iff(self):
        f = parse_formula("R(x) <-> S(x)")
        assert isinstance(f, And)

    def test_true_false(self):
        assert parse_formula("true").__class__.__name__ == "TrueF"
        assert parse_formula("false").__class__.__name__ == "FalseF"

    def test_relation_atoms(self):
        f = parse_formula("Employee(x, y)")
        assert isinstance(f, RelAtom)
        assert f.name == "Employee"

    def test_matches_and_psuffix(self):
        f = parse_formula('matches(x, "0(0|1)*1")')
        assert isinstance(f, Atom) and f.param == "0(0|1)*1"
        f2 = parse_formula('psuffix(x, y, "1*")')
        assert isinstance(f2, Atom) and f2.param == "1*"

    def test_errors(self):
        for bad in [
            "exists x R(x)",  # missing colon
            "R(x",  # unclosed paren
            "x <<",  # dangling op
            "last(x)",  # missing param
            "",  # empty
            "R(x)) ",  # trailing
            "matches(x)",  # missing param
        ]:
            with pytest.raises(ParseError):
                parse_formula(bad)

    def test_precedence(self):
        f = parse_formula("R(x) | S(x) & T(x)")
        assert isinstance(f, Or)
        assert isinstance(f.parts[1], And)
        f2 = parse_formula("!R(x) & S(x)")
        assert isinstance(f2, And)
        assert isinstance(f2.parts[0], Not)


class TestTransforms:
    def test_nnf_pushes_negation(self):
        f = not_(exists("x", rel("R", "x") & ~rel("S", "x")))
        g = to_nnf(f)
        assert isinstance(g, Forall)
        assert isinstance(g.body, Or)
        # No Not above non-atoms anywhere.
        for sub in g.walk():
            if isinstance(sub, Not):
                assert isinstance(sub.inner, (Atom, RelAtom))

    def test_nnf_preserves_kinds(self):
        f = not_(exists_adom("x", rel("R", "x")))
        g = to_nnf(f)
        assert isinstance(g, Forall) and g.kind is QuantKind.ADOM

    def test_nnf_iff(self):
        f = to_nnf(not_(iff(rel("R", "x"), rel("S", "x"))))
        for sub in f.walk():
            if isinstance(sub, Not):
                assert isinstance(sub.inner, (Atom, RelAtom))

    def test_flatten_terms_produces_plain_args(self):
        f = eq(add_last(add_first("x", "1"), "0"), lit("10"))
        g = flatten_terms(f)
        for atom in g.atoms():
            for arg in atom.args:
                assert isinstance(arg, Var)
        # Graph atoms introduced.
        preds = {a.pred for a in g.atoms() if isinstance(a, Atom)}
        assert "graph_add_last" in preds
        assert "graph_add_first" in preds
        assert "graph_const" in preds
        assert preds & GRAPH_PREDS

    def test_flatten_keeps_plain_formulas_intact(self):
        f = exists("x", rel("R", "x") & prefix("x", "y"))
        assert flatten_terms(f) == f

    def test_flatten_semantics_preserved_on_ground_example(self):
        # Checked via direct evaluation in eval tests; here just free vars.
        f = eq(add_last("x", "0"), "y")
        g = flatten_terms(f)
        assert g.free_variables() == {"x", "y"}

    def test_restrict_quantifiers(self):
        f = exists("x", forall("y", exists_adom("z", rel("R", "x", "y", "z"))))
        g = restrict_quantifiers(f, QuantKind.PREFIX)
        kinds = [
            sub.kind for sub in g.walk() if isinstance(sub, (Exists, Forall))
        ]
        assert kinds == [QuantKind.PREFIX, QuantKind.PREFIX, QuantKind.ADOM]

    def test_active_domain_detection(self):
        f = exists_adom("x", rel("R", "x"))
        assert is_active_domain_formula(f)
        assert not has_natural_quantifier(f)
        g = exists("x", rel("R", "x"))
        assert not is_active_domain_formula(g)
        assert has_natural_quantifier(g)
