"""Differential property test: the calculus->algebra compiler vs the engine.

Random collapsed-form formulas (database quantifiers ADOM, pure-M
quantifiers natural) are compiled to RA plans and must reproduce the
exact engine's answers tuple-for-tuple on random databases — Theorem 4,
fuzzed.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra import compile_query, evaluate_with_cse, optimize
from repro.database import Database
from repro.eval import AutomataEngine
from repro.logic.dsl import (
    and_,
    eq,
    exists,
    exists_adom,
    last,
    not_,
    or_,
    prefix,
    rel,
    sprefix,
)
from repro.logic.formulas import Formula
from repro.strings import BINARY
from repro.structures import S

short = st.text(alphabet="01", max_size=3)

databases = st.builds(
    lambda r, s: Database(BINARY, {"R": {(x,) for x in r}, "S": {(x,) for x in s}}),
    st.sets(short, min_size=1, max_size=4),
    st.sets(short, max_size=3),
)


def conditions(variables: list[str]) -> st.SearchStrategy[Formula]:
    """Database-free conditions (may use natural quantifiers)."""
    var = st.sampled_from(variables)
    base = (
        st.builds(lambda t, a: last(t, a), var, st.sampled_from("01"))
        | st.builds(prefix, var, var)
        | st.builds(sprefix, var, var)
        | st.builds(eq, var, var)
    )
    quantified = st.builds(
        lambda v, f: exists(v, f), st.sampled_from(["w"]), conditions_inner(variables + ["w"])
    )
    return base | st.builds(not_, base) | quantified


def conditions_inner(variables: list[str]) -> st.SearchStrategy[Formula]:
    var = st.sampled_from(variables)
    return st.builds(lambda t, a: last(t, a), var, st.sampled_from("01")) | st.builds(
        prefix, var, var
    )


def collapsed_queries() -> st.SearchStrategy[Formula]:
    """phi(x): R/S atoms over x and an adom-quantified y, plus conditions."""
    guard = conditions(["x", "y"])
    body = st.builds(
        lambda g, r_or_s, connect: and_(
            rel(r_or_s, "y"), connect, g
        ),
        guard,
        st.sampled_from(["R", "S"]),
        st.sampled_from([prefix("x", "y"), eq("x", "y"), sprefix("x", "y")]),
    )
    anchored = body.map(lambda b: exists_adom("y", b))
    with_negation = st.builds(
        lambda f, g: and_(f, not_(rel("S", "x"))) if g else f,
        anchored,
        st.booleans(),
    )
    disjunctions = st.builds(
        lambda f, g: or_(f, g) if g is not None else f,
        with_negation,
        st.none() | anchored,
    )
    return disjunctions


class TestCompilerProperty:
    @settings(max_examples=40, deadline=None)
    @given(formula=collapsed_queries(), db=databases)
    def test_compiled_matches_engine(self, formula, db):
        structure = S(BINARY)
        expected = AutomataEngine(structure, db).run(formula)
        assert expected.is_finite()  # outputs anchored to adom prefixes
        compiled = compile_query(formula, structure, db.schema, slack=1)
        got = compiled.evaluate(db)
        assert got == expected.as_set(), str(formula)

    @settings(max_examples=25, deadline=None)
    @given(formula=collapsed_queries(), db=databases)
    def test_optimizer_preserves_compiled_semantics(self, formula, db):
        structure = S(BINARY)
        compiled = compile_query(formula, structure, db.schema, slack=1)
        baseline = compiled.evaluate(db)
        optimized = optimize(compiled.plan)
        assert optimized.evaluate(db, structure) == baseline, str(formula)
        assert evaluate_with_cse(optimized, db, structure) == baseline, str(formula)
