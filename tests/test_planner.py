"""Tests for the engine core: planner, automaton cache, EXPLAIN, CLI.

The acceptance property of the planner is *conservatism*: auto-selection
must never change an answer.  These tests pin the selection rules, the
cache accounting, the EXPLAIN tree shape, and the planner-vs-forced
result equality across the catalog structures.
"""

import json

import pytest

from repro.__main__ import main
from repro.core import Query, StringDatabase
from repro.engine import METRICS, AutomatonCache, global_cache
from repro.engine.cache import database_fingerprint, formula_key
from repro.engine.planner import DIRECT_COST_CEILING, Planner
from repro.logic import parse_formula
from repro.structures.catalog import by_name


ANCHORED_ADOM = "R(x) & exists adom y: S(y) & y <<= x"
NATURAL = "R(x) & exists y: y <<= x"
NATURAL_DB = "R(x) & exists y: (y <<= x & S(y))"
UNANCHORED = "last(x, '0')"


@pytest.fixture
def db():
    return StringDatabase("01", {"R": {"0110", "001", "11"}, "S": {"0", "01"}})


@pytest.fixture(autouse=True)
def _fresh_cache():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


class TestEngineSelection:
    def test_collapsed_restricted_query_goes_direct(self, db):
        plan = Query(ANCHORED_ADOM, structure="S").plan(db)
        assert plan.engine == "direct"
        assert not plan.forced
        assert plan.direct_cost <= plan.automata_cost
        assert "small enumeration domain" in plan.reason

    def test_db_dependent_natural_quantifier_goes_automata(self, db):
        # NATURAL over a scope that reads the database: no restricted
        # engine (nor the RANF translation) can evaluate it.
        plan = Query(NATURAL_DB, structure="S").plan(db)
        assert plan.engine == "automata"
        assert "NATURAL" in plan.reason
        assert plan.direct_cost == float("inf")

    def test_db_free_natural_scope_now_fast_engine(self, db):
        # The old gate sent every NATURAL quantifier to automata; the
        # RANF translation evaluates db-free scopes as per-row
        # conditions, so a fast engine takes it (direct still cannot).
        plan = Query(NATURAL, structure="S").plan(db)
        assert plan.engine in ("algebra", "codegen")
        assert plan.direct_cost == float("inf")
        got = Query(NATURAL, structure="S").result(db).as_set()
        want = Query(NATURAL, structure="S").result(db, engine="automata").as_set()
        assert got == want

    def test_unanchored_output_goes_automata(self, db):
        # x is constrained only by a string predicate; truncating its
        # domain would silently drop answers, so direct is unsound.
        plan = Query(UNANCHORED, structure="S").plan(db)
        assert plan.engine == "automata"
        assert "not anchored" in plan.reason

    def test_empty_adom_goes_automata(self):
        empty = StringDatabase("01", {"R": set()})
        plan = Query("R(x) & exists adom y: y <<= x", structure="S").plan(empty)
        assert plan.engine == "automata"

    def test_huge_length_domain_goes_automata(self):
        # S_len LENGTH domains are exponential in the longest string:
        # one 40-char string puts the direct estimate over the ceiling.
        long_db = StringDatabase("01", {"R": {"01" * 20}, "S": {"0"}})
        q = Query("R(x) & exists len y: S(y) & y <<= x", structure="S_len")
        plan = q.plan(long_db)
        assert plan.engine == "automata"
        assert plan.direct_cost > DIRECT_COST_CEILING

    def test_forced_engine_is_respected(self, db):
        for engine in ("automata", "direct"):
            plan = Query(ANCHORED_ADOM, structure="S").plan(db, engine=engine)
            assert plan.engine == engine
            assert plan.forced

    def test_auto_is_the_default_and_an_alias(self, db):
        q = Query(ANCHORED_ADOM, structure="S")
        assert q.plan(db).engine == q.plan(db, engine="auto").engine

    def test_planner_counters(self, db):
        Query(ANCHORED_ADOM, structure="S").plan(db)
        Query(NATURAL_DB, structure="S").plan(db)
        assert METRICS.get("planner.plans") == 2
        assert METRICS.get("planner.backend.direct.chosen") == 1
        assert METRICS.get("planner.backend.automata.chosen") == 1


class TestCacheAccounting:
    def test_repeat_automata_run_hits_cache(self, db):
        q = Query(NATURAL, structure="S")
        first = q.run(db)
        cold = global_cache().stats()
        assert cold["hits"] == 0 and cold["misses"] > 0
        second = q.run(db)
        warm = global_cache().stats()
        assert warm["hits"] > 0
        assert warm["misses"] == cold["misses"]  # nothing recompiled
        assert first.rows() == second.rows()

    def test_repeat_direct_run_hits_result_cache(self, db):
        q = Query(ANCHORED_ADOM, structure="S")
        assert q.plan(db).engine == "direct"
        first = q.run(db)
        misses = global_cache().stats()["misses"]
        second = q.run(db)
        assert global_cache().stats()["hits"] >= 1
        assert global_cache().stats()["misses"] == misses
        assert first.rows() == second.rows()

    def test_explain_counters_see_the_hit(self, db):
        q = Query(NATURAL, structure="S")
        q.run(db)
        report = q.explain(db)
        assert report.counters.get("cache.hits", 0) > 0

    def test_interning_respects_database_dependence(self, db):
        other = StringDatabase("01", {"R": {"1"}, "S": {"1"}})
        assert database_fingerprint(db.db) != database_fingerprint(other.db)
        # Restricted quantifiers range over adom(D), so they are NOT
        # database-independent even with no relation atom in sight.
        assert parse_formula("exists prefix y: y <<= x").database_dependent()
        assert parse_formula("forall adom v: eq(v, u)").database_dependent()
        # Pure presentation logic (NATURAL quantifiers only) is interned:
        # keyed without a fingerprint, shared across databases.
        f = parse_formula("exists y: y <<= x")
        assert not f.database_dependent()
        assert formula_key(f, "S", ("0", "1"), 0, None) == formula_key(
            f, "S", ("0", "1"), 0, None
        )
        # Fingerprinted keys for different databases differ.
        g = parse_formula("R(x)")
        key_a = formula_key(g, "S", ("0", "1"), 0, database_fingerprint(db.db))
        key_b = formula_key(g, "S", ("0", "1"), 0, database_fingerprint(other.db))
        assert key_a != key_b

    def test_adom_quantifier_not_leaked_across_databases(self):
        # Regression: `forall adom v: eq(v, u)` mentions no relation, but
        # its value ranges over adom(D).  A shared cache must key it per
        # database — interning it served database A's automaton to
        # database B (wrong rows, silently).
        q = Query("R(u) & (forall adom v: eq(v, u))", structure="S")
        db_a = StringDatabase("01", {"R": {"0"}, "S": set()})
        db_b = StringDatabase("01", {"R": {""}, "S": set()})
        assert q.run(db_a, engine="automata").rows() == [("0",)]
        assert q.run(db_b, engine="automata").rows() == [("",)]

    def test_lru_eviction_is_counted(self):
        cache = AutomatonCache(maxsize=2)
        cache.put(("k", 1), "a")
        cache.put(("k", 2), "b")
        cache.put(("k", 3), "c")
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(("k", 1)) is None  # oldest entry gone

    def test_resize_shrinks(self):
        cache = AutomatonCache(maxsize=8)
        for i in range(8):
            cache.put(("k", i), i)
        cache.resize(3)
        assert len(cache) == 3
        assert cache.get(("k", 7)) == 7  # most recent survives


class TestExplain:
    def test_tree_shape_direct(self, db):
        report = Query(ANCHORED_ADOM, structure="S").explain(db)
        assert report.plan.engine == "direct"
        root = report.root
        assert root.label == "and"
        kids = [c.label for c in root.children]
        assert "R(x)" in kids
        assert any(c.label.startswith("exists adom") for c in root.children)
        assert root.seconds >= 0
        assert report.tuple_count == 2
        assert report.finite

    def test_tree_shape_automata(self, db):
        report = Query(NATURAL_DB, structure="S").explain(db)
        assert report.plan.engine == "automata"
        # Automata trees annotate nodes with automaton sizes.
        assert report.root.states is not None
        assert report.root.states > 0
        assert report.root.children  # compiled subformulas appear

    def test_to_dict_is_json_serializable(self, db):
        for query in (ANCHORED_ADOM, NATURAL_DB):
            payload = Query(query, structure="S").explain(db).to_dict()
            decoded = json.loads(json.dumps(payload))
            assert decoded["plan"]["engine"] in ("direct", "automata")
            assert "counters" in decoded and "cache" in decoded

    def test_render_mentions_engine_and_cache(self, db):
        text = Query(ANCHORED_ADOM, structure="S").explain(db).render()
        assert "engine: direct (auto)" in text
        assert "cache:" in text
        assert "counters" in text

    def test_plan_render_annotates_domains(self, db):
        text = Query(ANCHORED_ADOM, structure="S").plan(db).render()
        assert "domain=" in text
        assert "tuples=" in text


class TestPlannerAgreesWithForcedEngines:
    QUERIES = {
        "S": ANCHORED_ADOM,
        "S_left": "R(x) & exists adom y: S(y) & y <<= x",
        "S_reg": "R(x) & exists prefix y: S(y) & y <<= x",
        "S_len": "R(x) & exists adom y: S(y) & el(y, y)",
    }

    @pytest.mark.parametrize("structure", sorted(QUERIES))
    def test_equality_on_catalog_structures(self, structure, db):
        q = Query(self.QUERIES[structure], structure=structure)
        auto = q.run(db).rows()
        forced_automata = q.run(db, engine="automata").rows()
        forced_direct = q.run(db, engine="direct").rows()
        assert auto == forced_automata == forced_direct

    def test_planner_object_directly(self, db):
        structure = by_name("S", db.alphabet)
        plan = Planner(structure, db.db).plan(parse_formula(ANCHORED_ADOM))
        assert plan.engine == "direct"
        assert set(plan.quantifier_kinds) == {"adom"}
        assert plan.anchored_free


class TestCliDatabaseErrors:
    def test_missing_db_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["run", "R(x)", "--db", str(tmp_path / "nope.json")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "cannot read database file" in err
        assert "Traceback" not in err

    def test_malformed_json_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["run", "R(x)", "--db", str(bad)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_non_object_spec_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        rc = main(["run", "R(x)", "--db", str(bad)])
        assert rc == 1
        assert "must hold a JSON object" in capsys.readouterr().err

    def test_bad_relation_rows_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"alphabet": "01", "relations": {"R": 7}}')
        rc = main(["run", "R(x)", "--db", str(bad)])
        assert rc == 1
        assert "must be a list of rows" in capsys.readouterr().err

    def test_unknown_relation_is_a_clean_error(self, tmp_path, capsys):
        good = tmp_path / "db.json"
        good.write_text('{"alphabet": "01", "relations": {"R": [["0"]]}}')
        rc = main(["run", "T(x) & R(x)", "--db", str(good)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "relation(s) T" in err
        assert "has: R" in err

    def test_explain_cli_runs(self, tmp_path, capsys):
        good = tmp_path / "db.json"
        good.write_text(
            '{"alphabet": "01", "relations": {"R": [["0110"], ["001"], ["11"]],'
            ' "S": [["0"], ["01"]]}}'
        )
        rc = main(["explain", ANCHORED_ADOM, "--db", str(good)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine: direct (auto)" in out
        rc = main(["explain", ANCHORED_ADOM, "--db", str(good), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["engine"] == "direct"
