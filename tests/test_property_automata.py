"""Property tests for the automata substrate against independent oracles."""

from hypothesis import given, settings, strategies as st

from repro.automata import (
    DFA,
    NFA,
    compile_regex,
    difference,
    dfa_from_finite_language,
    equivalent,
    intersection,
    is_star_free,
    union,
)
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Literal,
    Regex,
    Star,
    Union as RUnion,
)
from repro.strings import BINARY


def regexes(depth: int) -> st.SearchStrategy[Regex]:
    base = (
        st.sampled_from([Literal("0"), Literal("1"), Epsilon(), AnySymbol()])
    )
    if depth == 0:
        return base
    sub = regexes(depth - 1)
    return (
        base
        | st.builds(Concat, sub, sub)
        | st.builds(RUnion, sub, sub)
        | st.builds(Star, sub)
    )


def oracle_matches(node: Regex, s: str) -> bool:
    """Independent regex matcher: set-of-reachable-splits semantics."""
    def positions(node: Regex, starts: set[int]) -> set[int]:
        if isinstance(node, Epsilon):
            return set(starts)
        if isinstance(node, Literal):
            return {i + 1 for i in starts if i < len(s) and s[i] == node.symbol}
        if isinstance(node, AnySymbol):
            return {i + 1 for i in starts if i < len(s)}
        if isinstance(node, Concat):
            return positions(node.right, positions(node.left, starts))
        if isinstance(node, RUnion):
            return positions(node.left, starts) | positions(node.right, starts)
        if isinstance(node, Star):
            reach = set(starts)
            frontier = set(starts)
            while frontier:
                nxt = positions(node.inner, frontier) - reach
                reach |= nxt
                frontier = nxt
            return reach
        raise TypeError(node)

    return len(s) in positions(node, {0})


class TestRegexCompilation:
    @settings(max_examples=60, deadline=None)
    @given(node=regexes(3), s=st.text(alphabet="01", max_size=6))
    def test_dfa_matches_oracle(self, node, s):
        dfa = node.to_dfa(BINARY)
        assert dfa.accepts(s) == oracle_matches(node, s), str(node)

    @settings(max_examples=30, deadline=None)
    @given(node=regexes(2))
    def test_minimize_preserves_language(self, node):
        dfa = node.to_nfa(BINARY).determinize()
        mini = dfa.minimize()
        assert equivalent(dfa, mini)
        assert mini.num_states <= max(dfa.num_states, 1)

    @settings(max_examples=30, deadline=None)
    @given(node=regexes(2))
    def test_double_complement(self, node):
        dfa = node.to_dfa(BINARY)
        assert equivalent(dfa, dfa.complement().complement())

    @settings(max_examples=30, deadline=None)
    @given(a=regexes(2), b=regexes(2), s=st.text(alphabet="01", max_size=5))
    def test_boolean_ops_pointwise(self, a, b, s):
        da, db_ = a.to_dfa(BINARY), b.to_dfa(BINARY)
        assert union(da, db_).accepts(s) == (da.accepts(s) or db_.accepts(s))
        assert intersection(da, db_).accepts(s) == (da.accepts(s) and db_.accepts(s))
        assert difference(da, db_).accepts(s) == (da.accepts(s) and not db_.accepts(s))

    @settings(max_examples=25, deadline=None)
    @given(node=regexes(2))
    def test_reverse_reverse(self, node):
        dfa = node.to_dfa(BINARY)
        double = NFA.from_dfa(
            NFA.from_dfa(dfa).reversed().determinize()
        ).reversed().determinize()
        assert equivalent(dfa, double)


class TestFiniteLanguages:
    @settings(max_examples=40, deadline=None)
    @given(words=st.sets(st.text(alphabet="01", max_size=5), max_size=8))
    def test_finite_language_roundtrip(self, words):
        dfa = dfa_from_finite_language(BINARY, words)
        assert set(dfa.iter_strings()) == words
        assert dfa.is_finite_language()
        assert dfa.count_words() == len(words)

    @settings(max_examples=30, deadline=None)
    @given(words=st.sets(st.text(alphabet="01", max_size=4), min_size=1, max_size=6))
    def test_complement_of_finite_is_infinite(self, words):
        dfa = dfa_from_finite_language(BINARY, words)
        comp = dfa.complement()
        assert not comp.is_finite_language()
        for w in words:
            assert not comp.accepts(w)

    @settings(max_examples=25, deadline=None)
    @given(words=st.sets(st.text(alphabet="01", max_size=4), max_size=6))
    def test_finite_languages_are_star_free(self, words):
        # Every finite language is star-free.
        assert is_star_free(dfa_from_finite_language(BINARY, words))

    @settings(max_examples=30, deadline=None)
    @given(words=st.sets(st.text(alphabet="01", max_size=4), max_size=6), n=st.integers(0, 4))
    def test_count_words_of_length(self, words, n):
        dfa = dfa_from_finite_language(BINARY, words)
        assert dfa.count_words_of_length(n) == sum(1 for w in words if len(w) == n)
