"""Tests for the automata substrate: DFA/NFA, regexes, star-freeness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    DFA,
    EPSILON,
    NFA,
    compile_regex,
    contains_factor_dfa,
    dfa_all_strings,
    dfa_empty_language,
    dfa_from_finite_language,
    dfa_length_at_most,
    dfa_length_exactly,
    dfa_single_word,
    difference,
    ends_with_dfa,
    equivalent,
    intersection,
    is_star_free,
    parse_regex,
    starts_with_dfa,
    union,
)
from repro.errors import ParseError
from repro.strings import BINARY, ABC, Alphabet

short_binary = st.text(alphabet="01", max_size=6)


def brute_language(dfa: DFA, n: int = 6) -> set[str]:
    """All strings of length <= n the DFA accepts, by brute-force running."""
    out = set()
    for s in BINARY.strings_up_to(n):
        if dfa.accepts(s):
            out.add(s)
    return out


class TestDFABasics:
    def test_single_word(self):
        d = dfa_single_word(BINARY, "010")
        assert d.accepts("010")
        assert not d.accepts("01")
        assert not d.accepts("0100")
        assert d.count_words() == 1

    def test_empty_language(self):
        d = dfa_empty_language(BINARY)
        assert d.is_empty()
        assert d.is_finite_language()
        assert d.count_words() == 0

    def test_all_strings(self):
        d = dfa_all_strings(BINARY)
        assert d.accepts("")
        assert d.accepts("0101")
        assert not d.is_finite_language()
        with pytest.raises(ValueError):
            d.count_words()

    def test_finite_language_roundtrip(self):
        words = {"", "01", "10", "0110"}
        d = dfa_from_finite_language(BINARY, words)
        assert set(d.iter_strings()) == words
        assert d.count_words() == 4

    def test_length_at_most(self):
        d = dfa_length_at_most(BINARY, 2)
        assert set(d.iter_strings()) == {"", "0", "1", "00", "01", "10", "11"}
        assert d.count_words() == 7

    def test_length_exactly(self):
        d = dfa_length_exactly(BINARY, 2)
        assert set(d.iter_strings()) == {"00", "01", "10", "11"}

    def test_count_words_of_length(self):
        d = dfa_all_strings(BINARY)
        assert d.count_words_of_length(3) == 8
        assert dfa_length_exactly(BINARY, 2).count_words_of_length(3) == 0

    def test_complement(self):
        d = dfa_single_word(BINARY, "0").complement()
        assert not d.accepts("0")
        assert d.accepts("")
        assert d.accepts("1")
        assert d.accepts("00")

    def test_shortest_word(self):
        d = starts_with_dfa(BINARY, "11")
        assert d.shortest_word() == ("1", "1")
        assert dfa_empty_language(BINARY).shortest_word() is None

    def test_minimize_collapses(self):
        # Two equivalent chains accepting exactly "0".
        d = DFA(
            BINARY.symbols,
            [0, 1, 2],
            0,
            [1, 2],
            {0: {"0": 1, "1": 2}},
        )
        # states 1 and 2 are equivalent (both accept-and-die).
        assert d.minimize().num_states <= 2

    def test_canonical_preserves_language(self):
        d = starts_with_dfa(BINARY, "01")
        c = d.canonical()
        for s in BINARY.strings_up_to(5):
            assert d.accepts(s) == c.accepts(s)


class TestBuilders:
    def test_starts_with(self):
        d = starts_with_dfa(BINARY, "01")
        assert brute_language(d, 4) == {s for s in BINARY.strings_up_to(4) if s.startswith("01")}

    def test_ends_with(self):
        d = ends_with_dfa(BINARY, "10")
        assert brute_language(d, 5) == {s for s in BINARY.strings_up_to(5) if s.endswith("10")}

    def test_contains_factor(self):
        d = contains_factor_dfa(BINARY, "010")
        assert brute_language(d, 6) == {s for s in BINARY.strings_up_to(6) if "010" in s}

    def test_contains_empty_factor(self):
        assert equivalent(contains_factor_dfa(BINARY, ""), dfa_all_strings(BINARY))

    @given(st.text(alphabet="01", min_size=1, max_size=3))
    def test_ends_with_property(self, suffix):
        d = ends_with_dfa(BINARY, suffix)
        for s in BINARY.strings_up_to(5):
            assert d.accepts(s) == s.endswith(suffix)


class TestBooleanOps:
    def test_intersection(self):
        d = intersection(starts_with_dfa(BINARY, "0"), ends_with_dfa(BINARY, "1"))
        assert brute_language(d, 5) == {
            s for s in BINARY.strings_up_to(5) if s.startswith("0") and s.endswith("1")
        }

    def test_union(self):
        d = union(dfa_single_word(BINARY, "0"), dfa_single_word(BINARY, "11"))
        assert set(d.iter_strings()) == {"0", "11"}

    def test_difference(self):
        d = difference(dfa_length_at_most(BINARY, 2), dfa_length_at_most(BINARY, 1))
        assert set(d.iter_strings()) == {"00", "01", "10", "11"}

    def test_equivalence(self):
        a = compile_regex("(0|1)*", BINARY)
        assert equivalent(a, dfa_all_strings(BINARY))
        assert not equivalent(a, dfa_length_at_most(BINARY, 3))

    @given(st.lists(short_binary, max_size=4), st.lists(short_binary, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_boolean_ops_model(self, ws1, ws2):
        a = dfa_from_finite_language(BINARY, ws1)
        b = dfa_from_finite_language(BINARY, ws2)
        assert set(union(a, b).iter_strings()) == set(ws1) | set(ws2)
        assert set(intersection(a, b).iter_strings()) == set(ws1) & set(ws2)
        assert set(difference(a, b).iter_strings()) == set(ws1) - set(ws2)


class TestNFA:
    def test_epsilon_closure_and_accepts(self):
        nfa = NFA(
            BINARY.symbols,
            [0, 1, 2],
            [0],
            [2],
            {0: {EPSILON: {1}}, 1: {"0": {2}}},
        )
        assert nfa.accepts("0")
        assert not nfa.accepts("")
        assert not nfa.accepts("1")

    def test_determinize_agrees(self):
        nfa = NFA(
            BINARY.symbols,
            [0, 1, 2],
            [0],
            [2],
            {0: {"0": {0, 1}, "1": {0}}, 1: {"1": {2}}},
        )
        dfa = nfa.determinize()
        for s in BINARY.strings_up_to(6):
            assert nfa.accepts(s) == dfa.accepts(s)

    def test_reversed(self):
        d = dfa_single_word(BINARY, "011")
        r = NFA.from_dfa(d).reversed().determinize()
        assert set(r.iter_strings()) == {"110"}


class TestRegex:
    def test_literal_concat(self):
        d = compile_regex("010", BINARY)
        assert set(d.iter_strings()) == {"010"}

    def test_union_star(self):
        d = compile_regex("0*|1", BINARY)
        assert d.accepts("")
        assert d.accepts("000")
        assert d.accepts("1")
        assert not d.accepts("11")
        assert not d.accepts("01")

    def test_plus_optional(self):
        d = compile_regex("01+0?", BINARY)
        assert d.accepts("01")
        assert d.accepts("0110")
        assert not d.accepts("0")

    def test_any_and_class(self):
        sigma = Alphabet("abc")
        d = compile_regex("a.c", sigma)
        assert d.accepts("abc") and d.accepts("aac") and d.accepts("acc")
        assert not d.accepts("ab")
        d2 = compile_regex("[ab]+", sigma)
        assert d2.accepts("abba")
        assert not d2.accepts("abca")

    def test_negated_class(self):
        sigma = Alphabet("abc")
        d = compile_regex("[^a]*", sigma)
        assert d.accepts("bcb")
        assert not d.accepts("ba")

    def test_escapes(self):
        sigma = Alphabet(["a", "*"])
        d = compile_regex(r"a\*", sigma)
        assert d.accepts("a*")
        assert not d.accepts("a")

    def test_empty_regex_is_epsilon(self):
        d = compile_regex("", BINARY)
        assert set(d.iter_strings()) == {""}

    def test_parse_errors(self):
        for bad in ["(", "(0", "*", "0[", "[]", "a)"]:
            with pytest.raises(ParseError):
                parse_regex(bad)

    def test_roundtrip_str(self):
        for text in ["0(1|0)*1", "[01]+", "0?1+"]:
            node = parse_regex(text)
            re_d = compile_regex(text, BINARY)
            again = compile_regex(str(node), BINARY)
            assert equivalent(re_d, again)

    @given(short_binary)
    def test_literal_word_regex(self, w):
        d = compile_regex(w, BINARY)
        assert set(d.iter_strings()) == {w}


class TestStarFreeness:
    def test_star_free_examples(self):
        # All LIKE-style languages are star-free.
        assert is_star_free(starts_with_dfa(BINARY, "01"))
        assert is_star_free(ends_with_dfa(BINARY, "10"))
        assert is_star_free(contains_factor_dfa(BINARY, "010"))
        assert is_star_free(dfa_all_strings(BINARY))
        assert is_star_free(dfa_single_word(BINARY, "0101"))

    def test_even_length_not_star_free(self):
        # (Sigma Sigma)* has a group in its syntactic monoid.
        d = compile_regex("((0|1)(0|1))*", BINARY)
        assert not is_star_free(d)

    def test_aa_star_not_star_free(self):
        sigma = Alphabet("ab")
        d = compile_regex("(aa)*", sigma)
        assert not is_star_free(d)

    def test_parity_not_star_free(self):
        # Even number of 1s: the classic AC0 separator (Corollary 2).
        d = DFA(
            BINARY.symbols,
            [0, 1],
            0,
            [0],
            {0: {"0": 0, "1": 1}, 1: {"0": 1, "1": 0}},
        )
        assert not is_star_free(d)

    def test_no_two_consecutive_ones_is_star_free(self):
        d = compile_regex("1?(01?)*", BINARY)
        assert is_star_free(d)


class TestHopcroft:
    """Hopcroft minimization agrees with Moore on random machines."""

    def test_equivalence_on_examples(self):
        from repro.automata.hopcroft import hopcroft_minimize

        examples = [
            compile_regex("0(0|1)*1", BINARY),
            compile_regex("(00)*", BINARY),
            starts_with_dfa(BINARY, "0101"),
            contains_factor_dfa(BINARY, "010"),
            dfa_from_finite_language(BINARY, {"", "0", "01", "0110"}),
        ]
        for dfa in examples:
            moore = dfa.minimize()
            hop = hopcroft_minimize(dfa)
            assert equivalent(moore, hop)
            assert moore.num_states == hop.num_states

    @given(st.lists(st.text(alphabet="01", max_size=5), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_property_same_minimal_size(self, words):
        from repro.automata.hopcroft import hopcroft_minimize

        dfa = dfa_from_finite_language(BINARY, words)
        # Perturb: complement twice through different paths to get a
        # non-minimal equivalent machine.
        bloated = dfa.complement().complement()
        moore = bloated.minimize()
        hop = hopcroft_minimize(bloated)
        assert equivalent(moore, hop)
        assert moore.num_states == hop.num_states

    def test_global_switch(self):
        from repro.automata.hopcroft import use_hopcroft

        dfa = compile_regex("0*1", BINARY)
        baseline = dfa.minimize().num_states
        try:
            use_hopcroft(True)
            assert dfa.minimize().num_states == baseline
        finally:
            use_hopcroft(False)
        assert dfa.minimize().num_states == baseline
