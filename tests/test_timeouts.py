"""Tests for cooperative deadlines: the deadline module, ``timeout=`` on
the Query API, and ``--timeout`` on the CLI.

The acceptance property: a small budget against an adversarial query (one
whose automata product blows up) raises a clean
:class:`~repro.errors.EvaluationTimeout` promptly — no hang, no killed
thread — and a generous budget changes nothing.
"""

import json
import time

import pytest

from repro.__main__ import main
from repro.core import Query, StringDatabase
from repro.engine import global_cache
from repro.engine.deadline import (
    Deadline,
    checkpoint,
    current_deadline,
    deadline_scope,
)
from repro.engine.metrics import METRICS
from repro.errors import EvaluationError, EvaluationTimeout, ReproError


# Four 20-character strings and six pairwise non-prefix constraints over
# four existential variables: the automata engine's product explodes and
# an unbudgeted run takes seconds — ideal for deadline tests.
ADVERSARIAL_STRINGS = [
    "01101010110110101011",
    "10100101011010010101",
    "00110011000011001100",
    "11100011100011100011",
]
ADVERSARIAL_QUERY = (
    "exists x: exists y: exists z: exists w: "
    "!(x <<= y) & !(y <<= z) & !(z <<= w) & !(w <<= x) "
    "& !(x <<= z) & !(y <<= w) "
    "& R(x) & R(y) & R(z) & R(w)"
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    global_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()


@pytest.fixture
def adversarial_db():
    return StringDatabase("01", {"R": [(s,) for s in ADVERSARIAL_STRINGS]})


@pytest.fixture
def small_db():
    return StringDatabase("01", {"R": {"0110", "001", "11"}})


class TestDeadline:
    def test_remaining_and_expired(self):
        d = Deadline(60)
        assert not d.expired()
        assert 0 < d.remaining() <= 60
        d.check()  # no raise

    def test_expired_deadline_raises_with_details(self):
        d = Deadline(0)
        time.sleep(0.001)
        assert d.expired()
        with pytest.raises(EvaluationTimeout) as exc_info:
            d.check()
        exc = exc_info.value
        assert exc.timeout == 0
        assert exc.elapsed is not None and exc.elapsed > 0
        assert "budget" in str(exc)

    def test_timeout_is_a_clean_library_error(self):
        # Callers catching the library's error hierarchy see timeouts too.
        assert issubclass(EvaluationTimeout, EvaluationError)
        assert issubclass(EvaluationTimeout, ReproError)

    def test_checkpoint_without_deadline_is_a_no_op(self):
        assert current_deadline() is None
        checkpoint()  # must not raise

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        with deadline_scope(10) as d:
            assert current_deadline() is d
            checkpoint()
        assert current_deadline() is None

    def test_scope_none_is_a_no_op(self):
        with deadline_scope(None):
            assert current_deadline() is None

    def test_nested_scope_only_tightens(self):
        with deadline_scope(0.010) as outer:
            with deadline_scope(100) as inner:
                # Inner "budget" is looser, so the outer deadline governs.
                assert inner is outer
            with deadline_scope(0.001) as tighter:
                assert tighter is not outer
                assert tighter.expires_at < outer.expires_at

    def test_scope_adopts_existing_deadline_object(self):
        # The worker-pool pattern: the deadline is stamped at submission
        # and adopted later, so queue wait counts against the budget.
        stamped = Deadline(0.001)
        time.sleep(0.005)
        with deadline_scope(stamped):
            with pytest.raises(EvaluationTimeout):
                checkpoint()

    def test_expired_scope_raises_at_checkpoint(self):
        with deadline_scope(0.0005):
            time.sleep(0.002)
            with pytest.raises(EvaluationTimeout):
                checkpoint()


class TestQueryTimeout:
    def test_adversarial_query_cancels_promptly(self, adversarial_db):
        q = Query(ADVERSARIAL_QUERY)
        t0 = time.monotonic()
        with pytest.raises(EvaluationTimeout):
            q.run(adversarial_db, timeout=0.05)
        # Cancelled close to the budget: far below the seconds an
        # unbudgeted run takes (generous bound for slow CI).
        assert time.monotonic() - t0 < 2.0

    def test_result_and_explain_honor_timeout(self, adversarial_db):
        q = Query(ADVERSARIAL_QUERY)
        with pytest.raises(EvaluationTimeout):
            q.result(adversarial_db, timeout=0.05)
        with pytest.raises(EvaluationTimeout):
            q.explain(adversarial_db, timeout=0.05)

    def test_generous_timeout_changes_nothing(self, small_db):
        q = Query("R(x) & last(x, '0')")
        assert q.run(small_db, timeout=30).rows() == [("0110",)]
        assert q.run(small_db).rows() == [("0110",)]

    def test_direct_engine_honors_timeout(self, adversarial_db):
        # Force the collapsed-enumeration engine; its strided checkpoints
        # must fire too.
        q = Query(ADVERSARIAL_QUERY)
        with pytest.raises(EvaluationTimeout):
            q.run(adversarial_db, engine="direct", timeout=0.05)


class TestCLITimeout:
    @pytest.fixture
    def adversarial_db_file(self, tmp_path):
        path = tmp_path / "adv.json"
        path.write_text(json.dumps({
            "alphabet": "01",
            "relations": {"R": [[s] for s in ADVERSARIAL_STRINGS]},
        }))
        return str(path)

    def test_run_timeout_exits_3(self, adversarial_db_file, capsys):
        code = main([
            "run", ADVERSARIAL_QUERY, "--db", adversarial_db_file,
            "--timeout", "0.05",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "timeout" in err
        assert "Traceback" not in err

    def test_explain_timeout_exits_3(self, adversarial_db_file, capsys):
        code = main([
            "explain", ADVERSARIAL_QUERY, "--db", adversarial_db_file,
            "--timeout", "0.05",
        ])
        assert code == 3
        assert "timeout" in capsys.readouterr().err

    def test_run_within_budget_exits_0(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({
            "alphabet": "01", "relations": {"R": [["0110"], ["001"]]},
        }))
        code = main([
            "run", "R(x) & last(x, '0')", "--db", str(path),
            "--timeout", "30",
        ])
        assert code == 0
        assert "0110" in capsys.readouterr().out
