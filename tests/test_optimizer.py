"""Tests for the algebra plan optimizer and CSE evaluation.

Every rewrite must preserve semantics: checked against direct plan
evaluation, and (for compiled queries) against the exact engine.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    BaseRel,
    Difference,
    PrefixOp,
    Product,
    Project,
    Select,
    Union,
    col,
    compile_query,
    evaluate_with_cse,
    optimize,
)
from repro.database import Database, random_database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.logic.dsl import eq, last, prefix
from repro.strings import BINARY
from repro.structures import S, S_len

S_BIN = S(BINARY)
DB = Database(BINARY, {"R": {("0",), ("01",), ("11",)}, "S": {("0",), ("1",)}})


def plan_size(plan) -> int:
    return sum(1 for _ in plan.walk())


class TestRewrites:
    def test_identity_projection_dropped(self):
        plan = Project(BaseRel("R", 1), (0,))
        assert optimize(plan) == BaseRel("R", 1)

    def test_projection_cascade(self):
        plan = Project(Project(BaseRel("E", 2), (1, 0)), (1,))
        out = optimize(plan)
        assert out == Project(BaseRel("E", 2), (0,))

    def test_selection_merge(self):
        plan = Select(Select(BaseRel("R", 1), last(col(0), "0")), last(col(0), "1"))
        out = optimize(plan)
        assert isinstance(out, Select)
        assert not isinstance(out.child, Select)

    def test_selection_pushed_through_projection(self):
        plan = Select(Project(BaseRel("E", 2), (1,)), last(col(0), "0"))
        out = optimize(plan)
        assert isinstance(out, Project)
        assert isinstance(out.child, Select)

    def test_selection_pushed_into_product_left(self):
        plan = Select(Product(BaseRel("R", 1), BaseRel("S", 1)), last(col(0), "0"))
        out = optimize(plan)
        assert isinstance(out, Product)
        assert isinstance(out.left, Select)

    def test_selection_pushed_into_product_right(self):
        plan = Select(Product(BaseRel("R", 1), BaseRel("S", 1)), last(col(1), "0"))
        out = optimize(plan)
        assert isinstance(out, Product)
        assert isinstance(out.right, Select)

    def test_join_condition_not_pushed(self):
        plan = Select(
            Product(BaseRel("R", 1), BaseRel("S", 1)), eq(col(0), col(1))
        )
        out = optimize(plan)
        assert isinstance(out, Select)  # spans both sides: stays put

    def test_union_idempotence(self):
        plan = Union(BaseRel("R", 1), BaseRel("R", 1))
        assert optimize(plan) == BaseRel("R", 1)

    def test_nested_union_dedup(self):
        plan = Union(Union(BaseRel("R", 1), BaseRel("S", 1)), BaseRel("S", 1))
        out = optimize(plan)
        assert plan_size(out) < plan_size(plan)


PLANS = [
    Select(Select(BaseRel("R", 1), last(col(0), "0")), prefix(col(0), col(0))),
    Project(Project(Product(BaseRel("R", 1), BaseRel("S", 1)), (1, 0)), (1,)),
    Select(Product(BaseRel("R", 1), BaseRel("S", 1)), last(col(0), "1")),
    Union(Union(BaseRel("R", 1), BaseRel("S", 1)), BaseRel("R", 1)),
    Difference(PrefixOp(BaseRel("R", 1), 0), Product(BaseRel("R", 1), BaseRel("S", 1))),
    Select(Project(Product(BaseRel("R", 1), BaseRel("S", 1)), (1, 0)), eq(col(0), col(1))),
]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("plan", PLANS, ids=[str(p)[:40] for p in PLANS])
    def test_optimize_preserves_output(self, plan):
        before = plan.evaluate(DB, S_BIN)
        after = optimize(plan).evaluate(DB, S_BIN)
        assert before == after, str(plan)

    @pytest.mark.parametrize("plan", PLANS, ids=[str(p)[:40] for p in PLANS])
    def test_cse_matches_plain_evaluation(self, plan):
        assert evaluate_with_cse(plan, DB, S_BIN) == plan.evaluate(DB, S_BIN)

    @pytest.mark.parametrize(
        "text,factory",
        [
            ("R(x) & last(x, '0')", S),
            ("exists adom y: R(y) & x <<= y", S),
            ("R(x) & !S(x)", S),
            ("R(x) & exists adom y: S(y) & el(x, y)", S_len),
        ],
    )
    def test_compiled_plans_survive_optimization(self, text, factory):
        structure = factory(BINARY)
        for seed in (0, 1):
            db = random_database(BINARY, {"R": 1, "S": 1}, 4, max_len=3, seed=seed)
            formula = parse_formula(text)
            compiled = compile_query(formula, structure, db.schema, slack=1)
            expected = AutomataEngine(structure, db).run(formula).as_set()
            optimized = optimize(compiled.plan)
            assert optimized.evaluate(db, structure) == expected
            assert evaluate_with_cse(optimized, db, structure) == expected
            # The optimizer should not grow the plan.
            assert plan_size(optimized) <= plan_size(compiled.plan)

    def test_optimizer_shrinks_compiled_plan(self):
        db = DB
        formula = parse_formula("R(x) & last(x, '0') & exists adom y: S(y)")
        compiled = compile_query(formula, S_BIN, db.schema, slack=1)
        optimized = optimize(compiled.plan)
        assert plan_size(optimized) < plan_size(compiled.plan)
