"""Tests for the Section 8 extension: S_insert (positional insertion).

The paper's conclusion proposes extending RC(S) "by allowing inserting
characters at arbitrary position in a string x, specified by a prefix of
x".  These tests validate the implementation: the term semantics, the
synchronized-automaton presentation (against brute force), engine
end-to-end runs, the RA(S_insert) operator, and the subsumption of
``f_a`` / ``l_a``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import BaseRel, InsertAtOp, Project, RA_S_insert, to_calculus
from repro.automatic import presentations as pres
from repro.database import Database
from repro.errors import SignatureError
from repro.eval import AutomataEngine, DirectEngine
from repro.logic import parse_formula
from repro.logic.dsl import eq, exists_adom, insert_at, lit, rel
from repro.strings import BINARY
from repro.structures import S, S_insert, S_left, by_name

short = st.text(alphabet="01", max_size=4)


def reference_insert(x: str, p: str, a: str) -> str:
    return p + a + x[len(p):] if x.startswith(p) else ""


class TestTermSemantics:
    def test_basic(self):
        t = insert_at("x", "p", "1")
        assert t.evaluate({"x": "0011", "p": "00"}) == "00111"
        assert t.evaluate({"x": "0011", "p": "01"}) == ""  # not a prefix

    def test_subsumes_add_first_and_add_last(self):
        t_first = insert_at("x", lit(""), "1")
        t_last = insert_at("x", "x", "1")
        assert t_first.evaluate({"x": "00"}) == "100"
        assert t_last.evaluate({"x": "00"}) == "001"

    @given(short, short, st.sampled_from("01"))
    def test_matches_reference(self, x, p, a):
        t = insert_at("x", "p", a)
        assert t.evaluate({"x": x, "p": p}) == reference_insert(x, p, a)

    def test_variables_and_substitution(self):
        t = insert_at("x", "p", "0")
        assert t.variables() == {"x", "p"}
        t2 = t.substitute({"p": lit("0")})
        assert t2.evaluate({"x": "01"}) == "001"


class TestPresentation:
    def test_automaton_matches_reference(self):
        auto = pres.insert_at_graph(BINARY, "1")
        for x in BINARY.strings_up_to(3):
            for p in BINARY.strings_up_to(3):
                expected = reference_insert(x, p, "1")
                for y in BINARY.strings_up_to(4):
                    assert auto.contains((x, p, y)) == (y == expected), (x, p, y)

    def test_cached(self):
        a = pres.cached(BINARY, "insert_at_graph", "0")
        b = pres.cached(BINARY, "insert_at_graph", "0")
        assert a is b


class TestSignature:
    def test_s_insert_accepts(self):
        S_insert(BINARY).check_formula(eq(insert_at("x", "p", "1"), "y"))

    def test_other_structures_reject(self):
        f = eq(insert_at("x", "p", "1"), "y")
        for factory in (S, S_left):
            with pytest.raises(SignatureError):
                factory(BINARY).check_formula(f)

    def test_by_name(self):
        assert by_name("S_insert", BINARY).name == "S_insert"


class TestEvaluation:
    DB = Database(BINARY, {"R": {("0011",), ("11",)}, "P": {("00",), ("1",)}})

    def test_automata_engine(self):
        # y = insert_1(x, p) for x in R, p in P.
        q = (
            rel("R", "x")
            & rel("P", "p")
            & eq(insert_at("x", "p", "1"), "y")
        )
        result = AutomataEngine(S_insert(BINARY), self.DB).run(q)
        assert result.variables == ("p", "x", "y")
        expected = {
            (p, x, reference_insert(x, p, "1"))
            for (x,) in self.DB.relation("R")
            for (p,) in self.DB.relation("P")
        }
        assert result.as_set() == expected

    def test_engines_agree_on_ground_formulas(self):
        # Insertion outputs can be far (in prefix distance) from the
        # active domain, so the direct engine's PREFIX output domain does
        # not enumerate them -- use the exact automata engine for open
        # S_insert queries.  On *ground* checks both engines agree.
        structure = S_insert(BINARY)
        f = rel("R", "x") & rel("P", "p") & eq(insert_at("x", "p", "0"), "y")
        direct = DirectEngine(structure, self.DB)
        auto = AutomataEngine(structure, self.DB)
        for (x,) in self.DB.relation("R"):
            for (p,) in self.DB.relation("P"):
                y = reference_insert(x, p, "0")
                assignment = {"x": x, "p": p, "y": y}
                assert direct.holds(f, assignment)
                assert auto.run(f).contains((p, x, y))
                bad = {"x": x, "p": p, "y": y + "0"}
                assert not direct.holds(f, bad)

    def test_prefix_restricted_witness(self):
        # All 1-insertions of "0011" at any of its prefixes.
        q = exists_adom(
            "x", rel("R", "x") & parse_formula("p <<= x") & eq(insert_at("x", "p", "1"), "y")
        )
        # p is free here; quantify it prefix-restricted through run().
        from repro.logic.dsl import exists_prefix

        q2 = exists_adom(
            "x",
            exists_prefix(
                "p",
                rel("R", "x")
                & parse_formula("p <<= x")
                & eq(insert_at("x", "p", "1"), "y"),
            ),
        )
        result = AutomataEngine(S_insert(BINARY), self.DB).run(q2)
        insertions = {
            ("1" + "0011",),
            ("0" + "1" + "011",),
            ("00" + "1" + "11",),
            ("001" + "1" + "1",),
            ("0011" + "1",),
            ("1" + "11",),
            ("1" + "1" + "1",),
            ("11" + "1",),
        }
        assert result.as_set() == insertions


class TestAlgebra:
    DB = Database(BINARY, {"R": {("0011",)}, "P": {("00",), ("1",)}})

    def test_insert_op(self):
        import itertools

        from repro.algebra import Product

        plan = InsertAtOp(Product(BaseRel("R", 1), BaseRel("P", 1)), 0, 1, "1")
        rows = RA_S_insert(BINARY).evaluate(plan, self.DB)
        assert rows == {
            ("0011", "00", "00111"),
            ("0011", "1", ""),
        }

    def test_dialect_rejects_elsewhere(self):
        from repro.algebra import RA_S

        plan = InsertAtOp(BaseRel("R", 1), 0, 0, "1")
        with pytest.raises(SignatureError):
            RA_S(BINARY).validate(plan)
        RA_S_insert(BINARY).validate(plan)

    def test_to_calculus_roundtrip(self):
        from repro.algebra import Product

        plan = InsertAtOp(Product(BaseRel("R", 1), BaseRel("P", 1)), 0, 1, "1")
        formula = to_calculus(plan)
        structure = S_insert(BINARY)
        expected = plan.evaluate(self.DB, structure)
        result = AutomataEngine(structure, self.DB).run(formula)
        assert result.as_set() == expected
