"""Tests for the genericity analysis (Corollary 3) and the CLI."""

import json

import pytest

from repro.analysis import (
    all_alphabet_permutations,
    apply_symbol_permutation,
    commutes_with_permutation,
    genericity_evidence,
    permute_database,
)
from repro.database import Database, random_database
from repro.errors import AlphabetError
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S
from repro.__main__ import main


SWAP = {"0": "1", "1": "0"}


class TestGenericity:
    def test_permute_database(self):
        db = Database(BINARY, {"R": {("01",), ("11",)}})
        image = permute_database(db, SWAP)
        assert image.relation("R") == {("10",), ("00",)}

    def test_permute_validates_mapping(self):
        db = Database(BINARY, {"R": {("0",)}})
        with pytest.raises(AlphabetError):
            permute_database(db, {"0": "0", "1": "0"})

    def test_apply_symbol_permutation(self):
        assert apply_symbol_permutation("0110", SWAP) == "1001"

    def test_generic_query_commutes(self):
        # Pure relational query: no symbol inspection -> generic.
        formula = parse_formula("R(x) & !S(x)")
        structure = S(BINARY)
        for seed in range(3):
            db = random_database(BINARY, {"R": 1, "S": 1}, 4, max_len=3, seed=seed)
            assert commutes_with_permutation(formula, structure, db, SWAP)

    def test_prefix_query_commutes(self):
        # Prefix structure is permutation-invariant too.
        formula = parse_formula("exists adom y: R(y) & x <<= y")
        structure = S(BINARY)
        db = random_database(BINARY, {"R": 1}, 4, max_len=3, seed=7)
        assert commutes_with_permutation(formula, structure, db, SWAP)

    def test_symbol_inspecting_query_fails(self):
        # last(x, '0') inspects symbols: a witness of non-genericity.
        formula = parse_formula("R(x) & last(x, '0')")
        structure = S(BINARY)
        db = Database(BINARY, {"R": {("0",), ("1",)}})
        assert not commutes_with_permutation(formula, structure, db, SWAP)

    def test_genericity_evidence(self):
        structure = S(BINARY)
        dbs = [random_database(BINARY, {"R": 1}, 3, max_len=3, seed=s) for s in range(2)]
        ok, counterexample = genericity_evidence(
            parse_formula("exists adom y: x = y"), structure, dbs
        )
        assert ok and counterexample is None
        bad, mapping = genericity_evidence(
            parse_formula("R(x) & last(x, '1')"),
            structure,
            [Database(BINARY, {"R": {("0",), ("1",)}})],
        )
        assert not bad and mapping is not None

    def test_all_permutations(self):
        perms = list(all_alphabet_permutations(("0", "1")))
        assert {frozenset(p.items()) for p in perms} == {
            frozenset({("0", "0"), ("1", "1")}),
            frozenset({("0", "1"), ("1", "0")}),
        }

    def test_infinite_output_comparison(self):
        # Unsafe but generic-ish query: !R(x); outputs are infinite, the
        # comparison goes through automata renaming.
        formula = parse_formula("!R(x)")
        structure = S(BINARY)
        db = Database(BINARY, {"R": {("0",), ("1",)}})
        assert commutes_with_permutation(formula, structure, db, SWAP)
        db2 = Database(BINARY, {"R": {("0",)}})
        # not R(x) with asymmetric db: image under swap differs.
        assert not commutes_with_permutation(
            parse_formula("!R(x) & last(x, '0')"), structure, db2, SWAP
        )


@pytest.fixture()
def db_file(tmp_path):
    spec = {
        "alphabet": "01",
        "relations": {"R": [["0110"], ["001"], ["11"]]},
    }
    path = tmp_path / "db.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestCli:
    def test_run(self, capsys, db_file):
        code = main(["run", "R(x) & last(x, '1')", "--db", db_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "001" in out and "11" in out and "0110" not in out

    def test_run_direct_engine(self, capsys, db_file):
        code = main(
            ["run", "R(x)", "--db", db_file, "--engine", "direct"]
        )
        assert code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 4  # header+3

    def test_run_unsafe_without_limit(self, capsys, db_file):
        code = main(["run", "last(x, '0')", "--db", db_file])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_run_unsafe_with_limit(self, capsys, db_file):
        code = main(["run", "last(x, '0')", "--db", db_file, "--limit", "3"])
        assert code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 4

    def test_safety(self, capsys, db_file):
        assert main(["safety", "R(x)", "--db", db_file]) == 0
        assert "SAFE" in capsys.readouterr().out
        assert main(["safety", "!R(x)", "--db", db_file]) == 0
        assert "UNSAFE" in capsys.readouterr().out

    def test_sql(self, capsys, db_file):
        code = main(
            ["sql", "SELECT r.1 FROM R r WHERE r.1 LIKE '0%'", "--db", db_file]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0110" in out and "001" in out and "11" not in out.splitlines()[1:]

    def test_language(self, capsys):
        code = main(
            ["language", "matches(x, '(00)*')", "--structure", "S_reg"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "star-free: False" in out

    def test_signature_error_reported(self, capsys, db_file):
        code = main(["run", "el(x, x)", "--db", db_file])
        assert code == 1
        assert "error" in capsys.readouterr().err
