"""Concurrency stress: many threads hammering one service must produce
exactly the serial answers, with consistent counters and a bounded cache.

This is the satellite test for the thread-safety work: the METRICS
registry and the LRU automaton cache are shared by every worker, so lost
increments, corrupted LRU state, or cross-request answer bleed would show
up here as wrong rows or counters that do not add up.

The asyncio front end (ISSUE 9) adds its own stress shapes: a thousand
concurrent TCP connections must not grow the thread count (connections
are coroutines, not threads), and clients that vanish mid-request at
random must never poison the worker pool for the clients that stayed.
"""

import asyncio
import json
import random
import socket
import threading
import time

import pytest

from repro.core import Query, StringDatabase
from repro.engine import AutomatonCache, global_cache
from repro.engine.metrics import METRICS
from repro.service import (
    AsyncServiceClient,
    QueryService,
    RunRequest,
    ServiceClient,
    ServiceConfig,
    serve_tcp,
)

pytestmark = pytest.mark.slow

N_THREADS = 8
ROUNDS = 3  # each thread runs every query this many times

QUERIES = [
    "R(x) & last(x, '0')",
    "R(x) & last(x, '1')",
    "R(x) & !S(x)",
    "S(y) | R(y)",
    "R(x) & exists adom y: S(y) & y <<= x",
    "S(y) & exists adom x: R(x) & y <<= x",
    "exists x: R(x) & last(x, '0')",   # Boolean query
    "R(x) & S(y) & y <<= x",
]


def make_db():
    return StringDatabase(
        "01",
        {"R": {"0110", "001", "11", "0101"}, "S": {"0", "01", "1"}},
    )


@pytest.fixture(autouse=True)
def _fresh_cache():
    # Closure-cache entries carry no database fingerprint, so warm
    # closures from this module would flip the planner's argmin for
    # later test modules — reset it alongside the automaton cache.
    from repro.algebra.codegen import closure_cache

    global_cache().reset()
    closure_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()
    closure_cache().reset()


@pytest.fixture(scope="module")
def serial_answers():
    """The ground truth, computed single-threaded without any service."""
    db = make_db()
    return {src: [list(t) for t in Query(src).run(db).rows()] for src in QUERIES}


class TestStress:
    def test_threads_match_serial_and_counters_add_up(self, serial_answers):
        svc = QueryService(workers=N_THREADS, max_pending=256)
        svc.register_database("main", make_db())
        failures = []
        done = []

        def hammer(thread_index):
            # Deterministic per-thread order: rotate the query list so
            # threads interleave different queries at any instant.
            order = QUERIES[thread_index % len(QUERIES):] + \
                QUERIES[:thread_index % len(QUERIES)]
            for _ in range(ROUNDS):
                for src in order:
                    resp = svc.execute(RunRequest(query=src, database="main"))
                    if not resp.ok:
                        failures.append((src, resp.error.code, resp.error.message))
                    elif resp.rows != serial_answers[src]:
                        failures.append((src, "wrong-rows", resp.rows))
                    else:
                        done.append(src)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not any(t.is_alive() for t in threads)
        finally:
            svc.close()

        total = N_THREADS * ROUNDS * len(QUERIES)
        assert failures == []
        assert len(done) == total

        # Counter consistency: no increment was lost under contention.
        assert METRICS.get("service.requests") == total
        assert METRICS.get("service.ok") == total
        assert METRICS.get("service.errors") == 0
        # The planner may route each query to any in-process backend
        # (prepared queries prewarm codegen closures, which flips its
        # argmin); the invariant is that every request ran exactly one
        # engine, not which engine won.
        engine_runs = sum(
            METRICS.get(f"engine.{name}.runs")
            for name in ("automata", "direct", "algebra", "codegen")
        )
        assert engine_runs == total

        # The shared LRU stayed within bounds and did real work.
        stats = global_cache().stats()
        assert stats["size"] <= stats["maxsize"]
        assert stats["hits"] > 0

    def test_batched_fanout_matches_serial(self, serial_answers):
        # The bench_service shape: one big batch fanned out over the pool.
        svc = QueryService(workers=N_THREADS, max_pending=256)
        svc.register_database("main", make_db())
        try:
            requests = [
                RunRequest(query=src, database="main")
                for _ in range(N_THREADS) for src in QUERIES
            ]
            responses = svc.execute_batch(requests)
            assert all(r.ok for r in responses)
            for req, resp in zip(requests, responses):
                assert resp.rows == serial_answers[req.query]
        finally:
            svc.close()

    def test_private_cache_isolation(self, serial_answers):
        # A service with its own AutomatonCache must leave the global one
        # untouched — and still answer correctly under concurrency.
        private = AutomatonCache(maxsize=32)
        svc = QueryService(
            ServiceConfig(workers=4, max_pending=128, cache=private)
        )
        svc.register_database("main", make_db())
        try:
            responses = svc.execute_batch([
                RunRequest(query=src, database="main")
                for _ in range(4) for src in QUERIES
            ])
            assert all(r.ok for r in responses)
            for req, resp in zip(
                [s for _ in range(4) for s in QUERIES], responses
            ):
                assert resp.rows == serial_answers[req]
        finally:
            svc.close()
        assert private.stats()["size"] > 0
        assert global_cache().stats()["size"] == 0

    def test_concurrent_metrics_increments_are_not_lost(self):
        # Direct hammer on the registry itself: 8 threads x 5000 incs.
        METRICS.reset()
        barrier = threading.Barrier(8)

        def bump():
            barrier.wait()
            for _ in range(5000):
                METRICS.inc("stress.counter")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert METRICS.get("stress.counter") == 8 * 5000

    def test_one_thousand_connections_without_thread_growth(self):
        # ISSUE 9 acceptance: 1k concurrent connections are 1k parked
        # coroutines on one event loop — the process thread count must
        # not move while they are all open.
        svc = QueryService(workers=4, max_pending=256)
        svc.register_database("main", make_db())
        server = serve_tcp(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        baseline_threads = threading.active_count()

        async def body():
            clients = []
            # Connect in waves so the SYN backlog never overflows.
            for _ in range(10):
                clients.extend(await asyncio.gather(*(
                    AsyncServiceClient.connect(host, port)
                    for _ in range(100)
                )))
            pongs = await asyncio.gather(*(c.ping() for c in clients))
            threads_at_peak = threading.active_count()
            answers = await asyncio.gather(*(
                c.run("R(x) & last(x, '0')", db="main")
                for c in clients[:64]
            ))
            await asyncio.gather(*(c.close() for c in clients))
            return pongs, answers, threads_at_peak

        try:
            pongs, answers, threads_at_peak = asyncio.run(body())
            assert len(pongs) == 1000
            assert all(p["pong"] for p in pongs)
            assert all(a["ok"] and a["rows"] == [["0110"]] for a in answers)
            # The asyncio.run driver thread itself accounts for nothing
            # server-side; allow a little slack for unrelated churn.
            assert threads_at_peak - baseline_threads <= 4, (
                f"thread count grew from {baseline_threads} to "
                f"{threads_at_peak} under 1000 connections"
            )
            assert METRICS.get("service.connections") >= 1000
        finally:
            server.shutdown()
            thread.join(10)
            server.close_service()

    def test_random_disconnects_do_not_poison_the_pool(self, serial_answers):
        # Clients that vanish mid-request (queued or running) must have
        # their work cancelled cooperatively; the survivors' answers stay
        # exactly right afterwards.
        from tests.test_timeouts import ADVERSARIAL_QUERY, ADVERSARIAL_STRINGS

        svc = QueryService(workers=2, max_pending=64)
        svc.register_database("main", make_db())
        svc.register_database(
            "adv", StringDatabase("01", {"R": [(s,) for s in ADVERSARIAL_STRINGS]})
        )
        server = serve_tcp(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        rng = random.Random(1729)
        try:
            # Wave of abrupt disconnects: long queries, then hang up.
            socks = []
            for i in range(12):
                sock = socket.create_connection((host, port))
                sock.sendall((json.dumps({
                    "op": "run", "id": i, "query": ADVERSARIAL_QUERY,
                    "db": "adv", "stream": bool(i % 2),
                    "timeout_ms": 30_000,
                }) + "\n").encode())
                socks.append(sock)
            for sock in socks:
                time.sleep(rng.uniform(0.0, 0.05))
                sock.close()
            # Survivors: every query still returns the serial answers.
            with ServiceClient(host, port, read_timeout=60.0) as client:
                for src in QUERIES:
                    resp = client.run(src, db="main")
                    assert resp["ok"], (src, resp.get("error"))
                    assert resp["rows"] == serial_answers[src]
            assert METRICS.get("service.cancel_requested") >= 1
        finally:
            server.shutdown()
            thread.join(10)
            server.close_service()

    def test_concurrent_cache_puts_stay_bounded(self):
        cache = AutomatonCache(maxsize=16)
        barrier = threading.Barrier(8)

        def churn(base):
            barrier.wait()
            for i in range(500):
                key = ("k", base, i % 40)
                if cache.get(key) is None:
                    cache.put(key, ("value", base, i))

        threads = [threading.Thread(target=churn, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        stats = cache.stats()
        assert len(cache) <= 16
        assert stats["size"] == len(cache)
        assert stats["hits"] + stats["misses"] > 0
