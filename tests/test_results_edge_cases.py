"""Edge-case tests for QueryResult, Table, and output handling."""

import pytest

from repro import Query, StringDatabase, UnsafeQueryError
from repro.core.query import Table
from repro.database import Database
from repro.eval import AutomataEngine
from repro.logic import parse_formula
from repro.strings import BINARY
from repro.structures import S

DB = StringDatabase("01", {"R": {"0", "01", "11"}})


class TestQueryResult:
    def test_boolean_result(self):
        result = AutomataEngine(S(BINARY), DB.db).run(parse_formula("exists adom x: R(x)"))
        assert result.variables == ()
        assert result.as_bool() is True
        assert result.is_finite()
        assert result.count() == 1  # the empty tuple

    def test_false_boolean_result(self):
        result = AutomataEngine(S(BINARY), DB.db).run(
            parse_formula("exists adom x: R(x) & x = '111'")
        )
        assert result.as_bool() is False
        assert result.count() == 0

    def test_empty_output(self):
        result = AutomataEngine(S(BINARY), DB.db).run(
            parse_formula("R(x) & x = '111'")
        )
        assert result.is_finite()
        assert result.as_set() == frozenset()
        assert list(result.tuples()) == []

    def test_infinite_tuples_requires_limit(self):
        result = AutomataEngine(S(BINARY), DB.db).run(parse_formula("!R(x)"))
        with pytest.raises(UnsafeQueryError):
            list(result.tuples())
        sample = list(result.tuples(limit=7))
        assert len(sample) == 7
        assert len(set(sample)) == 7  # no duplicates in enumeration

    def test_infinite_sample_is_shortest_first(self):
        result = AutomataEngine(S(BINARY), DB.db).run(parse_formula("last(x, '1')"))
        sample = [s for (s,) in result.tuples(limit=5)]
        lengths = [len(s) for s in sample]
        assert lengths == sorted(lengths)

    def test_contains_on_infinite(self):
        result = AutomataEngine(S(BINARY), DB.db).run(parse_formula("!R(x)"))
        assert result.contains(("0000",))
        assert not result.contains(("0",))

    def test_repr(self):
        finite = AutomataEngine(S(BINARY), DB.db).run(parse_formula("R(x)"))
        assert "finite" in repr(finite)
        infinite = AutomataEngine(S(BINARY), DB.db).run(parse_formula("!R(x)"))
        assert "infinite" in repr(infinite)


class TestTable:
    def test_rows_sorted(self):
        t = Table(("x",), frozenset({("1",), ("0",), ("01",)}))
        assert t.rows() == [("0",), ("01",), ("1",)]

    def test_len_contains_iter(self):
        t = Table(("x",), frozenset({("0",), ("1",)}))
        assert len(t) == 2
        assert ("0",) in t
        assert ["0", "1"] == [row[0] for row in t]
        assert ("x",) == t.columns

    def test_empty_table(self):
        t = Table(("x", "y"), frozenset())
        assert len(t) == 0
        assert t.rows() == []


class TestQueryEdgeCases:
    def test_sentence_through_run(self):
        q = Query("exists adom x: R(x)")
        table = q.run(DB)
        assert table.columns == ()
        assert len(table) == 1  # true: one empty row

    def test_query_on_empty_database(self):
        db = StringDatabase("01", {"R": set()})
        assert Query("R(x)").run(db).rows() == []
        assert not Query("exists adom x: true").decide(db)

    def test_limit_on_finite_result_is_harmless(self):
        q = Query("R(x)")
        assert len(q.run(DB, limit=100)) == 3

    def test_constants_only_query(self):
        q = Query("x = '010'")
        assert q.run(DB).rows() == [("010",)]
