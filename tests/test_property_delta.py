"""Property tests: delta evolution is answer-invariant.

Hypothesis generates random insert/delete sequences against a versioned
database and asserts that the evolved head answers every query exactly
like a from-scratch database built from the final state — across the
in-process engines and the sharded backend.  Queries also run *mid*
chain, so the incremental paths (result promotion, ΔQ algebra
maintenance, shard delta forwarding) actually engage instead of every
example starting cold.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Query, StringDatabase
from repro.database.instance import Database
from repro.database.schema import Schema
from repro.delta import VersionedDatabase
from repro.service import QueryService, RunRequest
from repro.strings import BINARY

QUERIES = [
    "R(x)",
    "R(x) | S(x)",
    "R(x) & S(x)",
    "R(x) & last(x, '0')",
    "R(x) & forall prefix y: (!(y <<= x) | !last(y, '1'))",
]

#: Algebra (and the codegen backend, which shares its eligibility rule)
#: only compiles the ADOM-only shapes.
ALGEBRA_OK = {"R(x)", "R(x) | S(x)", "R(x) & S(x)"}

strings = st.text(alphabet="01", min_size=0, max_size=6)
relation = st.frozensets(strings, max_size=8)
#: A delta: which side, which relation, which rows.
step = st.tuples(
    st.sampled_from(["insert", "delete"]),
    st.sampled_from(["R", "S"]),
    st.frozensets(strings, min_size=1, max_size=4),
)

_names = itertools.count()


def _evolve(vdb, model, ops):
    """Apply ``ops`` to both the versioned db and the plain-set model."""
    for op, rel, rows in ops:
        if op == "insert":
            vdb.insert(rel, rows)
            model[rel] |= rows
        else:
            vdb.delete(rel, rows)
            model[rel] -= rows


@given(r=relation, s=relation, ops=st.lists(step, max_size=5))
@settings(max_examples=20, deadline=None)
def test_evolved_equals_fresh_in_process(r, s, ops):
    vdb = VersionedDatabase(
        Database(
            BINARY,
            {"R": {(x,) for x in r}, "S": {(x,) for x in s}},
            schema=Schema({"R": 1, "S": 1}),
        )
    )
    model = {"R": set(r), "S": set(s)}
    probe = Query("R(x) & last(x, '0')")
    for op, rel, rows in ops:
        _evolve(vdb, model, [(op, rel, rows)])
        # Mid-chain query: warms the caches so later versions take the
        # promotion / maintenance paths rather than running cold.
        probe.result(vdb.head.database, engine="direct").as_set()
    fresh = Database(
        BINARY,
        {name: {(x,) for x in rows} for name, rows in model.items()},
        schema=Schema({"R": 1, "S": 1}),
    )
    evolved = vdb.head.database
    for text in QUERIES:
        query = Query(text)
        engines = ["direct", "automata"]
        if text in ALGEBRA_OK:
            engines.append("algebra")
            # Codegen answers after deltas must match a fresh build too:
            # closures are schema-keyed and row-only deltas reuse them,
            # with maintenance falling back to a full compiled re-run.
            engines.append("codegen")
        for engine in engines:
            got = query.result(evolved, engine=engine).as_set()
            want = query.result(fresh, engine=engine).as_set()
            assert got == want, (
                f"{text} via {engine}: evolved != fresh after {len(ops)} "
                f"deltas (|R|={len(model['R'])}, |S|={len(model['S'])})"
            )


def test_join_maintained_over_long_chain():
    # A deterministic long chain through the ΔQ algebra path: the join
    # must stay exact across every intermediate version.
    vdb = VersionedDatabase(
        Database(
            BINARY,
            {
                "R": {(f"{i:03b}",) for i in range(6)},
                "S": {(f"{i:04b}",) for i in range(6)},
            },
        )
    )
    model = {"R": {f"{i:03b}" for i in range(6)}, "S": {f"{i:04b}" for i in range(6)}}
    query = Query("R(x) & S(y) & x <<= y")
    query.result(vdb.head.database, engine="algebra")
    ops = [
        ("insert", "S", {"0111", "1111"}),
        ("delete", "R", {"000"}),
        ("insert", "R", {"110", "111"}),
        ("delete", "S", {"0001", "0111"}),
        ("insert", "S", {"0000"}),
    ]
    for op, rel, rows in ops:
        _evolve(vdb, model, [(op, rel, rows)])
        fresh = Database(
            BINARY, {name: {(x,) for x in rows} for name, rows in model.items()}
        )
        assert (
            query.result(vdb.head.database, engine="algebra").as_set()
            == query.result(fresh, engine="algebra").as_set()
        )


@pytest.fixture(scope="module", params=["hash", "relation"])
def service(request):
    with QueryService(workers=2, shards=2, shard_scheme=request.param) as svc:
        yield svc


def _rows(service, name, text, engine):
    response = service.execute(
        RunRequest(query=text, database=name, engine=engine)
    )
    assert response.ok, f"{text} via {engine}: {response.error}"
    return response.rows


@given(r=relation, s=relation, ops=st.lists(step, max_size=4))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_evolved_equals_fresh_sharded(service, r, s, ops):
    name = f"prop{next(_names)}"
    schema = Schema({"R": 1, "S": 1})
    service.register_database(
        name, StringDatabase("01", {"R": r, "S": s}, schema=schema)
    )
    model = {"R": set(r), "S": set(s)}
    probe = "R(x) & last(x, '0')"
    for op, rel, rows in ops:
        if op == "insert":
            service.insert_rows(name, rel, rows)
            model[rel] |= rows
        else:
            service.delete_rows(name, rel, rows)
            model[rel] -= rows
        # Mid-chain sharded query: deltas were forwarded, not re-scattered.
        _rows(service, name, probe, "sharded")
    final = f"{name}-final"
    service.register_database(
        final, StringDatabase("01", dict(model), schema=schema)
    )
    for text in QUERIES:
        evolved = _rows(service, name, text, "sharded")
        assert evolved == _rows(service, final, text, "sharded"), (
            f"{text}: evolved sharded != from-scratch sharded "
            f"(scheme={service.config.shard_scheme})"
        )
        assert evolved == _rows(service, name, text, "direct"), (
            f"{text}: sharded != direct on the evolved head"
        )
    service.unregister_database(name)
    service.unregister_database(final)
