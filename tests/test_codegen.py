"""Tests for the compiled-plan codegen backend (repro.algebra.codegen).

Covers the fusion shapes the emitter claims (scan→select→project chains
in one loop body, hash tables built once per join, prefix expansion
inlined), the per-plan-shape eligibility gate with its structured
fallback to the interpreted executor, bit-identity between the numpy
columnar branch and the pure-Python loop, the bounded closure cache's
LRU discipline, EXPLAIN output, planner integration (the warm-closure
argmin flip), and delta behavior (row-only deltas reuse closures).
"""

import pytest

import repro.algebra.codegen as codegen
from repro.algebra.codegen import (
    closure_cache,
    get_pipeline,
    has_pipeline,
    prewarm,
    shape_supported,
)
from repro.algebra.exec import AlgebraExecutor, compile_for_execution
from repro.core import Query
from repro.database import random_database
from repro.database.instance import Database
from repro.database.schema import Schema
from repro.delta import VersionedDatabase
from repro.engine import METRICS, global_cache
from repro.engine.cache import DEFAULT_MAXSIZE
from repro.logic import parse_formula
from repro.logic.canonical import canonicalize
from repro.strings import BINARY
from repro.structures import S_len
from repro.structures.catalog import S as S_factory

STRUCT = S_factory(BINARY)


@pytest.fixture(autouse=True)
def _fresh():
    """Codegen closures persist process-wide; tests must not leak warm
    closures into each other (or into later test files — a warm closure
    flips the planner's argmin by design)."""
    global_cache().reset()
    closure_cache().reset()
    METRICS.reset()
    yield
    global_cache().reset()
    closure_cache().reset()


def _formula(text: str):
    return canonicalize(parse_formula(text))


def _binary_db(n: int = 40):
    return random_database(BINARY, {"R": 2, "S": 2}, n, max_len=3, seed=5)


def _ternary_db(n: int = 30):
    return random_database(BINARY, {"W": 3}, n, max_len=4, seed=9)


def _agree(text: str, db, structure=STRUCT):
    """Compile both ways and assert the pipeline matches the interpreter."""
    formula = _formula(text)
    _compiled, plan = compile_for_execution(
        formula, structure, db.schema, slack=0
    )
    pipeline, detail = get_pipeline(formula, structure, db.schema, slack=0)
    assert pipeline is not None, f"{text}: {detail}"
    rows, stage_rows = pipeline.run(db)
    interpreted = AlgebraExecutor(structure, db).run(plan)[0]
    assert rows == interpreted, text
    assert len(stage_rows) == len(pipeline.stages)
    return pipeline


class TestFusion:
    def test_scan_select_project_is_one_fused_stage(self):
        # W(x,x,y) compiles to project(select[eq](W)): one fused loop, no
        # intermediate relation between the select and the project.
        pipeline = _agree("W(x,x,y)", _ternary_db())
        kinds = [s["kind"] for s in pipeline.stages]
        assert kinds.count("FusedScan") == 1
        assert "HashJoin" not in kinds

    def test_join_hash_table_outside_the_loop(self):
        pipeline = _agree("R(x,y) & S(y,z)", _binary_db())
        kinds = [s["kind"] for s in pipeline.stages]
        assert "HashJoin" in kinds
        # Both build-side branches are emitted; the smaller side is
        # chosen at runtime, and either way the table is built once.
        assert pipeline.source.count("if len(") >= 1

    def test_prefix_expansion_fuses_into_the_row_loop(self):
        # The interpreted-atom path ranges variables over the
        # prefix-closed adom; the emitter inlines that expansion as a
        # nested range loop instead of materializing PrefixOp output.
        pipeline = _agree("R(x,y) & S(y,z) & last(x, '0')", _binary_db())
        assert "for _i" in pipeline.source
        assert ".endswith(" in pipeline.source  # inlined `last`, no checker
        assert pipeline.line_count > 0

    @pytest.mark.parametrize(
        "text",
        [
            "R(x,y) | S(x,y)",
            "R(x,y) & !S(x,y)",
            "exists adom y: R(x,y)",
            "R(x,y) & S(y,z) & x = z",
            "R(x,y) & x <<= y",
            "R(x,x)",
        ],
    )
    def test_fused_pipelines_agree_with_interpreter(self, text):
        _agree(text, _binary_db())


class TestEligibilityGate:
    def test_downop_shapes_are_rejected(self):
        # S_len's gamma-bound needs DownOp, whose expansion is
        # exponential in string length — codegen refuses, by design.
        db = random_database(BINARY, {"R": 1, "S": 1}, 10, max_len=3, seed=3)
        ok, why = shape_supported(
            _formula("R(x) & last(x, '0')"), S_len(BINARY), db.schema
        )
        assert not ok
        assert "DownOp" in why

    def test_forced_codegen_falls_back_to_interpreter(self):
        # Forcing engine="codegen" on a rejected shape still answers —
        # structured fallback to the interpreted algebra executor.
        db = random_database(BINARY, {"R": 1, "S": 1}, 10, max_len=3, seed=3)
        query = Query("R(x) & last(x, '0')", structure="S_len")
        got = query.result(db, engine="codegen").as_set()
        want = query.result(db, engine="algebra").as_set()
        assert got == want
        assert METRICS.get("codegen.fallbacks") >= 1

    def test_rejections_are_cached(self):
        db = random_database(BINARY, {"R": 1, "S": 1}, 10, max_len=3, seed=3)
        formula = _formula("R(x) & last(x, '0')")
        first = get_pipeline(formula, S_len(BINARY), db.schema)
        misses = METRICS.get("codegen.cache.misses")
        second = get_pipeline(formula, S_len(BINARY), db.schema)
        assert first == second == (None, first[1])
        assert METRICS.get("codegen.cache.hits") >= 1
        assert METRICS.get("codegen.cache.misses") == misses
        assert METRICS.get("codegen.compiles") == 0


@pytest.mark.skipif(codegen._np is None, reason="numpy not available")
class TestNumpyColumnarIdentity:
    QUERY = "W(x,x,y)"

    def test_numpy_and_pure_loops_are_bit_identical(self, monkeypatch):
        db = _ternary_db(n=30)  # below the default 64-row threshold
        formula = _formula(self.QUERY)
        # Default threshold: the closure's runtime branch takes the pure
        # loop (30 < 64) even though the stage is vectorizable.
        pure = get_pipeline(formula, STRUCT, db.schema)[0]
        assert pure.np_stages == 1
        pure_rows, _ = pure.run(db)
        # Lowered threshold + fresh compile: the numpy branch engages.
        monkeypatch.setattr(codegen, "_NP_MIN_ROWS", 1)
        closure_cache().reset()
        vectorized = get_pipeline(formula, STRUCT, db.schema)[0]
        assert "len(" in vectorized.source and ">= 1:" in vectorized.source
        np_rows, _ = vectorized.run(db)
        assert np_rows == pure_rows
        _plan = compile_for_execution(formula, STRUCT, db.schema, slack=0)[1]
        assert np_rows == AlgebraExecutor(STRUCT, db).run(_plan)[0]


class TestClosureCache:
    def test_hit_after_compile(self):
        db = _binary_db()
        formula = _formula("R(x,y) & S(y,z)")
        _p1, detail1 = get_pipeline(formula, STRUCT, db.schema)
        _p2, detail2 = get_pipeline(formula, STRUCT, db.schema)
        assert (detail1, detail2) == ("compiled", "hit")
        assert METRICS.get("codegen.compiles") == 1
        assert METRICS.get("codegen.cache.hits") == 1
        assert has_pipeline(formula, STRUCT, db.schema)

    def test_lru_eviction_under_pressure(self):
        db = _binary_db()
        cache = closure_cache()
        try:
            cache.resize(1)
            get_pipeline(_formula("R(x,y)"), STRUCT, db.schema)
            get_pipeline(_formula("S(x,y)"), STRUCT, db.schema)
            assert METRICS.get("codegen.cache.evictions") >= 1
            assert not has_pipeline(_formula("R(x,y)"), STRUCT, db.schema)
        finally:
            cache.resize(DEFAULT_MAXSIZE)

    def test_service_stats_surface_the_closure_cache(self):
        from repro.service import QueryService

        with QueryService(workers=1) as service:
            stats = service.stats()
        assert "codegen_cache" in stats
        assert {"size", "maxsize", "hits", "misses"} <= stats[
            "codegen_cache"
        ].keys()


class TestExplain:
    def test_explain_shows_fused_pipeline(self):
        db = _binary_db()
        report = Query("R(x,y) & S(y,z)", structure="S").explain(
            db, engine="codegen"
        )
        tree = report.to_dict()["tree"]
        assert tree["kind"] == "CodegenPipeline"
        assert tree["annotations"]["source_lines"] > 0
        assert tree["annotations"]["closure"] in ("warm", "compiled")
        assert tree["children"], "per-stage children missing"
        assert all("rows" in c["annotations"] for c in tree["children"])
        assert "codegen[" in report.render()

    def test_explain_fallback_is_annotated(self):
        db = random_database(BINARY, {"R": 1, "S": 1}, 10, max_len=3, seed=3)
        report = Query("R(x) & last(x, '0')", structure="S_len").explain(
            db, engine="codegen"
        )
        tree = report.to_dict()["tree"]
        assert tree["kind"] != "CodegenPipeline"
        assert "codegen_fallback" in tree["annotations"]
        assert "DownOp" in tree["annotations"]["codegen_fallback"]

    def test_cached_result_explain(self):
        db = _binary_db()
        query = Query("R(x,y) & S(y,z)", structure="S")
        query.explain(db, engine="codegen")
        second = query.explain(db, engine="codegen")
        assert second.root.cache_hit


class TestPlannerIntegration:
    QUERY = "R(x,y) & S(y,z) & last(x, '0')"

    def test_warm_closure_flips_the_argmin(self):
        db = random_database(BINARY, {"R": 2, "S": 2}, 100, max_len=4, seed=11)
        query = Query(self.QUERY, structure="S")
        cold = query.plan(db)
        assert cold.engine != "codegen", cold.costs
        assert prewarm(
            query.formula, query.structure, db.schema, slack=0
        )
        warm = query.plan(db)
        assert warm.engine == "codegen", warm.costs
        # The flip is exactly the setup cost falling away.
        assert warm.costs["codegen"] < cold.costs["codegen"]
        assert METRICS.get("codegen.prewarms") == 1

    def test_prewarm_refuses_ineligible_shapes(self):
        db = _binary_db()
        # NATURAL over a database-dependent scope: even the RANF
        # translation bails (a db-free scope would now prewarm fine).
        natural = parse_formula("exists x: (R(x,y) & exists z: (z <<= x & S(z,y)))")
        assert not prewarm(natural, STRUCT, db.schema)
        assert METRICS.get("codegen.prewarms") == 0


class TestDeltaBehavior:
    def test_row_only_delta_reuses_the_closure(self):
        base = Database(
            BINARY,
            {"R": {("0",), ("01",)}, "S": {("1",)}},
            schema=Schema({"R": 1, "S": 1}),
        )
        vdb = VersionedDatabase(base)
        query = Query("R(x) | S(x)")
        query.result(vdb.head.database, engine="codegen")
        assert METRICS.get("codegen.compiles") == 1
        head = vdb.insert("S", {"11", "0"})
        got = query.result(head.database, engine="codegen").as_set()
        # Same schema => same closure key: no recompilation, just a run.
        assert METRICS.get("codegen.compiles") == 1
        fresh = Database(
            BINARY,
            {"R": {("0",), ("01",)}, "S": {("1",), ("11",), ("0",)}},
            schema=Schema({"R": 1, "S": 1}),
        )
        assert got == query.result(fresh, engine="codegen").as_set()

    def test_untouched_relation_promotes_the_result(self):
        base = Database(
            BINARY,
            {"R": {("0",), ("01",)}, "S": {("1",)}},
            schema=Schema({"R": 1, "S": 1}),
        )
        vdb = VersionedDatabase(base)
        query = Query("R(x)")
        first = query.result(vdb.head.database, engine="codegen").as_set()
        runs = METRICS.get("codegen.runs")
        head = vdb.insert("S", {"111"})  # delta misses the query's relation
        again = query.result(head.database, engine="codegen").as_set()
        assert again == first
        # Promotion re-keyed the old result: no new pipeline execution.
        assert METRICS.get("codegen.runs") == runs
