"""Per-client quotas and weighted fair queuing for the async front end.

The bounded queue in :class:`repro.service.service.QueryService` protects
the *process* (reject or block when the pool is saturated), but it is
first-come-first-served: one chatty client can fill the whole queue and
starve everyone else.  The asyncio server layers two mechanisms on top,
both implemented here because they are pure policy — no sockets, no
service internals:

* :class:`TokenBucket` — a per-client request-rate quota.  Each client
  (one TCP connection) gets ``burst`` tokens refilled at ``rate`` tokens
  per second; a query op that finds the bucket empty is either rejected
  with a structured ``quota`` error carrying ``retry_after`` (under
  ``backpressure="reject"``) or asynchronously delayed until a token
  accrues (under ``"block"``) — mirroring the service's own admission
  modes.  Cheap control ops (``ping``, ``stats``, ...) are never
  charged.

* :class:`FairScheduler` — weighted fair queuing between clients on the
  way *into* the service queue.  Instead of racing ``submit()`` calls,
  the per-connection handlers enqueue work items tagged with their
  client id; a single pump task drains them in **virtual-time order**
  (start-time fair queuing: an item's virtual finish time is
  ``max(scheduler clock, client's last finish) + cost/weight``), so a
  client that queued 100 requests and a client that queued 1 alternate
  roughly by weight instead of 100:1.  The pump feeds the service with
  ``backpressure="reject"`` semantics and retries with exponential
  backoff while the bounded queue is full, converting the service's
  thread-blocking ``"block"`` mode into event-loop-friendly awaits.

Both classes are asyncio-native but loop-agnostic: the token bucket is
also safe to call from threads (it locks), and the scheduler binds to
whatever loop runs :meth:`FairScheduler.pump`.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
import time
from typing import Any, Callable, Optional

from repro.engine.metrics import METRICS
from repro.errors import QueueFullError, QuotaExceededError, ServiceClosedError

__all__ = ["TokenBucket", "FairScheduler", "DEFAULT_WEIGHT"]

#: Weight assigned to requests that don't ask for one.
DEFAULT_WEIGHT = 1.0

#: Backoff bounds for the pump's full-queue retry loop (seconds).
_BACKOFF_MIN = 0.001
_BACKOFF_MAX = 0.02


class TokenBucket:
    """A thread-safe token bucket: ``burst`` capacity, ``rate``/s refill.

    ``rate=None`` disables the quota (every acquire succeeds) so the
    server can construct one unconditionally per client.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: Optional[float], burst: float = 1.0):
        if rate is not None and rate <= 0:
            raise ValueError("quota rate must be positive (or None to disable)")
        if burst < 1:
            raise ValueError("quota burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; ``0.0`` on success, else seconds until
        enough tokens will have accrued (the ``retry_after`` hint)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= cost:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    async def acquire(self, cost: float = 1.0) -> float:
        """Block (asynchronously) until ``cost`` tokens are available.

        Returns the total seconds slept — the admission delay, which the
        server reports in ``queue_ms`` so throttling is visible to the
        client."""
        slept = 0.0
        while True:
            wait = self.try_acquire(cost)
            if wait <= 0.0:
                return slept
            await asyncio.sleep(wait)
            slept += wait

    def tokens(self) -> float:
        """Current token count (refilled to now); for stats/tests."""
        if self.rate is None:
            return self.burst
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            return self._tokens


class _Item:
    __slots__ = ("vfinish", "seq", "submit", "future", "expires_at")

    def __init__(self, vfinish, seq, submit, future, expires_at):
        self.vfinish = vfinish
        self.seq = seq
        self.submit = submit
        self.future = future
        self.expires_at = expires_at

    def __lt__(self, other: "_Item") -> bool:
        return (self.vfinish, self.seq) < (other.vfinish, other.seq)


class FairScheduler:
    """Start-time weighted fair queuing in front of ``service.submit``.

    One instance per server; per-connection handlers call
    :meth:`schedule` and await the returned future, which resolves to
    whatever the submit thunk returned (a ``PendingRequest``) or raises
    the admission error (:class:`QueueFullError` once the item's own
    deadline ran out, :class:`ServiceClosedError` after :meth:`close`).

    The virtual clock advances to the dispatched item's finish time, and
    each client's next start time is ``max(clock, its last finish)`` —
    the classic SFQ recipe: backlogged clients share capacity by weight,
    idle clients don't accumulate credit.
    """

    def __init__(self, max_backlog: int = 1024):
        if max_backlog < 1:
            raise ValueError("scheduler backlog must be >= 1")
        self.max_backlog = max_backlog
        self._heap: list[_Item] = []
        self._vclock = 0.0
        self._client_vtime: dict[Any, float] = {}
        self._seq = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._closed = False
        self.scheduled = 0
        self.dispatched = 0
        self.rejected_backlog = 0
        self.expired = 0

    # ------------------------------------------------------------- enqueue

    def schedule(
        self,
        client: Any,
        submit: Callable[[], Any],
        *,
        weight: float = DEFAULT_WEIGHT,
        timeout: Optional[float] = None,
    ) -> "asyncio.Future":
        """Queue ``submit`` for fair dispatch on behalf of ``client``.

        Must be called on the loop running :meth:`pump`.  ``timeout``
        bounds how long the item may wait for a service-queue slot
        before failing with :class:`QueueFullError` (``None`` = wait
        forever); the request's own deadline still governs execution.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if self._closed:
            future.set_exception(ServiceClosedError("service is shut down"))
            return future
        if len(self._heap) >= self.max_backlog:
            self.rejected_backlog += 1
            future.set_exception(QueueFullError(
                f"scheduler backlog full ({self.max_backlog} waiting); retry"
            ))
            return future
        weight = max(float(weight), 1e-6)
        vstart = max(self._vclock, self._client_vtime.get(client, 0.0))
        vfinish = vstart + 1.0 / weight
        self._client_vtime[client] = vfinish
        self._seq += 1
        expires_at = None if timeout is None else time.monotonic() + timeout
        heapq.heappush(
            self._heap, _Item(vfinish, self._seq, submit, future, expires_at)
        )
        self.scheduled += 1
        if self._wakeup is not None:
            self._wakeup.set()
        return future

    def forget(self, client: Any) -> None:
        """Drop the client's virtual-time state (connection closed)."""
        self._client_vtime.pop(client, None)

    # --------------------------------------------------------------- pump

    async def pump(self, service) -> None:
        """Drain items in virtual-time order into ``service.submit``.

        Runs until :meth:`close`.  A full service queue backs off
        (1→20 ms, exponential) and retries the *same* item — fair order
        is preserved under overload — until the item's own admission
        timeout expires.

        Submit thunks must never block the loop: the server builds them
        as ``service.submit(request, nowait=True)``, so a full queue
        always surfaces here as :class:`QueueFullError` (even under
        ``backpressure="block"``) and the waiting happens in this
        coroutine's ``asyncio.sleep`` — not in ``queue.put`` on the
        event-loop thread.
        """
        self._wakeup = asyncio.Event()
        while True:
            while not self._heap:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            item = heapq.heappop(self._heap)
            if item.future.cancelled():
                continue
            self._vclock = max(self._vclock, item.vfinish)
            backoff = _BACKOFF_MIN
            while True:
                try:
                    pending = item.submit()
                except QueueFullError as exc:
                    now = time.monotonic()
                    if item.expires_at is not None and now >= item.expires_at:
                        self.expired += 1
                        METRICS.inc("service.rejected")
                        if not item.future.cancelled():
                            item.future.set_exception(QueueFullError(
                                "service queue full for the whole admission "
                                "timeout; retry with backoff"
                            ))
                        break
                    del exc
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, _BACKOFF_MAX)
                    if item.future.cancelled():
                        break
                    continue
                except Exception as exc:  # closed service, bad request, ...
                    if not item.future.cancelled():
                        item.future.set_exception(exc)
                    break
                else:
                    self.dispatched += 1
                    if item.future.cancelled():
                        # Submitter vanished between enqueue and dispatch:
                        # abandon the request so it doesn't occupy a worker.
                        cancel = getattr(pending, "cancel", None)
                        if cancel is not None:
                            cancel()
                    else:
                        item.future.set_result(pending)
                    break

    def close(self) -> None:
        """Reject queued and future items; wakes the pump to exit."""
        self._closed = True
        while self._heap:
            item = heapq.heappop(self._heap)
            if not item.future.done():
                item.future.set_exception(
                    ServiceClosedError("service is shut down")
                )
        if self._wakeup is not None:
            self._wakeup.set()

    def stats(self) -> dict:
        return {
            "backlog": len(self._heap),
            "max_backlog": self.max_backlog,
            "scheduled": self.scheduled,
            "dispatched": self.dispatched,
            "rejected_backlog": self.rejected_backlog,
            "expired": self.expired,
            "clients_tracked": len(self._client_vtime),
        }


def quota_error(retry_after: float) -> QuotaExceededError:
    """The structured error for an exhausted token bucket."""
    return QuotaExceededError(
        f"client request quota exhausted; retry in {retry_after:.3f}s",
        retry_after=retry_after,
    )
