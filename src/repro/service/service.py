"""The concurrent query service: worker pool, deadlines, admission control.

:class:`QueryService` turns the single-call library (``Query.run(db)``)
into a serving tier on top of the PR 1 engine core:

* a **named-database registry** — databases are registered once under a
  name and fingerprinted (:func:`repro.engine.cache.database_fingerprint`),
  so requests refer to ``"main"`` instead of shipping relations;
* **prepared queries** — :meth:`QueryService.prepare` parses a query once
  and caches the planner's decision per (database fingerprint, engine,
  slack); handles are interned by the query's **canonical fingerprint**
  (:mod:`repro.logic.canonical`), so alpha-equivalent and
  conjunct-reordered spellings share one handle, one plan cache, and the
  compiled automata in the session-wide thread-safe
  :class:`~repro.engine.cache.AutomatonCache`;
* a **worker pool** — a fixed set of threads executing requests pulled
  from a bounded queue; single requests and batches run concurrently;
* **per-request deadlines** — a request's budget starts at submission
  (queue wait counts) and is enforced cooperatively by the checkpoint
  hooks threaded through both engines (:mod:`repro.engine.deadline`), so
  a 1 ms deadline against a pathological automata product returns a
  structured timeout instead of hanging a worker forever;
* **admission control** — when the queue is full, ``backpressure="reject"``
  fails fast with a retryable *overloaded* error and
  ``backpressure="block"`` makes the submitter wait (up to the request's
  own deadline);
* **structured errors** — workers never leak tracebacks; every failure is
  classified into an :class:`ErrorInfo` with a stable ``code`` and a
  ``retryable`` flag (``timeout``/``overloaded``/``unavailable`` are
  retryable, ``parse``/``invalid``/``unsafe``/``internal`` are not);
* **graceful shutdown** — :meth:`QueryService.close` stops admission and
  either drains the queue or cancels pending requests with a retryable
  *unavailable* error;
* **cooperative cancellation** — :meth:`PendingRequest.cancel` abandons
  a request whose submitter went away (a disconnected streaming client):
  queued work is skipped, in-flight work is aborted at the engines' next
  deadline checkpoint, and the worker slot is always reclaimed;
* **warm-start persistence** — ``warm_dir=`` spills the automaton cache
  (compiled :class:`~repro.automata.relation.RelationAutomaton` values
  including their memoized dense-DFA kernels) to disk on close and
  reloads entries lazily on demand after a restart, keyed by canonical
  fingerprint (:mod:`repro.engine.warmstart`) — restarts answer
  previously-compiled queries without recompiling;
* optional **sharding** — ``shards=N`` spawns a pool of shard worker
  *processes* (:mod:`repro.shard`); every registered database is
  partitioned onto it and queries whose plans distribute scatter-gather
  across the pool (shard failures surface as structured ``shard``
  errors, never as silent partial results).

The wire protocol on top of this lives in :mod:`repro.service.protocol`
and :mod:`repro.service.server`; tuning knobs are documented in
``docs/service.md``.

Usage::

    from repro.service import QueryService, RunRequest

    svc = QueryService(workers=8)
    svc.register_database("main", StringDatabase("01", {"R": {"01", "0110"}}))
    resp = svc.execute(RunRequest(query="R(x)", database="main", timeout=0.5))
    resp.ok, resp.rows          # True, [["01"], ["0110"]]
    svc.close()
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.core.query import Query, StringDatabase
from repro.database.instance import Database
from repro.delta import DatabaseVersion, VersionedDatabase
from repro.engine.backend import resolve_engine
from repro.engine.cache import AutomatonCache, database_fingerprint, global_cache
from repro.engine.deadline import Deadline, deadline_scope
from repro.engine.explain import execute_plan
from repro.engine.metrics import METRICS
from repro.engine.planner import Plan, Planner
from repro.errors import (
    EvaluationTimeout,
    ParseError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
    ShardError,
    UnsafeQueryError,
)
from repro.logic.canonical import canonical_fingerprint
from repro.logic.parser import parse_formula
from repro.strings.alphabet import Alphabet

__all__ = [
    "ErrorInfo",
    "PreparedQuery",
    "QueryService",
    "RunRequest",
    "ServiceConfig",
    "ServiceResponse",
    "classify_error",
]


# ------------------------------------------------------------------- results


#: Error codes whose requests are safe to retry (possibly after backoff).
RETRYABLE_CODES = frozenset(
    {"timeout", "overloaded", "quota", "cancelled", "unavailable"}
)


@dataclass(frozen=True)
class ErrorInfo:
    """A structured, wire-serializable request failure."""

    code: str            # timeout | overloaded | quota | cancelled |
                         # unavailable | shard | parse | invalid |
                         # unsafe | internal
    message: str
    retryable: bool

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }


def classify_error(exc: BaseException) -> ErrorInfo:
    """Map an exception to its structured error (never leaks a traceback).

    The mapping is ordered most-specific-first; anything the library did
    not anticipate becomes a non-retryable ``internal`` error carrying
    only the exception's message.
    """
    if isinstance(exc, EvaluationTimeout):
        return ErrorInfo("timeout", str(exc), retryable=True)
    if isinstance(exc, QueueFullError):
        return ErrorInfo("overloaded", str(exc), retryable=True)
    if isinstance(exc, QuotaExceededError):
        return ErrorInfo("quota", str(exc), retryable=True)
    if isinstance(exc, RequestCancelledError):
        return ErrorInfo("cancelled", str(exc), retryable=True)
    if isinstance(exc, ServiceClosedError):
        return ErrorInfo("unavailable", str(exc), retryable=True)
    if isinstance(exc, ShardError):
        # Worker crashes / stragglers are retryable; certificate or
        # registration problems are not — the error carries the bit.
        return ErrorInfo("shard", str(exc), retryable=exc.retryable)
    if isinstance(exc, ParseError):
        return ErrorInfo("parse", str(exc), retryable=False)
    if isinstance(exc, UnsafeQueryError):
        return ErrorInfo("unsafe", str(exc), retryable=False)
    if isinstance(exc, ReproError):
        return ErrorInfo("invalid", str(exc), retryable=False)
    return ErrorInfo("internal", f"{type(exc).__name__}: {exc}", retryable=False)


@dataclass
class ServiceResponse:
    """The outcome of one request: either a table or a structured error."""

    ok: bool
    columns: Optional[list[str]] = None
    rows: Optional[list[list[str]]] = None
    engine: Optional[str] = None
    finite: Optional[bool] = None
    error: Optional[ErrorInfo] = None
    queue_seconds: float = 0.0
    exec_seconds: float = 0.0

    def to_dict(self) -> dict:
        """The wire shape used by the NDJSON protocol (timings in ms)."""
        out: dict[str, Any] = {
            "ok": self.ok,
            "queue_ms": round(self.queue_seconds * 1000, 3),
            "exec_ms": round(self.exec_seconds * 1000, 3),
        }
        if self.ok:
            out["columns"] = self.columns
            out["rows"] = self.rows
            out["engine"] = self.engine
            out["finite"] = self.finite
        else:
            assert self.error is not None
            out["error"] = self.error.to_dict()
        return out


# ------------------------------------------------------------------ requests


@dataclass
class RunRequest:
    """One query execution request.

    ``query`` is query text or a :class:`PreparedQuery`; ``database`` a
    registered name.  ``timeout`` (seconds) defaults to the service's
    ``default_timeout`` and starts counting at **submission** — time spent
    waiting in the admission queue eats into the budget, which is what
    lets a loaded service shed requests that would miss their deadline
    anyway.
    """

    query: Union[str, "PreparedQuery"]
    database: str
    structure: str = "S"
    engine: Optional[str] = None      # None/"auto" or a registered backend name
    slack: Optional[int] = None
    limit: Optional[int] = None
    timeout: Optional[float] = None


@dataclass
class ServiceConfig:
    """Tuning knobs for :class:`QueryService` (see ``docs/service.md``)."""

    workers: int = 4
    max_pending: int = 64
    backpressure: str = "reject"          # "reject" | "block"
    default_timeout: Optional[float] = None
    cache: Optional[AutomatonCache] = None  # defaults to the global cache
    shards: int = 0                       # 0 = no shard pool
    shard_scheme: str = "hash"            # "hash" | "relation"
    warm_dir: Optional[str] = None        # spill/reload the automaton cache
    quota_rate: Optional[float] = None    # per-client requests/second
    quota_burst: float = 8.0              # per-client token-bucket capacity
    stream_page_size: int = 256           # default rows per row_batch frame

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if self.backpressure not in ("reject", "block"):
            raise ServiceError(
                f"backpressure must be 'reject' or 'block', got "
                f"{self.backpressure!r}"
            )
        if self.shards < 0:
            raise ServiceError("shards must be >= 0 (0 disables sharding)")
        if self.shard_scheme not in ("hash", "relation"):
            raise ServiceError(
                f"shard_scheme must be 'hash' or 'relation', got "
                f"{self.shard_scheme!r}"
            )
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ServiceError(
                "quota_rate must be positive (or None to disable quotas)"
            )
        if self.quota_burst < 1:
            raise ServiceError("quota_burst must be >= 1")
        if self.stream_page_size < 1:
            raise ServiceError("stream_page_size must be >= 1")


# ------------------------------------------------------------------ registry


@dataclass(frozen=True)
class _NamedDatabase:
    """A registry entry: the instance plus its content fingerprint.

    ``database``/``fingerprint`` always describe the entry's **head**
    snapshot.  Once a delta is applied to the name, ``versioned`` holds
    the delta store evolving it and ``plan_epoch`` mirrors the head's
    epoch (bumped only on schema/adom shifts — the prepared-query plan
    cache re-plans on epoch changes, not on every delta)."""

    name: str
    database: Database
    fingerprint: str
    versioned: Optional[VersionedDatabase] = None
    plan_epoch: int = 0


class PreparedQuery:
    """A query parsed once and planned once per database fingerprint.

    Handles are created by :meth:`QueryService.prepare` and shared freely
    across threads; the plan cache is locked, and the cached
    :class:`~repro.engine.planner.Plan` objects are treated as immutable.
    Re-registering a database under the same name invalidates its cached
    plans via the fingerprint in the cache key.
    """

    def __init__(self, source: str, structure: str = "S"):
        self.source = source
        self.structure_name = structure
        self.formula = parse_formula(source)
        #: Canonical structural fingerprint — the service interns handles
        #: by it, so alpha-equivalent spellings share this plan cache.
        self.fingerprint = canonical_fingerprint(self.formula)
        self._queries: dict[tuple[str, ...], Query] = {}
        self._plans: dict[tuple, Plan] = {}
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.source!r}, structure={self.structure_name})"
        )

    def query_for(self, alphabet: Alphabet) -> Query:
        """The signature-checked :class:`Query` for one alphabet."""
        key = alphabet.symbols
        with self._lock:
            q = self._queries.get(key)
        if q is None:
            # Construction checks the formula against the structure's
            # signature; done outside the lock (idempotent, last wins).
            q = Query(self.formula, structure=self.structure_name,
                      alphabet=alphabet)
            with self._lock:
                q = self._queries.setdefault(key, q)
        return q

    def plan_for(
        self,
        entry: _NamedDatabase,
        engine: Optional[str] = None,
        slack: Optional[int] = None,
    ) -> Plan:
        """The (cached) plan for this query on one registered database.

        Keyed by (database fingerprint, backend name, slack) — the query
        component is the handle itself, which the service interns by
        canonical fingerprint.  Two registered names with identical
        contents therefore share plans, as do alpha-equivalent spellings
        of the query.

        Delta-evolved entries are keyed by **plan epoch** instead of
        fingerprint: every version fingerprint is new, but the planner's
        decision only depends on the schema and the active domain, which
        is exactly what bumps the epoch — so row-only deltas reuse the
        plan (counted in ``delta.replans_avoided``) and schema/adom
        shifts re-plan.
        """
        force = resolve_engine(engine)
        if entry.versioned is not None:
            key = (
                "epoch",
                entry.versioned.base_fingerprint,
                entry.plan_epoch,
                force,
                slack,
            )
        else:
            key = (entry.fingerprint, force, slack)
        with self._lock:
            hit = self._plans.get(key)
        if hit is not None:
            plan, planned_fingerprint = hit
            METRICS.inc("service.plan_cache_hits")
            if planned_fingerprint != entry.fingerprint:
                METRICS.inc("delta.replans_avoided")
            return plan
        q = self.query_for(entry.database.alphabet)
        if force is None:
            # Prepared queries are declared intent to run repeatedly, so
            # compile the codegen closure *before* planning: the first
            # auto plan then already sees a warm closure and the argmin
            # can flip to the fused pipeline (CODEGEN_SETUP_COST is
            # amortized, not charged to every run).  Best-effort — shapes
            # outside the fuseable regime simply return False.
            from repro.algebra.codegen import prewarm

            prewarm(
                q.formula,
                q.structure,
                entry.database.schema,
                slack=0 if slack is None else slack,
            )
        plan = Planner(q.structure, entry.database).plan(
            q.formula, slack=slack, force=force
        )
        with self._lock:
            plan, _ = self._plans.setdefault(key, (plan, entry.fingerprint))
        return plan


def _codegen_closure_stats() -> dict:
    """Counters of the compiled-closure LRU, for ``stats()`` endpoints."""
    from repro.algebra.codegen import closure_cache

    return closure_cache().stats()


# ---------------------------------------------------------------- the pool


_SENTINEL = object()


class _Job:
    """One queued request with its deadline and completion signal."""

    __slots__ = (
        "request", "fn", "deadline", "submitted_at", "started_at",
        "exec_seconds", "event", "outcome", "cancelled", "_callbacks",
        "_cb_lock", "_cb_fired",
    )

    def __init__(self, request: RunRequest, fn, deadline: Optional[Deadline]):
        self.request = request
        self.fn = fn
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.exec_seconds = 0.0
        self.event = threading.Event()
        # ("ok", payload dict) | ("error", exception)
        self.outcome: Optional[tuple[str, Any]] = None
        #: Set by PendingRequest.cancel(): skip if still queued, expire
        #: the deadline if already running.
        self.cancelled = False
        self._callbacks: list = []
        self._cb_lock = threading.Lock()
        self._cb_fired = False

    def add_done_callback(self, fn) -> None:
        """Run ``fn()`` on the worker thread once the job completes (or
        immediately, on the caller's thread, if it already did).  The
        asyncio front end uses this to bridge worker completions back
        onto the event loop via ``call_soon_threadsafe`` — no polling,
        no thread blocked per in-flight request."""
        with self._cb_lock:
            if not self._cb_fired:
                self._callbacks.append(fn)
                return
        fn()

    def fire_callbacks(self) -> None:
        with self._cb_lock:
            self._cb_fired = True
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn()
            except Exception:  # a broken observer must not kill the worker
                pass


class PendingRequest:
    """A handle on a submitted request (the service's future)."""

    __slots__ = ("_job",)

    def __init__(self, job: _Job):
        self._job = job

    def done(self) -> bool:
        return self._job.event.is_set()

    def add_done_callback(self, fn) -> None:
        """Run ``fn()`` (no arguments) when the request completes.

        Fires on the worker thread — keep it tiny and non-blocking (the
        async server passes ``loop.call_soon_threadsafe`` trampolines).
        If the request is already done, ``fn`` runs immediately on the
        calling thread.
        """
        self._job.add_done_callback(fn)

    def cancel(self) -> None:
        """Abandon the request cooperatively (submitter went away).

        Queued jobs are skipped by the worker (their outcome becomes a
        retryable ``cancelled`` error); a job already running has its
        deadline pulled into the past, so the engine's next checkpoint
        aborts it (:meth:`repro.engine.deadline.Deadline.cancel`).  The
        worker slot is therefore always reclaimed — promptly for queued
        work, at the next checkpoint for in-flight work.
        """
        job = self._job
        job.cancelled = True
        if job.deadline is not None:
            job.deadline.cancel()
        METRICS.inc("service.cancel_requested")

    def wait(self, timeout: Optional[float] = None) -> ServiceResponse:
        """Block until the request finishes and return its response.

        ``timeout`` bounds only this *wait*; if it elapses the request is
        still running and a retryable ``timeout`` response is returned
        without cancelling the underlying work.
        """
        job = self._job
        if not job.event.wait(timeout):
            return ServiceResponse(
                ok=False,
                error=ErrorInfo(
                    "timeout",
                    f"request still pending after waiting {timeout:.6g}s",
                    retryable=True,
                ),
                queue_seconds=time.monotonic() - job.submitted_at,
            )
        status, value = job.outcome  # type: ignore[misc]
        queue_seconds = (
            (job.started_at or job.submitted_at) - job.submitted_at
        )
        if status == "ok":
            return ServiceResponse(
                ok=True,
                queue_seconds=queue_seconds,
                exec_seconds=job.exec_seconds,
                **value,
            )
        return ServiceResponse(
            ok=False,
            error=classify_error(value),
            queue_seconds=queue_seconds,
            exec_seconds=job.exec_seconds,
        )


# ----------------------------------------------------------------- service


class QueryService:
    """The concurrent query service (see module docstring).

    Accepts either a :class:`ServiceConfig` or the same fields as keyword
    overrides::

        QueryService(workers=8, max_pending=128, backpressure="block")
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ServiceError("pass a ServiceConfig or keyword overrides, not both")
        self.config = config
        self._cache = config.cache if config.cache is not None else global_cache()
        # Warm-start persistence: attach the spill directory as the
        # cache's lazy miss loader, so entries compiled by a previous
        # process are pulled off disk on first demand (and this process
        # spills its own compilations on close / spill_warm()).
        self._warm = None
        if config.warm_dir:
            from repro.engine.warmstart import WarmStartStore

            self._warm = WarmStartStore(config.warm_dir)
            self._warm.attach(self._cache)
        # shards > 0 spawns a worker-process pool; every registered
        # database is partitioned onto it and the planner's `sharded`
        # backend enters the cost argmin for distributing queries.
        self._coordinator = None
        if config.shards > 0:
            from repro.shard import ShardCoordinator

            self._coordinator = ShardCoordinator(
                shards=config.shards, scheme=config.shard_scheme
            )
        self._databases: dict[str, _NamedDatabase] = {}
        # Interned per (canonical fingerprint, structure); the text-keyed
        # alias map short-circuits re-parsing on repeated exact text.
        self._prepared: dict[tuple[str, str], PreparedQuery] = {}
        self._prepared_text: dict[tuple[str, str], PreparedQuery] = {}
        self._registry_lock = threading.Lock()
        # Serializes delta application (insert/delete) across names so a
        # wrap-then-apply never races a concurrent re-registration.
        self._delta_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue(maxsize=config.max_pending)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(config.workers)
        ]
        for t in self._workers:
            t.start()

    # ------------------------------------------------------------- registry

    def register_database(
        self, name: str, database: Union[StringDatabase, Database]
    ) -> str:
        """Register (or replace) a database under ``name``; returns its
        fingerprint.  Replacing invalidates prepared plans for the old
        contents automatically (plans are keyed by fingerprint)."""
        db = database.db if isinstance(database, StringDatabase) else database
        entry = _NamedDatabase(name, db, database_fingerprint(db))
        if self._coordinator is not None:
            # Partition onto the shard pool first: if a worker rejects
            # the data the service registry stays consistent.
            self._coordinator.register_database(name, db)
        with self._registry_lock:
            self._databases[name] = entry
        METRICS.inc("service.databases_registered")
        return entry.fingerprint

    def unregister_database(self, name: str) -> bool:
        """Drop ``name`` from the registry (and the shard pool's
        partitions/routes, when sharding); returns whether it existed.
        Cached plans and results keyed by its fingerprints age out of
        their LRU stores naturally."""
        with self._registry_lock:
            entry = self._databases.pop(name, None)
        if entry is None:
            return False
        if self._coordinator is not None:
            self._coordinator.unregister_database(name)
        METRICS.inc("service.databases_unregistered")
        return True

    # --------------------------------------------------------------- deltas

    def insert_rows(self, name: str, relation: str, rows) -> DatabaseVersion:
        """Apply an insert delta to a registered database; returns the
        new head version (see :mod:`repro.delta`)."""
        return self.apply_delta(name, inserts={relation: rows})

    def delete_rows(self, name: str, relation: str, rows) -> DatabaseVersion:
        """Apply a delete delta to a registered database."""
        return self.apply_delta(name, deletes={relation: rows})

    def apply_delta(
        self,
        name: str,
        inserts: Optional[dict] = None,
        deletes: Optional[dict] = None,
    ) -> DatabaseVersion:
        """Evolve ``name`` by one delta: O(|delta|), caches stay warm.

        The first delta lazily wraps the registered snapshot in a
        :class:`~repro.delta.VersionedDatabase`; subsequent requests for
        ``name`` resolve against the new head while in-flight requests
        keep their pinned snapshot.  Under sharding, row deltas are
        forwarded to the owning partitions only; a schema-extending
        delta re-scatters (new relations need a placement decision).
        """
        with self._delta_lock:
            entry = self._entry(name)
            versioned = entry.versioned
            if versioned is None:
                versioned = VersionedDatabase(entry.database)
            before = versioned.head
            head = versioned.apply(inserts=inserts, deletes=deletes)
            if head is before:
                # Effective no-op: nothing to forward, nothing to swap.
                if entry.versioned is None:
                    with self._registry_lock:
                        self._databases[name] = _NamedDatabase(
                            name,
                            head.database,
                            head.fingerprint,
                            versioned=versioned,
                            plan_epoch=head.plan_epoch,
                        )
                return head
            if self._coordinator is not None:
                if head.schema_changed:
                    # New relations need a placement decision: re-scatter.
                    self._coordinator.register_database(name, head.database)
                else:
                    self._coordinator.apply_delta(
                        name, head.delta, head.database
                    )
            with self._registry_lock:
                self._databases[name] = _NamedDatabase(
                    name,
                    head.database,
                    head.fingerprint,
                    versioned=versioned,
                    plan_epoch=head.plan_epoch,
                )
        METRICS.inc("service.deltas")
        return head

    def database_versions(self, name: str) -> list[dict]:
        """Wire-friendly summaries of the retained versions of ``name``
        (a single pseudo-version for never-mutated databases)."""
        entry = self._entry(name)
        if entry.versioned is not None:
            return entry.versioned.versions()
        return [
            {
                "version": 0,
                "fingerprint": entry.fingerprint,
                "tuples": entry.database.size,
                "adom_size": len(entry.database.adom),
                "plan_epoch": 0,
                "delta_size": 0,
            }
        ]

    def database_names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._databases)

    def _entry(self, name: str) -> _NamedDatabase:
        with self._registry_lock:
            entry = self._databases.get(name)
        if entry is None:
            have = ", ".join(self.database_names()) or "none"
            raise ServiceError(
                f"unknown database {name!r} (registered: {have})"
            )
        return entry

    # -------------------------------------------------------------- prepare

    def prepare(self, query: str, structure: str = "S") -> PreparedQuery:
        """Parse once, share forever: handles are interned per (canonical
        fingerprint, structure), so every caller of any alpha-equivalent
        or conjunct-reordered spelling of the same query gets the same
        handle — and therefore the same plan cache and cached automata.
        A text-keyed alias map keeps the repeated-exact-text fast path
        free of re-parsing."""
        alias = (query, structure)
        with self._registry_lock:
            handle = self._prepared_text.get(alias)
        if handle is not None:
            return handle
        handle = PreparedQuery(query, structure)
        key = (handle.fingerprint, structure)
        with self._registry_lock:
            interned = self._prepared.setdefault(key, handle)
            self._prepared_text[alias] = interned
        if interned is handle:
            METRICS.inc("service.prepared_queries")
        return interned

    # ------------------------------------------------------------ execution

    def submit(
        self, request: RunRequest, *, nowait: bool = False
    ) -> PendingRequest:
        """Admit a request into the queue and return a waitable handle.

        Raises :class:`~repro.errors.ServiceClosedError` when draining or
        closed, :class:`~repro.errors.QueueFullError` when the queue is
        full under ``backpressure="reject"``, and
        :class:`~repro.errors.EvaluationTimeout` when a blocked submission
        outlives the request's own deadline.

        ``nowait=True`` forces the non-blocking admission path regardless
        of the configured backpressure mode: a full queue raises
        :class:`~repro.errors.QueueFullError` immediately instead of
        blocking the calling thread.  The asyncio front end submits this
        way so its event loop is never parked in ``queue.put`` — under
        ``backpressure="block"`` the scheduler pump supplies the waiting
        with ``asyncio.sleep`` retries (:meth:`repro.service.quota.
        FairScheduler.pump`).  Retried nowait attempts that find the
        queue full are not counted as requests or rejections; only the
        admitted attempt increments ``service.requests``.
        """
        if self._closed:
            raise ServiceClosedError("service is draining or closed")
        timeout = (
            request.timeout if request.timeout is not None
            else self.config.default_timeout
        )
        deadline = Deadline(timeout) if timeout is not None else None
        job = _Job(request, lambda: self._evaluate(request), deadline)
        if nowait or self.config.backpressure == "reject":
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                if self.config.backpressure == "reject":
                    METRICS.inc("service.requests")
                    METRICS.inc("service.rejected")
                raise QueueFullError(
                    f"request queue full ({self.config.max_pending} pending); "
                    "retry after backoff"
                ) from None
            METRICS.inc("service.requests")
        else:
            METRICS.inc("service.requests")
            self._block_until_admitted(job, deadline)
        return PendingRequest(job)

    def _block_until_admitted(
        self, job: _Job, deadline: Optional[Deadline]
    ) -> None:
        """``backpressure="block"``: wait for queue space, but never past
        the request's own deadline (and never once the service closes)."""
        while True:
            wait = 0.05
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    METRICS.inc("service.rejected")
                    deadline.check()  # raises EvaluationTimeout
                wait = min(wait, remaining)
            try:
                self._queue.put(job, timeout=wait)
                return
            except queue.Full:
                if self._closed:
                    raise ServiceClosedError(
                        "service closed while waiting for queue space"
                    ) from None

    def execute(self, request: RunRequest) -> ServiceResponse:
        """Submit and wait; admission failures become structured errors."""
        try:
            pending = self.submit(request)
        except ReproError as exc:
            return ServiceResponse(ok=False, error=classify_error(exc))
        return pending.wait()

    def execute_batch(self, requests: list[RunRequest]) -> list[ServiceResponse]:
        """Run a batch through the pool; responses keep request order.

        Items rejected at admission get structured *overloaded* errors in
        their slot — one saturated batch never raises out of the call.
        """
        METRICS.inc("service.batches")
        pending: list[Union[PendingRequest, ServiceResponse]] = []
        for request in requests:
            try:
                pending.append(self.submit(request))
            except ReproError as exc:
                pending.append(ServiceResponse(ok=False, error=classify_error(exc)))
        return [
            p if isinstance(p, ServiceResponse) else p.wait() for p in pending
        ]

    # ------------------------------------------------------------ lifecycle

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission and shut the pool down.

        ``drain=True`` lets queued requests finish (their own deadlines
        still apply); ``drain=False`` fails pending requests with a
        retryable *unavailable* error.  ``timeout`` bounds the join on
        each worker thread.
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not _SENTINEL:
                    job.outcome = (
                        "error",
                        ServiceClosedError("service shut down before execution"),
                    )
                    job.event.set()
                    job.fire_callbacks()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for t in self._workers:
            t.join(timeout)
        if self._coordinator is not None:
            self._coordinator.close()
        if self._warm is not None:
            # Spill after the pool stops: the cache holds everything this
            # process compiled, and the next boot warm-starts from it.
            self.spill_warm()

    def spill_warm(self) -> Optional[dict]:
        """Persist the automaton cache to the warm directory (if any).

        Called automatically by :meth:`close`; callable explicitly for
        checkpoint-style spills of a long-running service.  Returns the
        spill counters, or ``None`` when no ``warm_dir`` is configured.
        """
        if self._warm is None:
            return None
        return self._warm.spill(self._cache)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Service-level gauges plus the shared cache's counters."""
        snapshot = METRICS.snapshot()
        service_counters = {
            name: value
            for name, value in snapshot.items()
            if name.startswith(("service.", "delta."))
        }
        with self._registry_lock:
            entries = list(self._databases.values())
        versions = {
            entry.name: {
                "head": entry.versioned.head.version
                if entry.versioned is not None
                else 0,
                "retained": len(entry.versioned.versions())
                if entry.versioned is not None
                else 1,
                "plan_epoch": entry.plan_epoch,
            }
            for entry in entries
        }
        out = {
            "workers": self.config.workers,
            "max_pending": self.config.max_pending,
            "backpressure": self.config.backpressure,
            "pending": self._queue.qsize(),
            "closed": self._closed,
            "databases": self.database_names(),
            "versions": versions,
            "cache": self._cache.stats(),
            "codegen_cache": _codegen_closure_stats(),
            "counters": service_counters,
        }
        if self._coordinator is not None:
            out["sharding"] = self._coordinator.stats()
        if self._warm is not None:
            out["warmstart"] = self._warm.stats()
        return out

    # ------------------------------------------------------------- internals

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                return
            self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        job.started_at = time.monotonic()
        queue_wait = job.started_at - job.submitted_at
        METRICS.add_time("service.queue_wait_seconds", queue_wait)
        t0 = time.perf_counter()
        try:
            if job.cancelled:
                # The submitter abandoned the request while it was still
                # queued (e.g. a streaming client disconnected): reclaim
                # the worker without touching the engines.
                raise RequestCancelledError(
                    "request cancelled before execution"
                )
            with deadline_scope(job.deadline):
                if job.deadline is not None:
                    # Queue wait counts against the budget: a request that
                    # already missed its deadline is dropped before any
                    # engine work starts.
                    job.deadline.check()
                payload = job.fn()
            METRICS.inc("service.ok")
            job.outcome = ("ok", payload)
        except BaseException as exc:  # never kill a worker on a bad request
            if job.cancelled and isinstance(
                exc, (EvaluationTimeout, RequestCancelledError)
            ):
                # In-flight cancellation surfaces as the expired deadline's
                # EvaluationTimeout; report it as what it was.
                METRICS.inc("service.cancelled")
                exc = (
                    exc if isinstance(exc, RequestCancelledError)
                    else RequestCancelledError(
                        "request cancelled mid-execution (submitter "
                        "disconnected); partial work discarded"
                    )
                )
            elif isinstance(exc, EvaluationTimeout):
                METRICS.inc("service.timeouts")
            else:
                METRICS.inc("service.errors")
            job.outcome = ("error", exc)
        finally:
            job.exec_seconds = time.perf_counter() - t0
            METRICS.add_time("service.exec_seconds", job.exec_seconds)
            job.event.set()
            job.fire_callbacks()

    def _evaluate(self, request: RunRequest) -> dict:
        """Plan (cached) and execute one request on the worker thread."""
        if isinstance(request.query, PreparedQuery):
            prepared = request.query
        else:
            prepared = self.prepare(request.query, request.structure)
        entry = self._entry(request.database)
        plan = prepared.plan_for(entry, engine=request.engine,
                                 slack=request.slack)
        result = execute_plan(plan, entry.database, cache=self._cache)
        finite = result.is_finite()
        if finite:
            rows = sorted(result.as_set())
        elif request.limit is not None:
            rows = sorted(result.tuples(limit=request.limit))
        else:
            raise UnsafeQueryError(
                "query output is infinite; pass limit= to sample it"
            )
        return {
            "columns": list(result.variables),
            "rows": [list(t) for t in rows],
            "engine": plan.engine,
            "finite": finite,
        }
