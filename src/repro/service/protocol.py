"""The NDJSON wire protocol: one JSON request per line, one response per line.

Every request is a JSON object with an ``"op"`` and an optional ``"id"``
(echoed verbatim on the response, so clients can pipeline).  Every
response is ``{"id": ..., "ok": true, ...}`` on success or
``{"id": ..., "ok": false, "error": {"code", "message", "retryable"}}``
on failure — the server never emits a traceback.  The protocol is
transport-agnostic; :mod:`repro.service.server` runs it over stdio and
TCP, and :mod:`repro.service.client` speaks it from Python.

Operations
----------

``ping``
    ``{"op": "ping"}`` → ``{"pong": true, "version": 1}``.
``register_db``
    ``{"op": "register_db", "name": "main", "db": {"alphabet": "01",
    "relations": {"R": [["0110"], ["001"]]}}}`` → the fingerprint.  Same
    JSON shape as ``--db`` files.  An optional ``"schema"`` object
    (``{"T": 2}``) pins relation arities — without it an *empty*
    relation defaults to arity 1, which matters for shard partitions
    where a relation can be empty on one worker but binary on another.
``unregister_db``
    ``{"op": "unregister_db", "name": "main"}`` → ``{"name": ...,
    "removed": true|false}`` — drops the name from the registry (and,
    under sharding, its partitions and routes).
``list_dbs``
    → ``{"databases": [...]}``.
``insert`` / ``delete``
    ``{"op": "insert", "db": "main", "relation": "R", "rows": [["01"],
    ["0110"]]}`` → the new head version summary (``version``,
    ``fingerprint``, ``tuples``, ``plan_epoch``).
    Deltas are O(|delta|): the registered snapshot evolves through the
    MVCC delta store (:mod:`repro.delta`), in-flight queries keep their
    pinned snapshot, caches are maintained incrementally, and prepared
    queries re-plan only when the schema or active domain shifted
    (``plan_epoch``).  ``insert`` into an unknown relation extends the
    schema; ``delete`` from one is an error.
``db_versions``
    ``{"op": "db_versions", "name": "main"}`` → ``{"versions": [...]}``
    — retained version summaries, oldest first.
``prepare``
    ``{"op": "prepare", "query": "R(x)", "structure": "S"}`` → a handle id
    (``{"prepared": "p1", ...}``) usable in later ``run``/``batch`` items.
``run``
    ``{"op": "run", "query": "R(x)", "db": "main"}`` (or ``"prepared":
    "p1"`` instead of ``"query"``) plus optional ``structure``, ``engine``,
    ``slack``, ``limit``, and ``timeout_ms`` — the per-request deadline,
    counted from admission.  → columns/rows/engine/finite + timings.

    With ``"stream": true`` the answer is **paginated** instead of one
    giant line: the server emits zero or more ``row_batch`` frames
    followed by exactly one terminal ``done`` frame, every frame echoing
    the request ``id``::

        {"id": 7, "frame": "row_batch", "seq": 0, "columns": ["x"],
         "rows": [["001"], ["01"]]}
        {"id": 7, "frame": "row_batch", "seq": 1, "rows": [["0110"]]}
        {"id": 7, "frame": "done", "ok": true, "row_count": 3,
         "batches": 2, "engine": "automata", "finite": true,
         "queue_ms": 0.1, "exec_ms": 2.3}

    ``page_size`` caps rows per frame (default: the service's
    ``stream_page_size``); ``columns`` rides only on the first frame.
    Failures skip straight to a ``done`` frame with ``"ok": false`` and
    the structured error.  Frames for one request are contiguous — the
    NDJSON stream never interleaves two answers — and a client that
    disconnects mid-stream has its request cancelled cooperatively
    server-side.  ``stream`` is not accepted inside ``batch`` items.
``batch``
    ``{"op": "batch", "requests": [<run bodies>]}`` — items fan out
    across the worker pool concurrently; the ``results`` list keeps
    request order and holds one per-item response body each (a malformed
    or rejected item gets a structured error in its slot).
``stats``
    → ``{"stats": {...}}`` (workers, queue depth, cache + service counters).
``shutdown``
    ``{"op": "shutdown", "drain": true}`` — acknowledge, then stop the
    server; ``drain`` decides whether queued requests finish or fail.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Optional

from repro.core.query import StringDatabase
from repro.errors import ServiceError
from repro.service.service import (
    PreparedQuery,
    QueryService,
    RunRequest,
    ServiceResponse,
    classify_error,
)

__all__ = [
    "Dispatcher",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "stream_frames",
]

PROTOCOL_VERSION = 1


class ProtocolError(ServiceError):
    """A request line the protocol cannot make sense of (not retryable)."""


def _require_str(obj: dict, key: str) -> str:
    value = obj.get(key)
    if not isinstance(value, str):
        raise ProtocolError(f'request needs a string "{key}" field')
    return value


def _optional_number(obj: dict, key: str) -> Optional[float]:
    value = obj.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f'"{key}" must be a number')
    return float(value)


def stream_frames(
    request_id: Any, response: ServiceResponse, page_size: int
) -> list[dict]:
    """Slice one finished response into its streamed wire frames.

    Shared by every transport (sync stdio, asyncio TCP): ``row_batch``
    frames of at most ``page_size`` rows — at least one even for empty
    answers, so clients always learn the columns — then the terminal
    ``done`` frame carrying the summary (or, on failure, just the
    ``done`` frame with the structured error).
    """
    timings = {
        "queue_ms": round(response.queue_seconds * 1000, 3),
        "exec_ms": round(response.exec_seconds * 1000, 3),
    }
    if not response.ok:
        assert response.error is not None
        return [{
            "id": request_id,
            "frame": "done",
            "ok": False,
            "error": response.error.to_dict(),
            **timings,
        }]
    rows = response.rows or []
    frames: list[dict] = []
    for seq, start in enumerate(range(0, len(rows), page_size) or (0,)):
        frame: dict[str, Any] = {
            "id": request_id,
            "frame": "row_batch",
            "seq": seq,
            "rows": rows[start:start + page_size],
        }
        if seq == 0:
            frame["columns"] = response.columns
        frames.append(frame)
    frames.append({
        "id": request_id,
        "frame": "done",
        "ok": True,
        "row_count": len(rows),
        "batches": len(frames),
        "engine": response.engine,
        "finite": response.finite,
        **timings,
    })
    return frames


class Dispatcher:
    """Maps decoded protocol requests onto a :class:`QueryService`.

    One dispatcher serves a whole server (all TCP connections share it),
    so prepared-query handles are registered under a locked counter and a
    handle created on one connection is usable from another.
    """

    def __init__(self, service: QueryService, allow_shutdown: bool = True):
        self.service = service
        self.allow_shutdown = allow_shutdown
        self.shutdown_drain = True
        self._prepared: dict[str, PreparedQuery] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------- plumbing

    def handle_line(self, line: str) -> tuple[Optional[str], bool]:
        """One request line in, one encoded response line (or ``None`` for
        blank input) out, plus a shutdown flag."""
        line = line.strip()
        if not line:
            return None, False
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            error = classify_error(ProtocolError(f"request is not valid JSON: {exc}"))
            return (
                json.dumps({"id": None, "ok": False, "error": error.to_dict()}),
                False,
            )
        response, shutdown = self.handle(obj)
        return json.dumps(response), shutdown

    def handle(self, obj: Any) -> tuple[dict, bool]:
        """Dispatch one decoded request; never raises."""
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            if not isinstance(obj, dict):
                raise ProtocolError("request must be a JSON object")
            op = obj.get("op")
            if not isinstance(op, str):
                raise ProtocolError('request needs a string "op" field')
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                known = sorted(
                    name[4:] for name in dir(self) if name.startswith("_op_")
                )
                raise ProtocolError(
                    f"unknown op {op!r} (known: {', '.join(known)})"
                )
            body, shutdown = handler(obj)
        except Exception as exc:
            body, shutdown = (
                {"ok": False, "error": classify_error(exc).to_dict()},
                False,
            )
        response = {"id": request_id}
        response.update(body)
        response.setdefault("ok", True)
        return response, shutdown

    def handle_line_multi(self, line: str) -> tuple[list[str], bool]:
        """Like :meth:`handle_line`, but a request may produce *several*
        response lines: a streamed ``run`` yields its ``row_batch``
        frames plus the ``done`` frame.  This is the entry point for
        synchronous transports (the stdio adapter); the asyncio server
        streams natively and only shares :func:`stream_frames`."""
        stripped = line.strip()
        if not stripped:
            return [], False
        try:
            obj = json.loads(stripped)
        except json.JSONDecodeError:
            encoded, shutdown = self.handle_line(line)
            return ([encoded] if encoded is not None else []), shutdown
        if (
            isinstance(obj, dict)
            and obj.get("op") == "run"
            and obj.get("stream")
        ):
            request_id = obj.get("id")
            try:
                page_size = self.stream_page_size(obj)
                request = self._request_from(obj)
            except Exception as exc:
                return [json.dumps({
                    "id": request_id,
                    "ok": False,
                    "error": classify_error(exc).to_dict(),
                })], False
            response = self.service.execute(request)
            return [
                json.dumps(frame)
                for frame in stream_frames(request_id, response, page_size)
            ], False
        response, shutdown = self.handle(obj)
        return [json.dumps(response)], shutdown

    def stream_page_size(self, obj: dict) -> int:
        """The validated ``page_size`` of a streamed run (service default
        when absent); also validates the ``stream`` flag itself."""
        stream = obj.get("stream")
        if not isinstance(stream, bool):
            raise ProtocolError('"stream" must be a boolean')
        page_size = obj.get("page_size")
        if page_size is None:
            return self.service.config.stream_page_size
        if (
            isinstance(page_size, bool)
            or not isinstance(page_size, int)
            or page_size < 1
        ):
            raise ProtocolError('"page_size" must be a positive integer')
        return page_size

    # ------------------------------------------------------------------ ops

    def _op_ping(self, obj: dict) -> tuple[dict, bool]:
        return {"pong": True, "version": PROTOCOL_VERSION}, False

    def _op_register_db(self, obj: dict) -> tuple[dict, bool]:
        name = _require_str(obj, "name")
        spec = obj.get("db")
        if not isinstance(spec, dict):
            raise ProtocolError(
                '"db" must be an object {"alphabet": ..., "relations": ...}'
            )
        relations_spec = spec.get("relations", {})
        if not isinstance(relations_spec, dict):
            raise ProtocolError('"relations" must map names to row lists')
        relations = {}
        for rel, rows in relations_spec.items():
            if not isinstance(rows, list):
                raise ProtocolError(f"relation {rel!r} must be a list of rows")
            relations[rel] = [
                (row,) if isinstance(row, str) else tuple(row) for row in rows
            ]
        schema_spec = spec.get("schema")
        schema = None
        if schema_spec is not None:
            from repro.database.schema import Schema

            if not isinstance(schema_spec, dict) or not all(
                isinstance(a, int) and not isinstance(a, bool)
                for a in schema_spec.values()
            ):
                raise ProtocolError(
                    '"schema" must map relation names to integer arities'
                )
            schema = Schema(schema_spec)
        db = StringDatabase(spec.get("alphabet", "01"), relations, schema=schema)
        fingerprint = self.service.register_database(name, db)
        return {"name": name, "fingerprint": fingerprint}, False

    def _op_unregister_db(self, obj: dict) -> tuple[dict, bool]:
        name = _require_str(obj, "name")
        removed = self.service.unregister_database(name)
        return {"name": name, "removed": removed}, False

    def _op_list_dbs(self, obj: dict) -> tuple[dict, bool]:
        return {"databases": self.service.database_names()}, False

    def _op_insert(self, obj: dict) -> tuple[dict, bool]:
        return self._delta_op(obj, "insert")

    def _op_delete(self, obj: dict) -> tuple[dict, bool]:
        return self._delta_op(obj, "delete")

    def _delta_op(self, obj: dict, op: str) -> tuple[dict, bool]:
        name = _require_str(obj, "db")
        relation = _require_str(obj, "relation")
        rows_spec = obj.get("rows")
        if not isinstance(rows_spec, list):
            raise ProtocolError('"rows" must be a list of rows')
        rows = [
            (row,) if isinstance(row, str) else tuple(row) for row in rows_spec
        ]
        if op == "insert":
            head = self.service.insert_rows(name, relation, rows)
        else:
            head = self.service.delete_rows(name, relation, rows)
        # A delta that changed nothing returns the unchanged head — the
        # client sees the same version number as before.
        return {
            "name": name,
            "version": head.version,
            "fingerprint": head.fingerprint,
            "tuples": head.database.size,
            "plan_epoch": head.plan_epoch,
        }, False

    def _op_db_versions(self, obj: dict) -> tuple[dict, bool]:
        name = _require_str(obj, "name")
        return {
            "name": name,
            "versions": self.service.database_versions(name),
        }, False

    def _op_prepare(self, obj: dict) -> tuple[dict, bool]:
        query = _require_str(obj, "query")
        structure = obj.get("structure", "S")
        handle = self.service.prepare(query, structure)
        with self._lock:
            pid = f"p{next(self._counter)}"
            self._prepared[pid] = handle
        return {
            "prepared": pid,
            "variables": sorted(handle.formula.free_variables()),
        }, False

    def _op_run(self, obj: dict) -> tuple[dict, bool]:
        if obj.get("stream"):
            # Streamed runs are routed by the transports (handle_line_multi
            # / the asyncio server); reaching the single-response path
            # means the transport cannot interleave frames.
            raise ProtocolError(
                "streamed run is not supported on this transport path"
            )
        response = self.service.execute(self._request_from(obj))
        return response.to_dict(), False

    def _op_batch(self, obj: dict) -> tuple[dict, bool]:
        items = obj.get("requests")
        if not isinstance(items, list):
            raise ProtocolError('"requests" must be a list of run bodies')
        # Malformed items get a structured error in their slot; the
        # well-formed rest still fans out across the pool together.
        parsed: list[Any] = []
        for item in items:
            try:
                if not isinstance(item, dict):
                    raise ProtocolError("batch items must be objects")
                if item.get("stream"):
                    raise ProtocolError(
                        '"stream" is not supported inside batch items; '
                        "issue separate streamed run ops"
                    )
                parsed.append(self._request_from(item))
            except Exception as exc:
                parsed.append(
                    {"ok": False, "error": classify_error(exc).to_dict()}
                )
        runnable = [p for p in parsed if isinstance(p, RunRequest)]
        responses = iter(self.service.execute_batch(runnable))
        results = [
            next(responses).to_dict() if isinstance(p, RunRequest) else p
            for p in parsed
        ]
        return {"results": results}, False

    def _op_stats(self, obj: dict) -> tuple[dict, bool]:
        return {"stats": self.service.stats()}, False

    def _op_shutdown(self, obj: dict) -> tuple[dict, bool]:
        if not self.allow_shutdown:
            raise ProtocolError("shutdown is disabled on this server")
        self.shutdown_drain = bool(obj.get("drain", True))
        return {"closing": True, "drain": self.shutdown_drain}, True

    # -------------------------------------------------------------- helpers

    def _request_from(self, obj: dict) -> RunRequest:
        if "prepared" in obj:
            pid = _require_str(obj, "prepared")
            with self._lock:
                query = self._prepared.get(pid)
            if query is None:
                raise ProtocolError(f"unknown prepared query {pid!r}")
        else:
            query = _require_str(obj, "query")
        timeout_ms = _optional_number(obj, "timeout_ms")
        limit = obj.get("limit")
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise ProtocolError('"limit" must be an integer')
        return RunRequest(
            query=query,
            database=_require_str(obj, "db"),
            structure=obj.get("structure", "S"),
            engine=obj.get("engine"),
            slack=obj.get("slack"),
            limit=limit,
            timeout=timeout_ms / 1000.0 if timeout_ms is not None else None,
        )
