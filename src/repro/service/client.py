"""A blocking NDJSON-over-TCP client for the query service.

Used by the tests and ``benchmarks/bench_service.py``; also a reference
for speaking the protocol from anything that can write JSON lines to a
socket.  One client holds one connection and runs one request at a time
(a lock serializes callers); open several clients for concurrency — the
server multiplexes them onto its single worker pool.

Usage::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", port) as client:
        client.register_db("main", "01", {"R": [["0110"], ["001"]]})
        resp = client.run("R(x) & last(x, '0')", db="main", timeout_ms=500)
        resp["ok"], resp["rows"]        # True, [["0110"]]
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from typing import Any, Optional

from repro.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """See module docstring.  Raises :class:`~repro.errors.ServiceError`
    on transport failures; protocol-level errors come back as structured
    ``{"ok": false, "error": ...}`` responses, not exceptions."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to query service at {host}:{port}: {exc}"
            ) from None
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------ transport

    def request(self, payload: dict) -> dict:
        """Send one request object (an ``id`` is added) and await its reply."""
        body = dict(payload)
        body.setdefault("id", next(self._ids))
        data = (json.dumps(body) + "\n").encode("utf-8")
        with self._lock:
            try:
                self._file.write(data)
                self._file.flush()
                raw = self._file.readline()
            except OSError as exc:
                raise ServiceError(f"query service connection failed: {exc}") from None
        if not raw:
            raise ServiceError("query service closed the connection")
        response = json.loads(raw.decode("utf-8"))
        if response.get("id") != body["id"]:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {body['id']!r}"
            )
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- ops

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def register_db(
        self, name: str, alphabet: str, relations: dict[str, list]
    ) -> dict:
        return self.request({
            "op": "register_db",
            "name": name,
            "db": {"alphabet": alphabet, "relations": relations},
        })

    def unregister_db(self, name: str) -> dict:
        return self.request({"op": "unregister_db", "name": name})

    def list_dbs(self) -> dict:
        return self.request({"op": "list_dbs"})

    def insert(self, db: str, relation: str, rows: list) -> dict:
        """Apply an insert delta; returns the new head version summary."""
        return self.request({
            "op": "insert", "db": db, "relation": relation, "rows": rows,
        })

    def delete(self, db: str, relation: str, rows: list) -> dict:
        """Apply a delete delta; returns the new head version summary."""
        return self.request({
            "op": "delete", "db": db, "relation": relation, "rows": rows,
        })

    def db_versions(self, name: str) -> dict:
        return self.request({"op": "db_versions", "name": name})

    def prepare(self, query: str, structure: str = "S") -> dict:
        return self.request({
            "op": "prepare", "query": query, "structure": structure,
        })

    def run(
        self,
        query: Optional[str] = None,
        db: str = "main",
        prepared: Optional[str] = None,
        **options: Any,
    ) -> dict:
        """``run`` with query text or a ``prepared`` handle id; extra
        keywords (``structure``, ``engine``, ``slack``, ``limit``,
        ``timeout_ms``) pass through to the protocol."""
        body: dict[str, Any] = {"op": "run", "db": db, **options}
        if prepared is not None:
            body["prepared"] = prepared
        else:
            body["query"] = query
        return self.request(body)

    def batch(self, requests: list[dict]) -> dict:
        return self.request({"op": "batch", "requests": requests})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self, drain: bool = True) -> dict:
        return self.request({"op": "shutdown", "drain": drain})
