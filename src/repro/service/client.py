"""NDJSON-over-TCP clients for the query service: sync facade + asyncio.

:class:`ServiceClient` is the blocking client used by the tests and
``benchmarks/bench_service.py`` — also a reference for speaking the
protocol from anything that can write JSON lines to a socket.  One
client holds one connection and runs one request at a time (a lock
serializes callers); open several clients for concurrency — the server
multiplexes them onto its single worker pool.

Every read is bounded by a **read deadline** (``read_timeout``, falling
back to the connect ``timeout``): a hung or wedged server raises the
structured, retryable :class:`~repro.errors.ClientReadTimeoutError`
instead of blocking the caller forever.  After a read timeout the
connection is desynchronized (a late response line would answer the
wrong request), so the client closes it and refuses further use — open a
fresh client to retry.

:class:`AsyncServiceClient` is the asyncio sibling for callers already
on an event loop (and for the concurrent-client benchmark): same verbs,
``await``-shaped, hundreds of instances multiplex on one loop without
threads.

Usage::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", port) as client:
        client.register_db("main", "01", {"R": [["0110"], ["001"]]})
        resp = client.run("R(x) & last(x, '0')", db="main", timeout_ms=500)
        resp["ok"], resp["rows"]        # True, [["0110"]]
        for frame in client.run_stream("R(x)", db="main", page_size=100):
            ...                         # row_batch frames, then done
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import threading
from typing import Any, AsyncIterator, Iterator, Optional

from repro.errors import ClientReadTimeoutError, ServiceError

__all__ = ["AsyncServiceClient", "ServiceClient"]

#: Per-line read limit for the asyncio client (mirrors the server's:
#: a large answer frame must not trip asyncio's 64 KiB default).
_READ_LIMIT = 16 * 1024 * 1024


def _stream_body(
    query: Optional[str],
    db: str,
    prepared: Optional[str],
    page_size: Optional[int],
    options: dict,
) -> dict:
    body: dict[str, Any] = {"op": "run", "db": db, "stream": True, **options}
    if prepared is not None:
        body["prepared"] = prepared
    else:
        body["query"] = query
    if page_size is not None:
        body["page_size"] = page_size
    return body


class ServiceClient:
    """See module docstring.  Raises :class:`~repro.errors.ServiceError`
    on transport failures (:class:`~repro.errors.ClientReadTimeoutError`
    for an expired read deadline); protocol-level errors come back as
    structured ``{"ok": false, "error": ...}`` responses, not exceptions.

    ``timeout`` bounds the TCP connect; ``read_timeout`` bounds each
    response read (defaults to ``timeout``; pass ``None`` explicitly
    for unbounded reads, e.g. when streaming a query with no deadline).
    """

    _UNSET = object()

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        read_timeout: Any = _UNSET,
    ):
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to query service at {host}:{port}: {exc}"
            ) from None
        self.read_timeout = (
            timeout if read_timeout is ServiceClient._UNSET else read_timeout
        )
        self._sock.settimeout(self.read_timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._broken = False

    # ------------------------------------------------------------ transport

    def request(self, payload: dict) -> dict:
        """Send one request object (an ``id`` is added) and await its reply."""
        body = dict(payload)
        body.setdefault("id", next(self._ids))
        with self._lock:
            self._send(body)
            response = self._read_response()
        if response.get("id") != body["id"]:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {body['id']!r}"
            )
        return response

    def _send(self, body: dict) -> None:
        if self._broken:
            raise ServiceError(
                "connection is unusable after a read timeout; "
                "open a fresh ServiceClient"
            )
        data = (json.dumps(body) + "\n").encode("utf-8")
        try:
            self._file.write(data)
            self._file.flush()
        except OSError as exc:
            raise ServiceError(
                f"query service connection failed: {exc}"
            ) from None

    def _read_response(self) -> dict:
        try:
            raw = self._file.readline()
        except socket.timeout:
            # A late response line would be attributed to the *next*
            # request — the connection is desynchronized, retire it.
            self._broken = True
            try:
                self.close()
            except OSError:
                pass
            raise ClientReadTimeoutError(
                f"no response from query service within "
                f"{self.read_timeout:.6g}s; connection closed — reconnect "
                "and retry"
            ) from None
        except OSError as exc:
            raise ServiceError(
                f"query service connection failed: {exc}"
            ) from None
        if not raw:
            raise ServiceError("query service closed the connection")
        return json.loads(raw.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- ops

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def register_db(
        self, name: str, alphabet: str, relations: dict[str, list]
    ) -> dict:
        return self.request({
            "op": "register_db",
            "name": name,
            "db": {"alphabet": alphabet, "relations": relations},
        })

    def unregister_db(self, name: str) -> dict:
        return self.request({"op": "unregister_db", "name": name})

    def list_dbs(self) -> dict:
        return self.request({"op": "list_dbs"})

    def insert(self, db: str, relation: str, rows: list) -> dict:
        """Apply an insert delta; returns the new head version summary."""
        return self.request({
            "op": "insert", "db": db, "relation": relation, "rows": rows,
        })

    def delete(self, db: str, relation: str, rows: list) -> dict:
        """Apply a delete delta; returns the new head version summary."""
        return self.request({
            "op": "delete", "db": db, "relation": relation, "rows": rows,
        })

    def db_versions(self, name: str) -> dict:
        return self.request({"op": "db_versions", "name": name})

    def prepare(self, query: str, structure: str = "S") -> dict:
        return self.request({
            "op": "prepare", "query": query, "structure": structure,
        })

    def run(
        self,
        query: Optional[str] = None,
        db: str = "main",
        prepared: Optional[str] = None,
        **options: Any,
    ) -> dict:
        """``run`` with query text or a ``prepared`` handle id; extra
        keywords (``structure``, ``engine``, ``slack``, ``limit``,
        ``timeout_ms``) pass through to the protocol."""
        body: dict[str, Any] = {"op": "run", "db": db, **options}
        if prepared is not None:
            body["prepared"] = prepared
        else:
            body["query"] = query
        return self.request(body)

    def run_stream(
        self,
        query: Optional[str] = None,
        db: str = "main",
        prepared: Optional[str] = None,
        page_size: Optional[int] = None,
        **options: Any,
    ) -> Iterator[dict]:
        """A streamed ``run``: yields each frame (``row_batch`` frames in
        order, then the terminal ``done`` frame) as it arrives.

        The connection lock is held until the ``done`` frame (or the
        generator is closed) — frames of one answer are contiguous on
        the wire, so interleaving another request would desynchronize.
        """
        body = _stream_body(query, db, prepared, page_size, options)
        body.setdefault("id", next(self._ids))
        with self._lock:
            self._send(body)
            while True:
                frame = self._read_response()
                if frame.get("id") != body["id"]:
                    raise ServiceError(
                        f"frame id {frame.get('id')!r} does not match "
                        f"request id {body['id']!r}"
                    )
                yield frame
                if frame.get("frame") != "row_batch":
                    return

    def run_stream_rows(self, *args: Any, **kwargs: Any) -> list:
        """Convenience: collect a streamed run's rows (raises
        :class:`ServiceError` if the ``done`` frame reports a failure)."""
        rows: list = []
        for frame in self.run_stream(*args, **kwargs):
            if frame.get("frame") == "row_batch":
                rows.extend(frame.get("rows") or [])
            elif not frame.get("ok"):
                error = frame.get("error") or {}
                raise ServiceError(
                    f"streamed run failed: {error.get('code')}: "
                    f"{error.get('message')}"
                )
        return rows

    def batch(self, requests: list[dict]) -> dict:
        return self.request({"op": "batch", "requests": requests})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self, drain: bool = True) -> dict:
        return self.request({"op": "shutdown", "drain": drain})


class AsyncServiceClient:
    """The asyncio client: same protocol verbs, ``await``-shaped.

    Build with :meth:`connect`; hundreds of instances share one event
    loop (the concurrent-client benchmark drives 512 this way).  Reads
    are bounded by ``read_timeout`` exactly like the sync client.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_timeout: Optional[float],
    ):
        self._reader = reader
        self._writer = writer
        self.read_timeout = read_timeout
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()
        self._broken = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        read_timeout: Optional[float] = None,
    ) -> "AsyncServiceClient":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=_READ_LIMIT),
                timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(
                f"cannot connect to query service at {host}:{port}: {exc}"
            ) from None
        return cls(reader, writer, read_timeout)

    # ------------------------------------------------------------ transport

    async def request(self, payload: dict) -> dict:
        body = dict(payload)
        body.setdefault("id", next(self._ids))
        async with self._lock:
            await self._send(body)
            response = await self._read_response()
        if response.get("id") != body["id"]:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {body['id']!r}"
            )
        return response

    async def _send(self, body: dict) -> None:
        if self._broken:
            raise ServiceError(
                "connection is unusable after a read timeout; reconnect"
            )
        try:
            self._writer.write((json.dumps(body) + "\n").encode("utf-8"))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"query service connection failed: {exc}"
            ) from None

    async def _read_response(self) -> dict:
        try:
            raw = await asyncio.wait_for(
                self._reader.readline(), self.read_timeout
            )
        except asyncio.TimeoutError:
            self._broken = True
            await self.close()
            raise ClientReadTimeoutError(
                f"no response from query service within "
                f"{self.read_timeout:.6g}s; connection closed — reconnect "
                "and retry"
            ) from None
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"query service connection failed: {exc}"
            ) from None
        if not raw:
            raise ServiceError("query service closed the connection")
        return json.loads(raw.decode("utf-8"))

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ----------------------------------------------------------------- ops

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def register_db(
        self, name: str, alphabet: str, relations: dict[str, list]
    ) -> dict:
        return await self.request({
            "op": "register_db",
            "name": name,
            "db": {"alphabet": alphabet, "relations": relations},
        })

    async def prepare(self, query: str, structure: str = "S") -> dict:
        return await self.request({
            "op": "prepare", "query": query, "structure": structure,
        })

    async def run(
        self,
        query: Optional[str] = None,
        db: str = "main",
        prepared: Optional[str] = None,
        **options: Any,
    ) -> dict:
        body: dict[str, Any] = {"op": "run", "db": db, **options}
        if prepared is not None:
            body["prepared"] = prepared
        else:
            body["query"] = query
        return await self.request(body)

    async def run_stream(
        self,
        query: Optional[str] = None,
        db: str = "main",
        prepared: Optional[str] = None,
        page_size: Optional[int] = None,
        **options: Any,
    ) -> AsyncIterator[dict]:
        """Async-iterate the frames of a streamed ``run``."""
        body = _stream_body(query, db, prepared, page_size, options)
        body.setdefault("id", next(self._ids))
        async with self._lock:
            await self._send(body)
            while True:
                frame = await self._read_response()
                if frame.get("id") != body["id"]:
                    raise ServiceError(
                        f"frame id {frame.get('id')!r} does not match "
                        f"request id {body['id']!r}"
                    )
                yield frame
                if frame.get("frame") != "row_batch":
                    return

    async def batch(self, requests: list[dict]) -> dict:
        return await self.request({"op": "batch", "requests": requests})

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def shutdown(self, drain: bool = True) -> dict:
        return await self.request({"op": "shutdown", "drain": drain})
