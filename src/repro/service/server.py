"""Transports for the NDJSON protocol: a stdio loop and an asyncio TCP server.

``python -m repro serve --stdio`` runs :func:`serve_stdio` — one request
per stdin line, one response line (or, for streamed runs, several frame
lines) per request, exit 0 on EOF or a ``shutdown`` op.  That shape makes
the service scriptable::

    echo '{"op": "ping"}' | python -m repro serve --stdio

``python -m repro serve --port N`` runs an :class:`AsyncTCPQueryServer`:
a single-threaded **asyncio** front end that multiplexes every
connection onto one event loop — a connection costs one coroutine and
one socket, not one thread, so 10k concurrent clients are just 10k
parked readers.  Query execution still funnels through the *one* shared
:class:`~repro.service.service.QueryService` worker pool; the event loop
never blocks on it:

* ``run`` / ``batch`` are admitted through a per-client
  :class:`~repro.service.quota.TokenBucket` quota and a
  :class:`~repro.service.quota.FairScheduler` (weighted fair queuing
  across connections), then submitted to the pool; completion is
  bridged back by :meth:`~repro.service.service.PendingRequest.
  add_done_callback` + ``call_soon_threadsafe`` — no thread per
  in-flight request, no polling;
* streamed runs (``"stream": true``) write ``row_batch`` frames followed
  by a ``done`` frame (:func:`repro.service.protocol.stream_frames`);
  while a request executes, the connection watches its socket, so a
  client that disconnects mid-answer gets its request **cancelled
  cooperatively** (queued work is skipped, running work aborts at the
  engines' next deadline checkpoint) — a vanished client never leaks a
  worker slot;
* cheap control ops (``ping``) are answered inline on the loop; registry
  ops (``register_db``, ``insert``, ...) run on a small bounded executor
  so fingerprinting a large payload cannot stall unrelated connections;
* ``shutdown`` acknowledges, stops accepting, gives busy connections a
  grace period to finish their current request, cancels the rest, and
  returns from :meth:`~AsyncTCPQueryServer.serve_forever`.

The thread-facing surface is unchanged from the old ``ThreadingTCPServer``
front end (``serve_tcp`` → ``server_address`` / ``serve_forever()`` /
``shutdown()`` / ``close_service()``), so callers and tests drive both
generations identically; ``TCPQueryServer`` remains as an alias.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.engine.metrics import METRICS
from repro.errors import QueueFullError, ServiceClosedError
from repro.service.protocol import Dispatcher, ProtocolError, stream_frames
from repro.service.quota import FairScheduler, TokenBucket, quota_error
from repro.service.service import (
    QueryService,
    RunRequest,
    ServiceResponse,
    classify_error,
)

__all__ = [
    "AsyncTCPQueryServer",
    "TCPQueryServer",
    "serve_stdio",
    "serve_tcp",
]

#: Per-line read limit (bytes).  The asyncio default of 64 KiB would
#: reject a large ``register_db`` payload; database registrations are
#: one JSON line, so give them real headroom.
READ_LIMIT = 16 * 1024 * 1024

#: Far-future deadline installed on async-path requests that asked for
#: no timeout: never fires on its own, but gives cooperative
#: cancellation a handle to pull into the past when the client vanishes
#: (:meth:`repro.engine.deadline.Deadline.cancel`).
_CANCEL_HORIZON = 1e9

#: Seconds a graceful shutdown waits for busy connections to finish
#: their current request before cancelling them.
DRAIN_GRACE = 5.0


def serve_stdio(service: QueryService, stdin=None, stdout=None) -> int:
    """Serve one NDJSON stream; returns 0 on EOF or ``shutdown``.

    The synchronous adapter: one client, one stream, requests handled in
    order — streamed runs emit their frames back-to-back, which needs no
    multiplexing, so this path stays blocking on purpose (it is also
    what the shard worker processes speak over pipes).  The service is
    closed (draining by default; a ``shutdown`` op may ask otherwise)
    before returning, so a clean EOF leaves no worker threads behind.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    dispatcher = Dispatcher(service)
    try:
        for line in stdin:
            outs, shutdown = dispatcher.handle_line_multi(line)
            for out in outs:
                stdout.write(out + "\n")
            if outs:
                stdout.flush()
            if shutdown:
                break
    finally:
        service.close(drain=dispatcher.shutdown_drain)
    return 0


class _LineSource:
    """A readline frontend with pushback.

    While a request executes, the connection keeps one watcher read
    posted on the raw stream to notice EOF (client gone → cancel the
    request).  A watcher that instead catches the *next* pipelined
    request pushes it here, and the main loop drains pushback before
    touching the socket again — order is preserved because at most one
    watcher is ever outstanding.
    """

    __slots__ = ("reader", "_pushback")

    def __init__(self, reader: asyncio.StreamReader):
        self.reader = reader
        self._pushback: list[bytes] = []

    async def readline(self) -> bytes:
        if self._pushback:
            return self._pushback.pop(0)
        return await self.reader.readline()

    def push(self, line: bytes) -> None:
        self._pushback.append(line)


class AsyncTCPQueryServer:
    """The NDJSON protocol over asyncio TCP (see module docstring).

    All connections share one dispatcher (and therefore one worker pool,
    queue bound, and prepared registry) and one fair scheduler; each
    connection gets its own token bucket.  The constructor binds the
    socket immediately (``server_address`` is final once it returns);
    :meth:`serve_forever` runs the loop in the calling thread until
    :meth:`shutdown` is called from any thread or a ``shutdown`` op
    arrives.
    """

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        allow_shutdown: bool = True,
    ):
        self.service = service
        self.dispatcher = Dispatcher(service, allow_shutdown=allow_shutdown)
        cfg = service.config
        backlog = (
            cfg.max_pending if cfg.backpressure == "reject"
            else 4 * cfg.max_pending + 64
        )
        self._scheduler = FairScheduler(max_backlog=backlog)
        self._loop = asyncio.new_event_loop()
        self._closing = False
        self._stopped = threading.Event()
        self._started = False
        self._connections: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self._client_ids = itertools.count(1)
        # Registry/delta ops run here instead of on the loop: bounded, so
        # a burst of registrations cannot grow threads without limit.
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-serve-aux"
        )
        host, port = address

        async def _bind():
            self._shutdown_event = asyncio.Event()
            return await asyncio.start_server(
                self._handle_connection, host, port, limit=READ_LIMIT
            )

        self._server = self._loop.run_until_complete(_bind())
        self.server_address = self._server.sockets[0].getsockname()

    # ----------------------------------------------------------- lifecycle

    def serve_forever(self) -> None:
        """Run the event loop until a shutdown is requested."""
        asyncio.set_event_loop(self._loop)
        self._started = True
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._stopped.set()

    def shutdown(self) -> None:
        """Stop the server from any thread; blocks until
        :meth:`serve_forever` has returned."""
        if self._loop.is_closed() or self._stopped.is_set():
            return
        self.begin_shutdown()
        if self._started:
            self._stopped.wait()

    def begin_shutdown(self) -> None:
        """Request shutdown without blocking (threadsafe)."""
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._shutdown_event.set)

    def close_service(self) -> None:
        """Drain (or not, per the shutdown request) and release resources."""
        self._executor.shutdown(wait=False)
        self.service.close(drain=self.dispatcher.shutdown_drain)
        if not self._loop.is_closed():
            self._loop.close()

    async def _serve(self) -> None:
        pump = self._loop.create_task(self._scheduler.pump(self.service))
        try:
            await self._shutdown_event.wait()
        finally:
            self._closing = True
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            # Graceful drain: busy connections finish their current
            # request (their own deadlines still bound them), idle ones
            # are cancelled outright.
            deadline = self._loop.time() + DRAIN_GRACE
            while self._busy and self._loop.time() < deadline:
                await asyncio.sleep(0.01)
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            self._scheduler.close()
            pump.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pump

    # --------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        client_id = next(self._client_ids)
        cfg = self.service.config
        bucket = TokenBucket(cfg.quota_rate, cfg.quota_burst)
        source = _LineSource(reader)
        METRICS.inc("service.connections")
        try:
            while not self._closing:
                try:
                    line = await source.readline()
                except (ConnectionError, OSError):
                    break
                except (ValueError, asyncio.LimitOverrunError,
                        asyncio.IncompleteReadError):
                    # A request line past READ_LIMIT: the stream can no
                    # longer be framed, so answer with a structured
                    # protocol error and close instead of dying silently.
                    error = classify_error(ProtocolError(
                        f"request line exceeds the {READ_LIMIT}-byte limit"
                    ))
                    await self._write(writer, {
                        "id": None, "ok": False, "error": error.to_dict(),
                    }, swallow=True)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._busy.add(task)
                try:
                    done = await self._process(
                        line, writer, source, bucket, client_id
                    )
                finally:
                    self._busy.discard(task)
                if done:
                    return
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            self._scheduler.forget(client_id)
            self._connections.discard(task)
            self._busy.discard(task)
            with contextlib.suppress(BaseException):
                writer.close()
                await writer.wait_closed()

    async def _process(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        source: _LineSource,
        bucket: TokenBucket,
        client_id: int,
    ) -> bool:
        """Handle one request line; returns True to close the connection."""
        try:
            obj = json.loads(line.decode("utf-8", "replace"))
        except json.JSONDecodeError as exc:
            error = classify_error(
                ProtocolError(f"request is not valid JSON: {exc}")
            )
            await self._write(writer, {
                "id": None, "ok": False, "error": error.to_dict(),
            })
            return False
        op = obj.get("op") if isinstance(obj, dict) else None
        if op == "ping":
            # The liveness probe stays on the loop: a saturated pool or a
            # busy executor must not make the server look dead.
            response, _ = self.dispatcher.handle(obj)
            await self._write(writer, response)
            return False
        if op in ("run", "batch"):
            return await self._query_op(
                obj, op, writer, source, bucket, client_id
            )
        if op == "shutdown":
            response, shutdown = self.dispatcher.handle(obj)
            await self._write(writer, response)
            if shutdown:
                self._shutdown_event.set()
                return True
            return False
        # Registry / stats / prepare ops: off-loop, bounded executor.
        response, _ = await self._loop.run_in_executor(
            self._executor, self.dispatcher.handle, obj
        )
        await self._write(writer, response)
        return False

    # ----------------------------------------------------------- query ops

    async def _query_op(
        self,
        obj: dict,
        op: str,
        writer: asyncio.StreamWriter,
        source: _LineSource,
        bucket: TokenBucket,
        client_id: int,
    ) -> bool:
        request_id = obj.get("id")
        streaming = bool(obj.get("stream")) and op == "run"

        # ---- token-bucket quota (query ops only; control ops are free)
        if op == "batch":
            items = obj.get("requests")
            cost = float(max(1, len(items))) if isinstance(items, list) else 1.0
            # A bucket never holds more than `burst` tokens, so a batch
            # costing more than that could never be admitted: blocking
            # would hang forever and a retry_after hint would be a lie.
            # Fail it up front with a non-retryable structured error.
            if bucket.rate is not None and cost > bucket.burst:
                METRICS.inc("service.quota_rejections")
                return await self._fail(
                    writer, request_id,
                    ProtocolError(
                        f"batch of {int(cost)} items exceeds the "
                        f"per-connection quota burst ({bucket.burst:g}); "
                        "split the batch or raise quota_burst"
                    ),
                )
        else:
            cost = 1.0
        retry_after = bucket.try_acquire(cost)
        if retry_after > 0.0:
            if self.service.config.backpressure == "reject":
                METRICS.inc("service.quota_rejections")
                return await self._fail(
                    writer, request_id, quota_error(retry_after),
                    streaming=streaming,
                    extra={"retry_after": round(retry_after, 3)},
                )
            METRICS.inc("service.quota_delays")
            await bucket.acquire(cost)

        if op == "batch":
            return await self._batch(obj, writer, source, client_id)

        # ---- single run (plain or streamed)
        try:
            page_size = (
                self.dispatcher.stream_page_size(obj) if streaming else 0
            )
            request = self.dispatcher._request_from(obj)
            weight = self._weight_from(obj)
        except Exception as exc:
            return await self._fail(
                writer, request_id, exc, streaming=streaming
            )
        self._make_cancellable(request)
        connected, pending, admission_error = await self._admit(
            request, source, client_id, weight
        )
        if not connected:
            return True
        if admission_error is not None:
            return await self._fail(
                writer, request_id, admission_error, streaming=streaming
            )
        assert pending is not None
        connected, response = await self._finish(pending, source, streaming)
        if not connected:
            return True
        if streaming:
            METRICS.inc("service.streams")
            for frame in stream_frames(request_id, response, page_size):
                if not await self._write(writer, frame, swallow=True):
                    # Peer vanished between frames; execution already
                    # finished, nothing to cancel.
                    return True
            return False
        out = {"id": request_id}
        out.update(response.to_dict())
        await self._write(writer, out)
        return False

    async def _batch(
        self,
        obj: dict,
        writer: asyncio.StreamWriter,
        source: _LineSource,
        client_id: int,
    ) -> bool:
        """Native-async batch: items fan out through the fair scheduler
        and the pool concurrently; the results list keeps request order,
        malformed or rejected items get structured errors in their slot."""
        request_id = obj.get("id")
        items = obj.get("requests")
        if not isinstance(items, list):
            return await self._fail(
                writer, request_id,
                ProtocolError('"requests" must be a list of run bodies'),
            )
        try:
            weight = self._weight_from(obj)
        except ProtocolError as exc:
            return await self._fail(writer, request_id, exc)
        METRICS.inc("service.batches")
        parsed: list[Any] = []
        for item in items:
            try:
                if not isinstance(item, dict):
                    raise ProtocolError("batch items must be objects")
                if item.get("stream"):
                    raise ProtocolError(
                        '"stream" is not supported inside batch items; '
                        "issue separate streamed run ops"
                    )
                request = self.dispatcher._request_from(item)
                self._make_cancellable(request)
                parsed.append(request)
            except Exception as exc:
                parsed.append(
                    {"ok": False, "error": classify_error(exc).to_dict()}
                )
        results: list[Optional[dict]] = []
        pendings: list[tuple[int, Any]] = []
        for index, entry in enumerate(parsed):
            if not isinstance(entry, RunRequest):
                results.append(entry)
                continue
            connected, pending, admission_error = await self._admit(
                entry, source, client_id, weight
            )
            if not connected:
                for _, p in pendings:
                    p.cancel()
                return True
            if admission_error is not None:
                results.append({
                    "ok": False,
                    "error": classify_error(admission_error).to_dict(),
                })
                continue
            results.append(None)
            pendings.append((index, pending))
        for index, pending in pendings:
            connected, response = await self._finish(pending, source, False)
            if not connected:
                for _, p in pendings:
                    if not p.done():
                        p.cancel()
                return True
            results[index] = response.to_dict()
        await self._write(
            writer, {"id": request_id, "ok": True, "results": results}
        )
        return False

    # ------------------------------------------------------------- helpers

    def _make_cancellable(self, request: RunRequest) -> None:
        """Requests without a timeout still get a (far-future) deadline on
        the async path, so disconnect cancellation always has something
        to expire."""
        if (
            request.timeout is None
            and self.service.config.default_timeout is None
        ):
            request.timeout = _CANCEL_HORIZON

    def _weight_from(self, obj: dict) -> float:
        weight = obj.get("weight")
        if weight is None:
            return 1.0
        if (
            isinstance(weight, bool)
            or not isinstance(weight, (int, float))
            or weight <= 0
        ):
            raise ProtocolError('"weight" must be a positive number')
        return float(weight)

    async def _admit(
        self,
        request: RunRequest,
        source: _LineSource,
        client_id: int,
        weight: float,
    ):
        """Fair-queue ``request`` into the pool, watching for disconnect.

        Returns ``(connected, pending, admission_error)``.
        """
        admission_timeout = (
            0.0 if self.service.config.backpressure == "reject"
            else request.timeout
        )
        # nowait=True: a full queue raises QueueFullError to the pump
        # instead of parking the event loop in queue.put — in block mode
        # the pump's asyncio.sleep backoff supplies the waiting, so the
        # server stays responsive (pings, disconnects) under saturation.
        fut = self._scheduler.schedule(
            client_id,
            lambda: self.service.submit(request, nowait=True),
            weight=weight,
            timeout=admission_timeout,
        )
        connected = await self._watch(fut, source, fut.cancel)
        if not connected:
            return False, None, None
        try:
            return True, fut.result(), None
        except (QueueFullError, ServiceClosedError, Exception) as exc:
            return True, None, exc

    async def _finish(self, pending, source: _LineSource, streaming: bool):
        """Await a submitted request's completion, watching for disconnect.

        Returns ``(connected, response)``; on disconnect the request is
        cancelled cooperatively and ``response`` is ``None``.
        """
        fut: asyncio.Future = self._loop.create_future()

        def _resolve() -> None:
            if not fut.done():
                fut.set_result(None)

        pending.add_done_callback(
            lambda: self._loop.call_soon_threadsafe(_resolve)
        )

        def _abandon() -> None:
            pending.cancel()
            METRICS.inc("service.disconnects_inflight")
            if streaming:
                METRICS.inc("service.streams_cancelled")

        connected = await self._watch(fut, source, _abandon)
        if not connected:
            return False, None
        return True, pending.wait(0)

    async def _watch(
        self, fut: "asyncio.Future", source: _LineSource, on_disconnect
    ) -> bool:
        """Await ``fut`` while watching the connection for EOF.

        At most one raw read is posted at a time; a read that catches the
        next pipelined request is pushed back for the main loop.  EOF (or
        a reset) calls ``on_disconnect()`` and returns ``False`` without
        waiting for ``fut`` — the abandoned work cleans itself up.
        """
        watch: Optional[asyncio.Task] = None
        try:
            while not fut.done():
                if watch is None:
                    watch = self._loop.create_task(source.reader.readline())
                await asyncio.wait(
                    {fut, watch}, return_when=asyncio.FIRST_COMPLETED
                )
                if watch.done():
                    try:
                        data = watch.result()
                    except (ConnectionError, OSError,
                            ValueError, asyncio.LimitOverrunError,
                            asyncio.IncompleteReadError):
                        # Reset — or an oversized pipelined line, after
                        # which the stream cannot be re-framed: either
                        # way the connection is unusable, so treat it as
                        # a disconnect (cancels the in-flight request).
                        data = b""
                    watch = None
                    if not data:
                        on_disconnect()
                        return False
                    source.push(data)
            return True
        finally:
            if watch is not None and not watch.done():
                watch.cancel()
                with contextlib.suppress(BaseException):
                    await watch

    async def _fail(
        self,
        writer: asyncio.StreamWriter,
        request_id: Any,
        exc: Exception,
        streaming: bool = False,
        extra: Optional[dict] = None,
    ) -> bool:
        """Write the structured-error shape for a failed request (the
        ``done`` frame when the client asked to stream)."""
        error = classify_error(exc)
        if streaming:
            response = ServiceResponse(ok=False, error=error)
            frame = stream_frames(request_id, response, 1)[0]
            if extra:
                frame.update(extra)
            await self._write(writer, frame, swallow=True)
            return False
        out: dict[str, Any] = {
            "id": request_id, "ok": False, "error": error.to_dict(),
        }
        if extra:
            out.update(extra)
        await self._write(writer, out)
        return False

    async def _write(
        self, writer: asyncio.StreamWriter, obj: dict, swallow: bool = False
    ) -> bool:
        data = (json.dumps(obj) + "\n").encode("utf-8")
        try:
            writer.write(data)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            if swallow:
                return False
            raise


#: The historical name: the thread-per-connection ``ThreadingTCPServer``
#: this class replaced; callers constructing by name keep working.
TCPQueryServer = AsyncTCPQueryServer


def serve_tcp(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> AsyncTCPQueryServer:
    """Bind an :class:`AsyncTCPQueryServer` (``port=0`` picks an ephemeral
    one).

    The caller owns the loop::

        server = serve_tcp(service, port=0)
        print(server.server_address)
        server.serve_forever()      # returns after a shutdown op
        server.close_service()
    """
    return AsyncTCPQueryServer((host, port), service)
