"""Transports for the NDJSON protocol: a stdio loop and a TCP server.

``python -m repro serve --stdio`` runs :func:`serve_stdio` — one request
per stdin line, one response per stdout line, exit 0 on EOF or a
``shutdown`` op.  That shape makes the service scriptable::

    echo '{"op": "ping"}' | python -m repro serve --stdio

``python -m repro serve --port N`` runs a :class:`TCPQueryServer` — a
``ThreadingTCPServer`` where each connection gets a reader thread but all
query execution funnels through the *one* shared
:class:`~repro.service.service.QueryService` pool, so worker count and
queue bounds hold regardless of how many clients connect.
"""

from __future__ import annotations

import socketserver
import sys
import threading
from typing import Optional

from repro.service.protocol import Dispatcher
from repro.service.service import QueryService

__all__ = ["TCPQueryServer", "serve_stdio", "serve_tcp"]


def serve_stdio(service: QueryService, stdin=None, stdout=None) -> int:
    """Serve one NDJSON stream; returns 0 on EOF or ``shutdown``.

    The service is closed (draining by default; a ``shutdown`` op may ask
    otherwise) before returning, so a clean EOF leaves no worker threads
    behind.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    dispatcher = Dispatcher(service)
    try:
        for line in stdin:
            out, shutdown = dispatcher.handle_line(line)
            if out is not None:
                stdout.write(out + "\n")
                stdout.flush()
            if shutdown:
                break
    finally:
        service.close(drain=dispatcher.shutdown_drain)
    return 0


class _ConnectionHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        dispatcher = self.server.dispatcher  # type: ignore[attr-defined]
        for raw in self.rfile:
            out, shutdown = dispatcher.handle_line(raw.decode("utf-8"))
            if out is not None:
                self.wfile.write((out + "\n").encode("utf-8"))
                self.wfile.flush()
            if shutdown:
                self.server.begin_shutdown()  # type: ignore[attr-defined]
                return


class TCPQueryServer(socketserver.ThreadingTCPServer):
    """The NDJSON protocol over TCP; all connections share one dispatcher
    (and therefore one worker pool, queue bound, and prepared registry)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        allow_shutdown: bool = True,
    ):
        super().__init__(address, _ConnectionHandler)
        self.service = service
        self.dispatcher = Dispatcher(service, allow_shutdown=allow_shutdown)

    def begin_shutdown(self) -> None:
        # ``shutdown()`` blocks until serve_forever() exits, so it must run
        # off the connection thread that received the request.
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close_service(self) -> None:
        """Drain (or not, per the shutdown request) and release the port."""
        self.service.close(drain=self.dispatcher.shutdown_drain)
        self.server_close()


def serve_tcp(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> TCPQueryServer:
    """Bind a :class:`TCPQueryServer` (``port=0`` picks an ephemeral one).

    The caller owns the loop::

        server = serve_tcp(service, port=0)
        print(server.server_address)
        server.serve_forever()      # returns after a shutdown op
        server.close_service()
    """
    return TCPQueryServer((host, port), service)
