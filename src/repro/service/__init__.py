"""repro.service — the concurrent query service on top of the engine core.

The serving tier added in PR 2 (see ``docs/service.md``):

* :mod:`repro.service.service` — :class:`QueryService`: named-database
  registry, prepared queries, a bounded worker pool with admission
  control, per-request cooperative deadlines, structured retryable
  errors, graceful drain;
* :mod:`repro.service.protocol` — the NDJSON request/response protocol;
* :mod:`repro.service.server` — stdio and TCP transports
  (``python -m repro serve``);
* :mod:`repro.service.client` — a blocking TCP client for tests,
  benchmarks, and scripts.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import PROTOCOL_VERSION, Dispatcher, ProtocolError
from repro.service.server import TCPQueryServer, serve_stdio, serve_tcp
from repro.service.service import (
    ErrorInfo,
    PreparedQuery,
    QueryService,
    RunRequest,
    ServiceConfig,
    ServiceResponse,
    classify_error,
)

__all__ = [
    "Dispatcher",
    "ErrorInfo",
    "PROTOCOL_VERSION",
    "PreparedQuery",
    "ProtocolError",
    "QueryService",
    "RunRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResponse",
    "TCPQueryServer",
    "classify_error",
    "serve_stdio",
    "serve_tcp",
]
