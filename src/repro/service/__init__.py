"""repro.service — the concurrent query service on top of the engine core.

The serving tier (see ``docs/service.md``):

* :mod:`repro.service.service` — :class:`QueryService`: named-database
  registry, prepared queries, a bounded worker pool with admission
  control, per-request cooperative deadlines and cancellation,
  structured retryable errors, graceful drain, warm-start cache
  persistence (``warm_dir=``);
* :mod:`repro.service.protocol` — the NDJSON request/response protocol,
  including the streamed ``row_batch``/``done`` frames;
* :mod:`repro.service.server` — the stdio adapter and the asyncio TCP
  front end (``python -m repro serve``): 10k+ multiplexed connections,
  per-client token-bucket quotas, weighted fair queuing, cooperative
  cancellation of disconnected clients;
* :mod:`repro.service.quota` — the token-bucket and fair-queuing policy
  pieces the server composes;
* :mod:`repro.service.client` — a blocking TCP client (read deadlines,
  streamed runs) plus its asyncio sibling.
"""

from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Dispatcher,
    ProtocolError,
    stream_frames,
)
from repro.service.quota import FairScheduler, TokenBucket
from repro.service.server import (
    AsyncTCPQueryServer,
    TCPQueryServer,
    serve_stdio,
    serve_tcp,
)
from repro.service.service import (
    ErrorInfo,
    PendingRequest,
    PreparedQuery,
    QueryService,
    RunRequest,
    ServiceConfig,
    ServiceResponse,
    classify_error,
)

__all__ = [
    "AsyncServiceClient",
    "AsyncTCPQueryServer",
    "Dispatcher",
    "ErrorInfo",
    "FairScheduler",
    "PROTOCOL_VERSION",
    "PendingRequest",
    "PreparedQuery",
    "ProtocolError",
    "QueryService",
    "RunRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResponse",
    "TCPQueryServer",
    "TokenBucket",
    "classify_error",
    "serve_stdio",
    "serve_tcp",
    "stream_frames",
]
