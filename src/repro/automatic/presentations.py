"""Automata presentations of the paper's atomic relations.

Each function returns the :class:`RelationAutomaton` of one atomic relation
of S, S_len, S_left or S_reg over a given alphabet.  Together these form an
*automatic presentation* of S_len (and hence of all its reducts), which is
what makes the decision procedures of Sections 5-7 executable.

Track convention: for binary relations the first track is the first
argument.  All relations are normalized minimal DFAs.
"""

from __future__ import annotations

import functools

from repro.automata.dfa import DFA
from repro.automatic.convolution import PAD, columns
from repro.automatic.relation import RelationAutomaton
from repro.strings.alphabet import Alphabet


def equality(alphabet: Alphabet) -> RelationAutomaton:
    """``{(x, y) | x = y}``."""
    cols = columns(alphabet, 2)
    eq_cols = [c for c in cols if c[0] == c[1] and c[0] is not PAD]
    transitions = {0: {c: 0 for c in eq_cols}}
    dfa = DFA(cols, [0], 0, [0], transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def prefix(alphabet: Alphabet, strict: bool = False) -> RelationAutomaton:
    """The prefix order ``x <<= y`` (or ``x << y`` when ``strict``)."""
    cols = columns(alphabet, 2)
    transitions: dict[int, dict[object, int]] = {0: {}, 1: {}}
    for c in cols:
        a, b = c
        if a is not PAD and a == b:
            transitions[0][c] = 0
        if a is PAD and b is not PAD:
            transitions[0][c] = 1
            transitions[1][c] = 1
    accepting = [1] if strict else [0, 1]
    dfa = DFA(cols, [0, 1], 0, accepting, transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def extends_by_one(alphabet: Alphabet) -> RelationAutomaton:
    """``x < y``: ``y`` extends ``x`` by exactly one symbol."""
    cols = columns(alphabet, 2)
    transitions: dict[int, dict[object, int]] = {0: {}}
    for c in cols:
        a, b = c
        if a is not PAD and a == b:
            transitions[0][c] = 0
        if a is PAD and b is not PAD:
            transitions[0][c] = 1
    dfa = DFA(cols, [0, 1], 0, [1], transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def equal_length(alphabet: Alphabet) -> RelationAutomaton:
    """``el(x, y)``: ``|x| = |y|`` (no PAD column ever occurs)."""
    cols = columns(alphabet, 2)
    both = [c for c in cols if c[0] is not PAD and c[1] is not PAD]
    dfa = DFA(cols, [0], 0, [0], {0: {c: 0 for c in both}})
    return RelationAutomaton(alphabet, 2, dfa)


def length_le(alphabet: Alphabet, strict: bool = False) -> RelationAutomaton:
    """``|x| <= |y|`` (or ``<`` when ``strict``)."""
    cols = columns(alphabet, 2)
    transitions: dict[int, dict[object, int]] = {0: {}, 1: {}}
    for c in cols:
        a, b = c
        if a is not PAD and b is not PAD:
            transitions[0][c] = 0
        if a is PAD and b is not PAD:
            transitions[0][c] = 1
            transitions[1][c] = 1
    accepting = [1] if strict else [0, 1]
    dfa = DFA(cols, [0, 1], 0, accepting, transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def last_symbol(alphabet: Alphabet, a: str) -> RelationAutomaton:
    """The unary predicate ``L_a``: the last symbol of ``x`` is ``a``."""
    if a not in alphabet:
        raise ValueError(f"{a!r} not in {alphabet}")
    cols = columns(alphabet, 1)
    transitions: dict[int, dict[object, int]] = {0: {}, 1: {}}
    for c in cols:
        target = 1 if c[0] == a else 0
        transitions[0][c] = target
        transitions[1][c] = target
    dfa = DFA(cols, [0, 1], 0, [1], transitions)
    return RelationAutomaton(alphabet, 1, dfa)


def add_last_graph(alphabet: Alphabet, a: str) -> RelationAutomaton:
    """The graph of ``l_a``: ``{(x, x . a)}``."""
    if a not in alphabet:
        raise ValueError(f"{a!r} not in {alphabet}")
    cols = columns(alphabet, 2)
    transitions: dict[int, dict[object, int]] = {0: {}}
    for c in cols:
        x, y = c
        if x is not PAD and x == y:
            transitions[0][c] = 0
        if x is PAD and y == a:
            transitions[0][c] = 1
    dfa = DFA(cols, [0, 1], 0, [1], transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def add_first_graph(alphabet: Alphabet, a: str) -> RelationAutomaton:
    """The graph of ``f_a``: ``{(x, a . x)}`` (the paper's ``F_a``).

    Needs one symbol of memory: after reading column ``(x_i, y_i)`` the
    automaton remembers ``x_i``, to check ``y_{i+1} = x_i``.
    """
    if a not in alphabet:
        raise ValueError(f"{a!r} not in {alphabet}")
    cols = columns(alphabet, 2)
    start = "start"
    done = "done"
    states = [start, done] + list(alphabet.symbols)
    transitions: dict[object, dict[object, object]] = {q: {} for q in states}
    for c in cols:
        x, y = c
        # First column: y must equal a.
        if y == a:
            if x is PAD:
                transitions[start][c] = done  # x = epsilon, y = a
            else:
                transitions[start][c] = x  # remember x_0
        # Middle/last columns from memory state m: y must equal m.
        for m in alphabet.symbols:
            if y == m:
                if x is PAD:
                    transitions[m][c] = done  # final column
                else:
                    transitions[m][c] = x
    dfa = DFA(cols, states, start, [done], transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def trim_first_graph(alphabet: Alphabet, a: str) -> RelationAutomaton:
    """The graph of ``TRIM_a``: ``{(s, s - a)}`` with the paper's semantics.

    ``(s, s')`` with ``s = a . s'`` when ``s`` starts with ``a``; otherwise
    ``(s, epsilon)``.
    """
    # Case 1: s starts with a; then s' is s with the leading a removed,
    # i.e. (s, s') in graph iff (s', s) in graph(f_a). Swap the tracks.
    case1 = add_first_graph(alphabet, a).reorder([1, 0])
    # Case 2: s does not start with a (or is empty); s' = epsilon.
    cols = columns(alphabet, 2)
    transitions: dict[object, dict[object, object]] = {"q0": {}, "rest": {}}
    for c in cols:
        x, y = c
        if y is not PAD:
            continue  # second component must be epsilon: always padded
        if x is not PAD and x != a:
            transitions["q0"][c] = "rest"
        if x is not PAD:
            transitions["rest"][c] = "rest"
    dfa = DFA(cols, ["q0", "rest"], "q0", ["q0", "rest"], transitions)
    case2 = RelationAutomaton(alphabet, 2, dfa)
    # "q0" accepting covers s = epsilon -> s' = epsilon (empty word).
    return case1.union(case2)


def insert_at_graph(alphabet: Alphabet, a: str) -> RelationAutomaton:
    """Graph of the Section 8 extension: ``{(x, p, y) | p <<= x, y = p.a.(x-p)}``.

    Synchronized reading of ``(x, p, y)``: the three tracks agree while
    ``p`` lasts; at position ``|p|`` the ``y`` track shows ``a`` while the
    automaton memorizes the current ``x`` symbol; afterwards ``y`` replays
    ``x`` shifted by one (the same one-symbol memory as ``f_a``).

    Total-function semantics (matching the :class:`~repro.logic.terms.InsertAt`
    term): when ``p`` is *not* a prefix of ``x`` the value is epsilon, so
    the graph additionally contains ``{(x, p, eps) | not p <<= x}``.
    """
    if a not in alphabet:
        raise ValueError(f"{a!r} not in {alphabet}")
    cols = columns(alphabet, 3)
    eq, done = "eq", "done"
    states: list[object] = [eq, done] + list(alphabet.symbols)
    transitions: dict[object, dict[object, object]] = {q: {} for q in states}
    for c in cols:
        x, p, y = c
        # Phase 1: inside the common prefix p.
        if x is not PAD and x == p and x == y:
            transitions[eq][c] = eq
        # Insertion point: p has ended, y shows the inserted symbol.
        if p is PAD and y == a:
            if x is PAD:
                transitions[eq][c] = done  # p = x: append at the end
            elif x is not PAD:
                transitions[eq][c] = x  # memorize x's symbol
        # Phase 2: y replays x with one-symbol delay.
        for m in alphabet.symbols:
            if p is PAD and y == m:
                if x is PAD:
                    transitions[m][c] = done  # final shifted symbol
                else:
                    transitions[m][c] = x
    dfa = DFA(cols, states, eq, [done], transitions)
    case_prefix = RelationAutomaton(alphabet, 3, dfa)
    # Default branch: p not a prefix of x -> result epsilon.
    not_pref_px = prefix(alphabet).complement()  # tracks (p, x)
    case_default = (
        not_pref_px.reorder([1, 0])  # (x, p)
        .cylindrify(2)  # (x, p, y)
        .intersection(constant(alphabet, "").cylindrify(0).cylindrify(0))
    )
    return case_prefix.union(case_default)


def pattern_suffix(alphabet: Alphabet, language_dfa: DFA) -> RelationAutomaton:
    """The paper's ``P_L(x, y)``: ``x <<= y`` and ``y - x`` is in ``L``.

    ``language_dfa`` recognizes ``L`` over the plain character alphabet.
    For star-free ``L`` this is an S-presentation predicate (quantifier
    elimination signature of Section 4); for general regular ``L`` it is
    the defining predicate family of S_reg (Section 7).
    """
    ldfa = language_dfa.completed().canonical()
    cols = columns(alphabet, 2)
    # States: ("pre",) while x is being matched, then ("run", q) running L on
    # the remaining suffix of y.
    pre = ("pre",)
    states: list[object] = [pre] + [("run", q) for q in ldfa.states]
    transitions: dict[object, dict[object, object]] = {q: {} for q in states}
    for c in cols:
        x, y = c
        if x is not PAD and x == y:
            transitions[pre][c] = pre
        if x is PAD and y is not PAD:
            t = ldfa.step(ldfa.start, y)
            if t is not None:
                transitions[pre][c] = ("run", t)
            for q in ldfa.states:
                t2 = ldfa.step(q, y)
                if t2 is not None:
                    transitions[("run", q)][c] = ("run", t2)
    accepting: list[object] = [("run", q) for q in ldfa.accepting]
    if ldfa.accepts(""):
        accepting.append(pre)  # x = y, suffix epsilon in L
    dfa = DFA(cols, states, pre, accepting, transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def member(alphabet: Alphabet, language_dfa: DFA) -> RelationAutomaton:
    """Unary membership ``x in L`` (i.e. ``P_L(epsilon, x)``)."""
    ldfa = language_dfa.completed().canonical()
    cols = columns(alphabet, 1)
    transitions = {
        q: {(a,): ldfa.transitions[q][a] for a in alphabet.symbols if a in ldfa.transitions.get(q, {})}
        for q in ldfa.states
    }
    dfa = DFA(cols, ldfa.states, ldfa.start, ldfa.accepting, transitions)
    return RelationAutomaton(alphabet, 1, dfa)


def lex_le(alphabet: Alphabet, strict: bool = False) -> RelationAutomaton:
    """Lexicographic order ``x <=_lex y`` induced by the alphabet order."""
    cols = columns(alphabet, 2)
    eq, lt = "eq", "lt"
    transitions: dict[object, dict[object, object]] = {eq: {}, lt: {}}
    for c in cols:
        a, b = c
        if a is not PAD and a == b:
            transitions[eq][c] = eq
        elif a is PAD and b is not PAD:
            transitions[eq][c] = lt  # x is a strict prefix of y
        elif a is not PAD and b is not PAD and alphabet.index(a) < alphabet.index(b):
            transitions[eq][c] = lt
        # Once strictly below, anything valid may follow.
        transitions[lt][c] = lt
    accepting = [lt] if strict else [eq, lt]
    dfa = DFA(cols, [eq, lt], eq, accepting, transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def constant(alphabet: Alphabet, value: str) -> RelationAutomaton:
    """The unary relation ``{value}`` (``{epsilon}`` for the empty string)."""
    alphabet.check_string(value)
    return RelationAutomaton.from_tuples(alphabet, 1, [(value,)])


def lcp_graph(alphabet: Alphabet) -> RelationAutomaton:
    """The graph of the longest-common-prefix function: ``{(x, y, x ^ y)}``."""
    cols = columns(alphabet, 3)
    common, diverged = "common", "diverged"
    transitions: dict[object, dict[object, object]] = {common: {}, diverged: {}}
    for c in cols:
        x, y, z = c
        if x is not PAD and x == y and x == z:
            transitions[common][c] = common
        elif z is PAD and not (x is PAD and y is PAD):
            # Divergence point: x and y differ here (or one has ended).
            if x != y:
                transitions[common][c] = diverged
            transitions[diverged][c] = diverged
    dfa = DFA(cols, [common, diverged], common, [common, diverged], transitions)
    return RelationAutomaton(alphabet, 3, dfa)


@functools.lru_cache(maxsize=None)
def _cached_basic(alphabet_symbols: tuple[str, ...], name: str, extra: object) -> RelationAutomaton:
    alphabet = Alphabet(alphabet_symbols)
    builders = {
        "equality": lambda: equality(alphabet),
        "prefix": lambda: prefix(alphabet, strict=bool(extra)),
        "extends_by_one": lambda: extends_by_one(alphabet),
        "equal_length": lambda: equal_length(alphabet),
        "length_le": lambda: length_le(alphabet, strict=bool(extra)),
        "last_symbol": lambda: last_symbol(alphabet, str(extra)),
        "add_last_graph": lambda: add_last_graph(alphabet, str(extra)),
        "add_first_graph": lambda: add_first_graph(alphabet, str(extra)),
        "trim_first_graph": lambda: trim_first_graph(alphabet, str(extra)),
        "insert_at_graph": lambda: insert_at_graph(alphabet, str(extra)),
        "lex_le": lambda: lex_le(alphabet, strict=bool(extra)),
        "constant": lambda: constant(alphabet, str(extra)),
        "lcp_graph": lambda: lcp_graph(alphabet),
    }
    return builders[name]()


def cached(alphabet: Alphabet, name: str, extra: object = None) -> RelationAutomaton:
    """Memoized access to the basic presentations (they never change)."""
    return _cached_basic(alphabet.symbols, name, extra)
