"""Relations over ``Sigma*`` represented as automata on convolution words.

:class:`RelationAutomaton` is the workhorse of the library's exact
semantics: a ``k``-ary relation of strings is stored as a DFA over the
column alphabet of arity ``k``, and first-order connectives become automata
operations:

========================  =========================================
logic                     automata
========================  =========================================
conjunction               product (intersection)
disjunction               product (union)
negation                  complement within the valid-padding set
existential quantifier    track projection + pad saturation
variable reuse/reorder    track permutation, cylindrification
========================  =========================================

Projection is the only subtle step: removing a track can strand transitions
whose columns carried data *only* on the removed track (these occur in a
suffix of the word, after every other track has been padded).  Such suffixes
must be folded into acceptance — :meth:`RelationAutomaton.project` closes
the accepting set under reachability via removed-track-only columns before
deleting the track.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.automata import kernel
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.ops import equivalent as dfa_equivalent
from repro.automatic.convolution import PAD, columns, convolve, deconvolve, valid_pad_dfa
from repro.engine.metrics import METRICS
from repro.errors import ArityError
from repro.strings.alphabet import Alphabet


class RelationAutomaton:
    """A ``k``-ary string relation recognized by a convolution automaton.

    Instances are immutable; every operation returns a fresh relation whose
    language is normalized (intersected with the valid-padding set and
    minimized), so equal relations have structurally identical minimal DFAs.
    """

    __slots__ = ("alphabet", "arity", "dfa")

    def __init__(self, alphabet: Alphabet, arity: int, dfa: DFA, *, normalized: bool = False):
        self.alphabet = alphabet
        self.arity = arity
        if normalized:
            self.dfa = dfa
        else:
            # Normalization is the hottest chain in the automata backend:
            # one lazy dense pipeline (dfa ∧ valid-padding) plus one
            # dense Hopcroft pass, no intermediate dict automata.  The
            # valid-padding DFA is cached per (alphabet, arity), so its
            # dense form is interned once and reused across every build.
            valid = valid_pad_dfa(alphabet, arity)
            METRICS.inc("automata.minimizations")
            self.dfa = kernel.product_minimized(dfa, valid, "and")
        METRICS.inc("automata.relations_built")
        METRICS.inc("automata.relation_states", self.dfa.num_states)

    # ----------------------------------------------------------- constructors

    @classmethod
    def from_tuples(
        cls, alphabet: Alphabet, arity: int, tuples: Iterable[Sequence[str]]
    ) -> "RelationAutomaton":
        """Finite relation from explicit tuples (trie over convolution words)."""
        root = 0
        nxt = 1
        transitions: dict[int, dict[object, int]] = {}
        accepting: set[int] = set()
        for tup in tuples:
            if len(tup) != arity:
                raise ArityError(f"tuple {tup!r} has arity {len(tup)}, expected {arity}")
            for s in tup:
                alphabet.check_string(s)
            q = root
            for col in convolve(tuple(tup)):
                delta = transitions.setdefault(q, {})
                if col not in delta:
                    delta[col] = nxt
                    nxt += 1
                q = delta[col]
            accepting.add(q)
        dfa = DFA(columns(alphabet, arity), range(nxt), root, accepting, transitions)
        return cls(alphabet, arity, kernel.minimize_dfa(dfa), normalized=True)

    @classmethod
    def empty(cls, alphabet: Alphabet, arity: int) -> "RelationAutomaton":
        """The empty ``k``-ary relation."""
        dfa = DFA(columns(alphabet, arity), [0], 0, [], {})
        return cls(alphabet, arity, dfa, normalized=True)

    @classmethod
    def universe(cls, alphabet: Alphabet, arity: int) -> "RelationAutomaton":
        """The full relation ``(Sigma*)^k``."""
        dfa = kernel.minimize_dfa(valid_pad_dfa(alphabet, arity))
        return cls(alphabet, arity, dfa, normalized=True)

    @classmethod
    def true_relation(cls, alphabet: Alphabet) -> "RelationAutomaton":
        """Arity-0 relation representing *true* (accepts the empty word)."""
        dfa = DFA([], [0], 0, [0], {})
        return cls(alphabet, 0, dfa, normalized=True)

    @classmethod
    def false_relation(cls, alphabet: Alphabet) -> "RelationAutomaton":
        """Arity-0 relation representing *false*."""
        dfa = DFA([], [0], 0, [], {})
        return cls(alphabet, 0, dfa, normalized=True)

    # ----------------------------------------------------------------- basics

    def contains(self, tup: Sequence[str]) -> bool:
        """Membership test for a concrete tuple of strings."""
        if len(tup) != self.arity:
            raise ArityError(f"tuple {tup!r} has arity {len(tup)}, expected {self.arity}")
        return self.dfa.accepts(convolve(tuple(tup)))

    def as_bool(self) -> bool:
        """Truth value of an arity-0 relation."""
        if self.arity != 0:
            raise ArityError("as_bool() requires arity 0")
        return self.dfa.accepts(())

    def is_empty(self) -> bool:
        return self.dfa.is_empty()

    def is_finite(self) -> bool:
        """True iff the relation contains finitely many tuples."""
        return self.dfa.is_finite_language()

    def count(self) -> int:
        """Number of tuples; raises ``ValueError`` if infinite."""
        return self.dfa.count_words()

    def tuples(self, limit: Optional[int] = None) -> Iterator[tuple[str, ...]]:
        """Enumerate tuples (shortest convolutions first).

        For infinite relations a ``limit`` must be supplied.
        """
        if limit is None:
            words = self.dfa.iter_words()
        else:
            words = self.dfa.iter_words(max_length=None) if self.is_finite() else None
            if words is None:
                # Infinite: enumerate by growing convolution length.
                words = self._words_up_to_limit(limit)
        produced = 0
        for w in words:
            yield deconvolve(w, self.arity)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def _words_up_to_limit(self, limit: int) -> Iterator[tuple]:
        length = 0
        produced = 0
        while produced < limit:
            found_this_len = False
            for w in self.dfa.iter_words(max_length=length):
                if len(w) == length:
                    found_this_len = True
                    yield w
                    produced += 1
                    if produced >= limit:
                        return
            length += 1
            if length > self.dfa.num_states and not found_this_len and self.dfa.is_finite_language():
                return

    def set_of_tuples(self) -> frozenset[tuple[str, ...]]:
        """The relation as a frozenset; raises ``ValueError`` if infinite."""
        if not self.is_finite():
            raise ValueError("relation is infinite")
        return frozenset(self.tuples())

    def equivalent(self, other: "RelationAutomaton") -> bool:
        """Extensional equality of two relations of the same arity."""
        self._check_compatible(other)
        return dfa_equivalent(self.dfa, other.dfa)

    def _check_compatible(self, other: "RelationAutomaton") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError("relations over different alphabets")
        if self.arity != other.arity:
            raise ArityError(f"arity mismatch: {self.arity} vs {other.arity}")

    def __repr__(self) -> str:
        return (
            f"RelationAutomaton(arity={self.arity}, states={self.dfa.num_states}, "
            f"alphabet={self.alphabet})"
        )

    # ------------------------------------------------------------ boolean ops

    def intersection(self, other: "RelationAutomaton") -> "RelationAutomaton":
        self._check_compatible(other)
        METRICS.inc("automata.intersections")
        METRICS.inc("automata.minimizations")
        dfa = kernel.product_minimized(self.dfa, other.dfa, "and")
        return RelationAutomaton(self.alphabet, self.arity, dfa, normalized=True)

    def union(self, other: "RelationAutomaton") -> "RelationAutomaton":
        self._check_compatible(other)
        METRICS.inc("automata.unions")
        METRICS.inc("automata.minimizations")
        dfa = kernel.product_minimized(self.dfa, other.dfa, "or")
        return RelationAutomaton(self.alphabet, self.arity, dfa, normalized=True)

    def difference(self, other: "RelationAutomaton") -> "RelationAutomaton":
        self._check_compatible(other)
        METRICS.inc("automata.minimizations")
        dfa = kernel.product_minimized(self.dfa, other.dfa, "diff")
        return RelationAutomaton(self.alphabet, self.arity, dfa, normalized=True)

    @classmethod
    def intersect_all(
        cls, relations: Sequence["RelationAutomaton"]
    ) -> "RelationAutomaton":
        """N-ary conjunction: one lazy product pipeline, one minimization.

        Folding pairwise would minimize (and materialize) every
        intermediate; the kernel explores the reachable n-ary product
        directly.
        """
        first = relations[0]
        for other in relations[1:]:
            first._check_compatible(other)
        if len(relations) == 1:
            return first
        METRICS.inc("automata.intersections", len(relations) - 1)
        METRICS.inc("automata.minimizations")
        dfa = kernel.intersect_all_minimized([r.dfa for r in relations])
        return cls(first.alphabet, first.arity, dfa, normalized=True)

    @classmethod
    def union_all(
        cls, relations: Sequence["RelationAutomaton"]
    ) -> "RelationAutomaton":
        """N-ary disjunction: one lazy product pipeline, one minimization."""
        first = relations[0]
        for other in relations[1:]:
            first._check_compatible(other)
        if len(relations) == 1:
            return first
        METRICS.inc("automata.unions", len(relations) - 1)
        METRICS.inc("automata.minimizations")
        dfa = kernel.union_all_minimized([r.dfa for r in relations])
        return cls(first.alphabet, first.arity, dfa, normalized=True)

    def complement(self) -> "RelationAutomaton":
        """Complement within ``(Sigma*)^k`` (valid convolutions only)."""
        METRICS.inc("automata.complements")
        comp = self.dfa.complement()
        # The raw complement contains invalid padding words; re-normalize.
        return RelationAutomaton(self.alphabet, self.arity, comp)

    # -------------------------------------------------------- track surgery

    def project(self, track: int) -> "RelationAutomaton":
        """Existential projection: remove ``track`` (0-based).

        Implements ``exists x_track . R`` by (1) closing acceptance under
        suffixes that carry data only on the removed track, (2) deleting the
        track from every column, (3) determinizing and re-normalizing.
        """
        if not 0 <= track < self.arity:
            raise ArityError(f"track {track} out of range for arity {self.arity}")
        dfa = self.dfa
        # Step 1: states that can reach acceptance via columns non-PAD only
        # on `track` become accepting.
        only_track_cols = {
            col
            for col in dfa.alphabet
            if col[track] is not PAD
            and all(col[i] is PAD for i in range(self.arity) if i != track)
        }
        back: dict[object, set[object]] = {}
        for q, delta in dfa.transitions.items():
            for col, t in delta.items():
                if col in only_track_cols:
                    back.setdefault(t, set()).add(q)
        new_accepting = set(dfa.accepting)
        queue = deque(new_accepting)
        while queue:
            q = queue.popleft()
            for p in back.get(q, ()):
                if p not in new_accepting:
                    new_accepting.add(p)
                    queue.append(p)
        # Step 2: delete the track; transitions on only-track columns vanish
        # (their job is now done by the enlarged accepting set).
        new_arity = self.arity - 1
        transitions: dict[object, dict[object, set[object]]] = {}
        for q, delta in dfa.transitions.items():
            for col, t in delta.items():
                reduced = col[:track] + col[track + 1:]
                if all(x is PAD for x in reduced):
                    continue
                transitions.setdefault(q, {}).setdefault(reduced, set()).add(t)
        nfa = NFA(
            columns(self.alphabet, new_arity),
            dfa.states,
            [dfa.start],
            new_accepting,
            transitions,
        )
        METRICS.inc("automata.projections")
        METRICS.inc("automata.determinizations")
        METRICS.inc("automata.minimizations")
        # Kernel subset construction + dense Hopcroft; the result carries
        # its dense form, so the constructor's re-normalization product
        # never re-walks dict tables.
        projected = kernel.determinize_minimized(nfa)
        return RelationAutomaton(self.alphabet, new_arity, projected)

    def cylindrify(self, position: int) -> "RelationAutomaton":
        """Insert a fresh unconstrained track at ``position`` (0-based).

        The new track may hold any string, including one longer than all
        existing tracks (handled by an accepting extension state reading
        columns that are PAD everywhere except the new track).
        """
        if not 0 <= position <= self.arity:
            raise ArityError(f"position {position} out of range for arity {self.arity}")
        dfa = self.dfa
        new_arity = self.arity + 1
        fill = tuple(self.alphabet.symbols) + (PAD,)
        ext_state = ("__ext__",)
        transitions: dict[object, dict[object, object]] = {}
        for q, delta in dfa.transitions.items():
            new_delta: dict[object, object] = {}
            for col, t in delta.items():
                for s in fill:
                    new_col = col[:position] + (s,) + col[position:]
                    new_delta[new_col] = t
            transitions[q] = new_delta
        # Suffix extension: after the original word ends (accepting state),
        # the new track may continue alone.
        ext_cols = [
            tuple(PAD if i != position else s for i in range(new_arity))
            for s in self.alphabet.symbols
        ]
        for q in dfa.accepting:
            delta = transitions.setdefault(q, {})
            for col in ext_cols:
                delta[col] = ext_state
        transitions[ext_state] = {col: ext_state for col in ext_cols}
        states = set(dfa.states) | {ext_state}
        accepting = set(dfa.accepting) | {ext_state}
        new_dfa = DFA(columns(self.alphabet, new_arity), states, dfa.start, accepting, transitions)
        METRICS.inc("automata.cylindrifications")
        return RelationAutomaton(self.alphabet, new_arity, new_dfa)

    def reorder(self, permutation: Sequence[int]) -> "RelationAutomaton":
        """Permute tracks: new track ``i`` is old track ``permutation[i]``."""
        if sorted(permutation) != list(range(self.arity)):
            raise ArityError(f"{permutation!r} is not a permutation of 0..{self.arity - 1}")
        perm = tuple(permutation)

        def remap(col):
            return tuple(col[perm[i]] for i in range(self.arity))

        dfa = self.dfa.map_symbols(remap)
        return RelationAutomaton(self.alphabet, self.arity, dfa, normalized=True)

    def join(
        self,
        other: "RelationAutomaton",
        positions: Sequence[tuple[int, int]],
    ) -> "RelationAutomaton":
        """Relational natural join: pair up tracks and merge.

        ``positions`` lists ``(my_track, other_track)`` pairs to equate;
        the result's tracks are all of ``self``'s followed by ``other``'s
        *non-joined* tracks, in order.  A convenience composition of
        cylindrification, equality constraints and projection.
        """
        self._check_alphabet(other)
        joined_other = sorted(o for _m, o in positions)
        if len(set(joined_other)) != len(joined_other):
            raise ArityError("each track may be joined at most once")
        # Widen self with other's tracks appended.
        widened = self
        for _ in range(other.arity):
            widened = widened.cylindrify(widened.arity)
        aligned_other = other
        for _ in range(self.arity):
            aligned_other = aligned_other.cylindrify(0)
        combined = widened.intersection(aligned_other)
        for mine, theirs in positions:
            combined = combined.duplicate_constrain(mine, self.arity + theirs)
        # Project away the joined copies (right-hand side), highest first.
        for theirs in sorted(joined_other, reverse=True):
            combined = combined.project(self.arity + theirs)
        return combined

    def _check_alphabet(self, other: "RelationAutomaton") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError("relations over different alphabets")

    def duplicate_constrain(self, track_a: int, track_b: int) -> "RelationAutomaton":
        """Constrain two tracks to be equal (used for repeated variables)."""
        eq_cols = {
            col
            for col in self.dfa.alphabet
            if col[track_a] == col[track_b]
            or (col[track_a] is PAD and col[track_b] is PAD)
        }
        transitions = {
            q: {col: t for col, t in delta.items() if col in eq_cols}
            for q, delta in self.dfa.transitions.items()
        }
        dfa = DFA(self.dfa.alphabet, self.dfa.states, self.dfa.start, self.dfa.accepting, transitions)
        return RelationAutomaton(self.alphabet, self.arity, dfa)
