"""Convolution of string tuples into words over a column alphabet.

The convolution of a tuple ``(s_1, ..., s_k)`` is the word whose ``j``-th
letter is the column ``(s_1[j], ..., s_k[j])``, where exhausted strings
contribute the padding symbol :data:`PAD`.  The word's length is the length
of the longest component; the all-:data:`PAD` column never occurs.

Valid convolutions obey the *padding discipline*: once a track shows
:data:`PAD` it shows :data:`PAD` forever.  :func:`valid_pad_dfa` recognizes
exactly the valid convolution words of a given arity; every
:class:`~repro.automatic.relation.RelationAutomaton` keeps its language
inside that set.
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Sequence

from repro.automata.dfa import DFA
from repro.errors import ArityError
from repro.strings.alphabet import Alphabet


class _Pad:
    """Singleton padding symbol (distinct from every alphabet character)."""

    _instance = None

    def __new__(cls) -> "_Pad":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#"  # compact, sorts before '0'..'9' and letters in repr order

    def __reduce__(self):
        return (_Pad, ())


#: The padding symbol used in convolution columns.
PAD = _Pad()

Column = tuple  # tuple of symbols and/or PAD


def columns(alphabet: Alphabet, arity: int) -> list[Column]:
    """All valid columns of the given arity (every combination except all-PAD)."""
    if arity < 0:
        raise ArityError("arity must be non-negative")
    pool = tuple(alphabet.symbols) + (PAD,)
    return [c for c in itertools.product(pool, repeat=arity) if any(x is not PAD for x in c)]


def convolve(strings: Sequence[str]) -> tuple[Column, ...]:
    """Convolution word of a tuple of strings."""
    if not strings:
        return ()
    n = max(len(s) for s in strings)
    return tuple(
        tuple(s[j] if j < len(s) else PAD for s in strings) for j in range(n)
    )


def deconvolve(word: Sequence[Column], arity: int) -> tuple[str, ...]:
    """Inverse of :func:`convolve`; raises ``ValueError`` on invalid padding."""
    parts: list[list[str]] = [[] for _ in range(arity)]
    ended = [False] * arity
    for col in word:
        if len(col) != arity:
            raise ArityError(f"column {col!r} has arity {len(col)}, expected {arity}")
        if all(x is PAD for x in col):
            raise ValueError("all-PAD column in convolution word")
        for i, x in enumerate(col):
            if x is PAD:
                ended[i] = True
            else:
                if ended[i]:
                    raise ValueError(f"track {i} resumes after padding")
                parts[i].append(x)
    return tuple("".join(p) for p in parts)


@functools.lru_cache(maxsize=64)
def valid_pad_dfa(alphabet: Alphabet, arity: int) -> DFA:
    """DFA over the column alphabet accepting exactly the valid convolutions.

    States are frozensets of already-padded track indices; the all-PAD
    column is simply absent from the alphabet.  Cached per
    ``(alphabet, arity)``: DFAs are immutable, every relation
    normalization intersects with this automaton, and the cached
    instance accumulates its dense kernel form once
    (:func:`repro.automata.kernel.to_dense` memoizes on the DFA).
    """
    cols = columns(alphabet, arity)
    all_tracks = frozenset(range(arity))
    states = [frozenset(s) for r in range(arity + 1) for s in itertools.combinations(range(arity), r)]
    transitions: dict[object, dict[object, object]] = {}
    for state in states:
        delta = {}
        for col in cols:
            padded = frozenset(i for i, x in enumerate(col) if x is PAD)
            if state <= padded and padded != all_tracks:
                delta[col] = padded
        if delta:
            transitions[state] = delta
    return DFA(cols, states, frozenset(), states, transitions)
