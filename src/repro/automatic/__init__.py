"""Automatic-structure engine: string relations as convolution automata.

Every structure in the paper — S, S_len, S_left, S_reg — is an *automatic
structure*: each of its atomic relations (prefix, equal length, last-symbol,
the graphs of ``l_a``/``f_a``/``TRIM_a``, the ``P_L`` pattern predicates,
lexicographic order) is recognizable by a finite automaton reading all
argument strings **synchronously**, one position at a time, with a padding
symbol once a shorter argument is exhausted.

First-order logic over an automatic structure is decidable by closing the
class of such automata under boolean operations and projection.  This
package provides:

* the convolution encoding of string tuples (:mod:`repro.automatic.convolution`),
* the :class:`~repro.automatic.relation.RelationAutomaton` closure operations,
* presentations of every atomic relation used in the paper
  (:mod:`repro.automatic.presentations`).

The evaluation engine in :mod:`repro.eval.automata_engine` builds on this to
give an exact, always-terminating reference semantics for every calculus of
the paper (and powers the decidability results: Proposition 7, Theorem 5,
Corollary 6).

Notably absent: the graph of *concatenation* ``{(x, y, x.y)}`` is **not** a
synchronized-rational relation, which is the automata-theoretic face of the
paper's Section 3 — adding concatenation destroys every nice property.
"""

from repro.automatic.convolution import PAD, columns, convolve, deconvolve, valid_pad_dfa
from repro.automatic.relation import RelationAutomaton
from repro.automatic import presentations

__all__ = [
    "PAD",
    "RelationAutomaton",
    "columns",
    "convolve",
    "deconvolve",
    "presentations",
    "valid_pad_dfa",
]
