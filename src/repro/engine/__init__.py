"""Planning, caching, and observability for the evaluation engines.

This package is the layer between :class:`repro.core.query.Query` and the
evaluators in :mod:`repro.eval` / :mod:`repro.algebra.exec`.  It contains:

* :mod:`repro.engine.backend` — the :class:`~repro.engine.backend.
  EngineBackend` interface and the process-wide **backend registry**: the
  direct, automata, and algebra engines are registered backends, and
  every layer (planner, EXPLAIN, ``Query``, the service, the CLI)
  resolves engine names through :func:`~repro.engine.backend.
  resolve_engine` — adding engine #4 is one ``register_backend`` call;
* :mod:`repro.engine.planner` — the cost-based planner that iterates the
  registry (eligibility gate, then cost argmin) per query
  (``Query.run(db)`` with no ``engine=`` argument goes through it),
  canonicalizing each formula first (:mod:`repro.logic.canonical`);
* :mod:`repro.engine.cache` — the LRU automaton cache that memoizes
  subformula compilations across runs and interns database-independent
  presentation automata across databases;
* :mod:`repro.engine.metrics` — the process-wide counters registry
  (automata products/complements/projections, cache hits, engine wall
  time, planner decisions);
* :mod:`repro.engine.deadline` — cooperative per-request deadlines
  (``Query.run(db, timeout=...)`` and the query service's per-request
  budgets); the automata hot loops and both engines call its
  :func:`~repro.engine.deadline.checkpoint`;
* :mod:`repro.engine.explain` — EXPLAIN plan trees with per-node timings
  and automaton sizes, surfaced as ``Query.explain(db)`` and the
  ``python -m repro explain`` CLI subcommand.

Usage examples
--------------

Automatic engine selection (the planner chooses; ``plan`` shows why)::

    from repro import Query, StringDatabase

    db = StringDatabase("01", {"R": {"0110", "001"}})
    q = Query("R(x) & exists adom y: y <<= x")
    q.run(db).rows()            # planner picked an engine automatically
    print(q.plan(db).render())  # engine choice + cost estimates + tree

EXPLAIN with metrics and cache counters::

    e = q.explain(db)
    print(e.render())           # annotated tree, timings, cache stats
    e.to_dict()                 # the same as JSON-serializable data
    e.counters                  # metrics delta for just this run

Inspecting and tuning the cache and the counters::

    from repro.engine import global_cache, METRICS

    global_cache().stats()      # {"hits": ..., "misses": ..., ...}
    global_cache().resize(1024) # grow the LRU capacity
    METRICS.snapshot()          # all counters, e.g. for a JSON dump
    METRICS.reset()             # start a fresh measurement window

Import structure: :mod:`~repro.engine.metrics` and
:mod:`~repro.engine.cache` are dependency-free and imported eagerly (the
low-level automata modules report into them); the planner and explain
modules depend on :mod:`repro.eval` and are loaded lazily via
``__getattr__`` to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.engine.cache import (
    AutomatonCache,
    database_fingerprint,
    formula_key,
    global_cache,
)
from repro.engine.deadline import (
    Deadline,
    checkpoint,
    current_deadline,
    deadline_scope,
)
from repro.engine.metrics import METRICS, MetricsRegistry

__all__ = [
    "METRICS",
    "AlgebraTrace",
    "AutomatonCache",
    "Deadline",
    "EngineBackend",
    "Explain",
    "ExplainNode",
    "MetricsRegistry",
    "Plan",
    "PlanNode",
    "Planner",
    "all_backends",
    "backend_names",
    "checkpoint",
    "current_deadline",
    "database_fingerprint",
    "deadline_scope",
    "execute_plan",
    "explain_query",
    "formula_key",
    "get_backend",
    "global_cache",
    "plan_query",
    "register_backend",
    "resolve_engine",
    "unregister_backend",
]

_LAZY = {
    "Plan": "repro.engine.planner",
    "PlanNode": "repro.engine.planner",
    "Planner": "repro.engine.planner",
    "plan_query": "repro.engine.planner",
    "AlgebraTrace": "repro.engine.explain",
    "Explain": "repro.engine.explain",
    "ExplainNode": "repro.engine.explain",
    "execute_plan": "repro.engine.explain",
    "explain_query": "repro.engine.explain",
    "EngineBackend": "repro.engine.backend",
    "all_backends": "repro.engine.backend",
    "backend_names": "repro.engine.backend",
    "get_backend": "repro.engine.backend",
    "register_backend": "repro.engine.backend",
    "resolve_engine": "repro.engine.backend",
    "unregister_backend": "repro.engine.backend",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
