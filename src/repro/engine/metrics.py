"""A process-wide counters/timers registry for engine observability.

Every interesting event in the evaluation stack — automata products,
complements, determinizations, cache hits, planner decisions, engine wall
time — increments a named counter here.  The registry is deliberately
dependency-free (standard library only) so the lowest layers of the
library (:mod:`repro.automata.ops`, :mod:`repro.automatic.relation`) can
import it without cycles.

Counter names form a dotted hierarchy; the full list is documented in
``docs/explain_and_metrics.md``.  Typical use::

    from repro.engine.metrics import METRICS

    METRICS.reset()
    ... run queries ...
    print(METRICS.snapshot())          # {"automata.products": 42, ...}

Benchmarks dump ``METRICS.snapshot()`` as JSON (see ``make bench-smoke``);
:meth:`repro.core.query.Query.explain` reports the per-run *delta* of
these counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class MetricsRegistry:
    """Named monotonically-increasing counters and accumulated timers.

    Counters are plain integers (or floats for ``*.seconds`` entries);
    there is no sampling.  The registry is **thread-safe**: the query
    service (:mod:`repro.service`) runs evaluations on a worker pool and
    every increment is a read-modify-write, so a lock guards the counter
    dict — increments from concurrent workers are never lost and
    :meth:`snapshot` is an atomic point-in-time copy.
    """

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ recording

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at 0)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` under ``name`` (``*.seconds``)."""
        self.inc(name, seconds)

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating the elapsed time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    # ------------------------------------------------------------- reading

    def get(self, name: str) -> float:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        """A point-in-time copy of every counter (JSON-serializable)."""
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        """Zero every counter (fresh measurement window)."""
        with self._lock:
            self._values.clear()


def delta(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
    """Counter-wise ``after - before``, keeping only counters that moved."""
    out: dict[str, float] = {}
    for name, value in after.items():
        diff = value - before.get(name, 0)
        if diff:
            out[name] = diff
    return out


#: The process-wide registry used by the engines, cache, and planner.
METRICS = MetricsRegistry()
