"""The automaton cache: LRU memoization of compiled query automata.

Compiling a subformula to a :class:`~repro.automatic.relation.
RelationAutomaton` involves products, complements, determinizations and
minimizations — by far the dominant cost of the automata engine.  The
results are immutable, so they can be shared freely; this module provides
the session-wide store that makes repeated work free:

* **keys** are *structural*: the canonical fingerprint of the
  (term-flattened) subformula — alpha-invariant and conjunct-order
  invariant, see :mod:`repro.logic.canonical` — plus the structure name,
  alphabet, and slack.  Subformulas
  whose value depends on the database — they mention a relation, or a
  restricted (ADOM/PREFIX/LENGTH) quantifier ranges over the active
  domain (:meth:`repro.logic.formulas.Formula.database_dependent`) —
  additionally carry a **database fingerprint** (a SHA-1 over the
  canonicalized instance), so a cached entry is only reused against the
  identical database;
* database-independent subformulas (pure structure/presentation automata
  like ``x <<= y & last(y, '0')``, NATURAL quantifiers included) are
  keyed **without** the fingerprint — they are interned once per session
  and shared across every database;
* the store is **LRU-bounded** (default 256 entries) and counts hits /
  misses / evictions both locally and in :data:`repro.engine.metrics.
  METRICS` (``cache.hits`` / ``cache.misses`` / ``cache.evictions``);
* the store is **thread-safe**: the query service shares one cache across
  its whole worker pool, so lookups, insertions, and LRU eviction hold an
  internal lock.  Values must be immutable (they are handed back to
  concurrent readers without copying); concurrent misses on the same key
  may build the same automaton twice, in which case the last ``put`` wins
  — wasted work, never a wrong answer.

Usage::

    from repro.engine.cache import global_cache

    cache = global_cache()
    cache.stats()       # {"hits": 10, "misses": 4, "size": 4, ...}
    cache.clear()       # drop entries, keep counters
    cache.resize(1024)  # tune capacity

Depends only on the stdlib and :mod:`repro.logic.canonical` on purpose:
importable from any engine layer without cycles.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.engine.metrics import METRICS
from repro.logic.canonical import canonical_fingerprint

#: Default number of cached automata (per cache instance).
DEFAULT_MAXSIZE = 256


class AutomatonCache:
    """An LRU map from structural keys to compiled automata.

    Values are opaque to the cache (the engines store
    ``(RelationAutomaton, variables)`` pairs and whole query results);
    they must be immutable, since hits hand back the stored object.
    """

    __slots__ = (
        "maxsize", "_data", "hits", "misses", "evictions", "_lock", "_prefix",
        "_miss_loader", "warm_hits",
    )

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE, metrics_prefix: str = "cache"):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        #: METRICS namespace: the automaton cache reports ``cache.*``,
        #: secondary caches (e.g. codegen closures) pick their own prefix
        #: so the shared registry keeps the hit rates apart.
        self._prefix = metrics_prefix
        #: Optional second-chance loader consulted on a miss — the
        #: warm-start persistence hook (:mod:`repro.engine.warmstart`).
        #: Called outside the lock (disk IO must not serialize readers);
        #: a concurrent duplicate load is wasted work, never a wrong
        #: answer, exactly like a concurrent duplicate build.
        self._miss_loader = None
        self.warm_hits = 0

    # ------------------------------------------------------------ access

    def attach_loader(self, loader) -> None:
        """Install ``loader(key) -> value | None`` as the miss fallback.

        The serialization hook behind warm-start persistence: a
        :class:`~repro.engine.warmstart.WarmStartStore` attaches its
        ``load`` here, so entries spilled by a previous process are pulled
        off disk lazily — on first demand, not in a boot-time stampede.
        Pass ``None`` to detach.
        """
        self._miss_loader = loader

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` (counts hit/miss).

        A miss consults the attached warm-start loader (if any) before
        giving up; a loader hit is inserted, counted under
        ``<prefix>.warm_hits``, and *also* counted as the miss it was —
        the in-memory hit rate stays honest while the warm counter shows
        how much recompilation the spill avoided.
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                METRICS.inc(f"{self._prefix}.misses")
                loader = self._miss_loader
            else:
                self._data.move_to_end(key)
                self.hits += 1
                METRICS.inc(f"{self._prefix}.hits")
                return value
        if loader is None:
            return None
        value = loader(key)
        if value is None:
            return None
        with self._lock:
            self.warm_hits += 1
        METRICS.inc(f"{self._prefix}.warm_hits")
        self.put(key, value)
        return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` without counting a hit or miss.

        Used by the delta-maintenance promotion path (:mod:`repro.delta`),
        which probes *ancestor-version* keys after the real lookup already
        counted its miss — promotion probes must not distort the
        hit-rate the stats endpoints report."""
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                METRICS.inc(f"{self._prefix}.evictions")

    def get_or_build(self, key: Hashable, builder) -> Any:
        """Cached value for ``key``, calling ``builder()`` on a miss."""
        value = self.get(key)
        if value is None:
            value = builder()
            self.put(key, value)
        return value

    # ---------------------------------------------------------- management

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def entries(self) -> list[tuple[Hashable, Any]]:
        """A snapshot of (key, value) pairs, LRU-oldest first.

        The spill side of the warm-start serialization hooks: values are
        immutable by the cache's own contract, so handing them out for
        serialization is safe without copying.
        """
        with self._lock:
            return list(self._data.items())

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "warm_hits": self.warm_hits,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset`)."""
        with self._lock:
            self._data.clear()

    def reset(self) -> None:
        """Drop entries *and* zero the counters."""
        with self._lock:
            self._data.clear()
            self.hits = self.misses = self.evictions = self.warm_hits = 0

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting LRU entries if shrinking."""
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        with self._lock:
            self.maxsize = maxsize
            while len(self._data) > maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                METRICS.inc(f"{self._prefix}.evictions")

    def __repr__(self) -> str:
        return f"AutomatonCache({self.stats()})"


# ------------------------------------------------------------------- keying


def database_fingerprint(database) -> str:
    """A stable hex digest of a database instance, memoized per instance.

    Canonical serialization: alphabet symbols, then each relation name with
    its sorted tuples.  Two databases share a fingerprint iff they are
    extensionally equal (up to SHA-1 collisions) — except for snapshots
    produced by :mod:`repro.delta`, whose slot is pre-seeded with the
    **chained version fingerprint** (parent fingerprint + delta digest):
    still injective on content, computed in O(|delta|), but deliberately
    distinct from the content digest an independent registration of equal
    content would get (a conservative cache miss, never a wrong hit).

    Instances are immutable, so the digest is computed once and cached on
    the instance (``Database._fingerprint``); every plan/cache lookup
    after the first is O(1) instead of rehashing all tuples.
    """
    cached = getattr(database, "_fingerprint", None)
    if cached is not None:
        METRICS.inc("cache.fingerprint_memo_hits")
        return cached
    h = hashlib.sha1()
    h.update("|".join(database.alphabet.symbols).encode())
    for name in sorted(database.relation_names):
        h.update(b"\x00")
        h.update(name.encode())
        for tup in sorted(database.relation(name)):
            h.update(b"\x01")
            h.update("\x02".join(tup).encode())
    fingerprint = h.hexdigest()
    try:
        database._fingerprint = fingerprint
    except AttributeError:  # duck-typed stand-ins without the memo slot
        pass
    return fingerprint


def formula_key(
    formula,
    structure_name: str,
    alphabet_symbols: tuple[str, ...],
    slack: int,
    db_fingerprint: Optional[str],
    stage: str = "automata",
) -> tuple:
    """The structural cache key of one (sub)formula compilation.

    The formula component is its **canonical fingerprint**
    (:func:`repro.logic.canonical.canonical_fingerprint`), so
    alpha-equivalent and conjunct-reordered spellings share one entry.
    ``db_fingerprint`` must be ``None`` exactly when the formula is
    database-independent (no relation atoms *and* no restricted
    quantifiers, :meth:`repro.logic.formulas.Formula.database_dependent`)
    — that is what makes pure presentation automata
    *interned* across databases.  ``stage`` names the backend value space
    (``"automata"`` subformula compilations vs ``"direct-result"`` /
    ``"algebra-result"`` whole query results) — together the key is
    (canonical fingerprint, db fingerprint, backend stage).
    """
    return (
        stage,
        structure_name,
        alphabet_symbols,
        slack,
        db_fingerprint,
        canonical_fingerprint(formula),
    )


_GLOBAL = AutomatonCache()


def global_cache() -> AutomatonCache:
    """The session-wide cache shared by :class:`repro.core.query.Query`."""
    return _GLOBAL
