"""Cooperative per-request deadlines for the evaluation stack.

Query evaluation can blow up combinatorially (automata products after
projection, LENGTH-domain enumeration), and a serving tier cannot afford a
request that never returns.  Python threads cannot be killed, so the
engines are cancelled *cooperatively*: a :class:`Deadline` is installed
for the current thread with :func:`deadline_scope`, and the tight loops of
the evaluation stack call :func:`checkpoint` — which raises
:class:`~repro.errors.EvaluationTimeout` once the deadline has passed.

Checkpoints are threaded through every place the engines can spend
unbounded time:

* the :mod:`repro.automata.kernel` pipelines — product exploration,
  subset construction, and Hopcroft refinement all checkpoint on a small
  stride (the classic blowup points);
* :meth:`repro.automata.nfa.NFA.determinize` — one check per subset state;
* :meth:`repro.automata.hopcroft.minimize`'s refinement loop;
* :meth:`repro.eval.automata_engine.AutomataEngine._build` — per
  subformula compilation;
* the :class:`repro.eval.direct.DirectEngine` candidate loops (strided —
  the per-candidate work is tiny, so checking every candidate would cost
  more than the work itself).

The module is stdlib-only and imports nothing above :mod:`repro.errors`,
so the lowest automata layers can use it without cycles.  With no active
deadline, :func:`checkpoint` is a single thread-local attribute lookup —
cheap enough to leave in release hot loops.

Usage::

    from repro.engine.deadline import deadline_scope

    with deadline_scope(0.250):          # 250 ms budget
        query.result(db)                 # raises EvaluationTimeout if over

Scopes nest: an inner scope can only *tighten* the effective deadline,
never extend it — an outer 100 ms budget caps an inner ``deadline_scope(10)``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional, Union

from repro.errors import EvaluationTimeout

__all__ = [
    "Deadline",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
    "remaining",
]


class Deadline:
    """An absolute expiry on the monotonic clock.

    Parameters
    ----------
    seconds:
        Budget from *now*; ``Deadline.at(expires_at)`` builds one from an
        absolute :func:`time.monotonic` instant instead.
    """

    __slots__ = ("expires_at", "timeout", "started_at")

    def __init__(self, seconds: float):
        now = time.monotonic()
        self.started_at = now
        self.timeout: Optional[float] = seconds
        self.expires_at = now + seconds

    @classmethod
    def at(cls, expires_at: float) -> "Deadline":
        deadline = cls.__new__(cls)
        deadline.started_at = time.monotonic()
        deadline.timeout = None
        deadline.expires_at = expires_at
        return deadline

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def cancel(self) -> None:
        """Pull the expiry into the past: the next :meth:`check` raises.

        Cooperative cancellation reuses the deadline machinery — every
        engine hot loop already calls :func:`checkpoint`, so expiring the
        deadline stops in-flight work at the next checkpoint without any
        new hook.  The query service uses this to abandon work whose
        streaming client disconnected.
        """
        self.expires_at = float("-inf")

    def check(self) -> None:
        """Raise :class:`EvaluationTimeout` if the deadline has passed."""
        now = time.monotonic()
        if now >= self.expires_at:
            elapsed = now - self.started_at
            budget = (
                f"{self.timeout:.6g}s budget" if self.timeout is not None
                else "deadline"
            )
            raise EvaluationTimeout(
                f"evaluation exceeded its {budget} "
                f"(cancelled after {elapsed:.3f}s)",
                timeout=self.timeout,
                elapsed=elapsed,
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.6f}s)"


_local = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current thread, or ``None``."""
    return getattr(_local, "deadline", None)


def checkpoint() -> None:
    """Raise :class:`EvaluationTimeout` if the current thread's deadline
    (if any) has passed.  Free when no deadline is active."""
    deadline = getattr(_local, "deadline", None)
    if deadline is not None:
        deadline.check()


def remaining() -> Optional[float]:
    """Seconds left on the current deadline (``None`` when unbounded)."""
    deadline = getattr(_local, "deadline", None)
    return None if deadline is None else deadline.remaining()


@contextmanager
def deadline_scope(limit: Union[float, Deadline, None]):
    """Install a deadline for the current thread for the ``with`` body.

    ``limit`` is a budget in seconds, an existing :class:`Deadline` (so a
    worker thread can adopt the deadline stamped on a queued request —
    queue wait counts against the budget), or ``None`` (no-op, convenient
    for optional ``timeout=`` parameters).  Nested scopes keep whichever
    deadline expires first.
    """
    if limit is None:
        yield None
        return
    deadline = limit if isinstance(limit, Deadline) else Deadline(limit)
    previous = getattr(_local, "deadline", None)
    if previous is not None and previous.expires_at <= deadline.expires_at:
        deadline = previous
    _local.deadline = deadline
    try:
        yield deadline
    finally:
        _local.deadline = previous
