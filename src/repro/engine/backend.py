"""Engine backends: one registry, one dispatch path for every engine.

Historically the library's three engines (direct, automata, algebra) were
glued together by string-literal dispatch — ``if plan.engine ==
"automata": ...`` — duplicated across the planner, EXPLAIN, the public
:class:`~repro.core.query.Query` API, the query service, and the CLI, and
each engine re-implemented its own cache keys and metrics names.  This
module replaces all of that with a single seam:

* :class:`EngineBackend` — the interface one evaluation strategy
  implements: a ``name``, an :meth:`~EngineBackend.eligible` gate (may
  this backend run this query *without changing the answer*?), a cost
  estimate, forced-mode preparation (e.g. collapsing NATURAL
  quantifiers), :meth:`~EngineBackend.execute`, and the EXPLAIN trace
  hooks;
* a process-wide **registry** (:func:`register_backend`,
  :func:`get_backend`, :func:`backend_names`, :func:`all_backends`) that
  the planner iterates — eligibility gate first, then cost argmin — so
  adding backend #4 is one ``register_backend`` call, not five edits;
* :func:`resolve_engine` — the one place the ``None``/``"auto"``/name
  normalization lives; unknown names raise
  :class:`~repro.errors.EvaluationError` listing the registered backends.

Every layer above :mod:`repro.engine` resolves engine names through this
registry only; ``make lint-dispatch`` fails the build if an engine-name
literal comparison reappears outside ``src/repro/engine/``.

The cache keys all three backends use are built by
:func:`repro.engine.cache.formula_key` on the **canonical fingerprint**
(:mod:`repro.logic.canonical`) of the formula plus the database
fingerprint and the backend's stage name, so alpha-equivalent and
conjunct-reordered queries share cache entries across every backend.
"""

from __future__ import annotations

import abc
import threading
from typing import TYPE_CHECKING, Optional

from repro.database.instance import Database
from repro.engine.cache import AutomatonCache, database_fingerprint, formula_key
from repro.engine.metrics import METRICS
from repro.errors import EvaluationError
from repro.logic.formulas import Formula, QuantKind
from repro.structures.base import StringStructure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.explain import ExplainNode
    from repro.engine.planner import Plan, Planner
    from repro.eval.result import QueryResult

__all__ = [
    "EngineBackend",
    "all_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_engine",
    "unregister_backend",
]


class EngineBackend(abc.ABC):
    """One evaluation strategy, as seen by the planner and executors.

    Subclasses implement the abstract methods and register an instance
    with :func:`register_backend`.  All methods must be thread-safe: the
    query service shares the registry across its whole worker pool.
    """

    #: Registry key, forced-engine name, and METRICS component.
    name: str = ""

    #: Tie-break rank during auto-selection: among backends whose scaled
    #: cost estimates tie, the lowest priority wins.  The built-ins use
    #: direct=0, algebra=10, automata=20 (the historical preference).
    priority: int = 100

    # ------------------------------------------------------------- planning

    @abc.abstractmethod
    def eligible(
        self, formula: Formula, structure: StringStructure, database: Database
    ) -> tuple[bool, str]:
        """May this backend evaluate ``formula`` without changing the answer?

        Returns ``(ok, reason)``; the reason of the blocking backend is
        surfaced in the plan when only one backend remains eligible.
        """

    @abc.abstractmethod
    def estimate_cost(
        self,
        formula: Formula,
        structure: StringStructure,
        database: Database,
        slack: int,
        planner: "Planner",
    ) -> float:
        """Estimated work in the planner's common cost units (may be inf).

        Called for *every* registered backend (eligible or not) so plans
        can display the full comparison; ineligible regimes return inf.
        """

    def decision_cost(self, cost: float, planner: "Planner") -> float:
        """Scale the display estimate for cross-backend comparison.

        The default is the identity; built-ins use it to apply the
        planner's tuning knobs (direct's enumeration ceiling, the
        automata state-expansion bias)."""
        return cost

    def prepare_forced(
        self, formula: Formula, structure: StringStructure, slack: Optional[int]
    ) -> tuple[Formula, int, str]:
        """Formula, slack, and reason used when this engine is *forced*.

        The default runs the formula as-is with slack 0; backends that
        cannot evaluate NATURAL quantifiers collapse them here (and may
        raise at plan time when even the collapsed formula is out of
        reach — a clearer error than one mid-execution)."""
        return formula, slack if slack is not None else 0, "engine forced by caller"

    def chosen_reason(self, costs: dict[str, float], planner: "Planner") -> str:
        """One-line justification when auto-selection picks this backend."""
        return f"estimated cheapest (≈{costs.get(self.name, float('inf')):g})"

    # ------------------------------------------------------------ execution

    @abc.abstractmethod
    def execute(
        self,
        plan: "Plan",
        database: Database,
        cache: AutomatonCache,
        observer: object = None,
    ) -> "QueryResult":
        """Run a plan this backend produced (``plan.engine == self.name``)."""

    # -------------------------------------------------------------- explain

    def trace_observer(self) -> object:
        """A fresh observer :meth:`execute` fills for EXPLAIN, or ``None``
        when the backend has no per-node instrumentation."""
        return None

    def trace_tree(
        self, plan: "Plan", observer: object, seconds: float
    ) -> Optional["ExplainNode"]:
        """The annotated EXPLAIN tree built from ``observer``.

        ``None`` falls back to the planner's static tree with the total
        wall time on the root."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


# ------------------------------------------------------------------ registry


_REGISTRY: dict[str, EngineBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: EngineBackend, replace: bool = False) -> EngineBackend:
    """Add ``backend`` to the registry (keyed by ``backend.name``).

    Registration makes the backend visible to the planner's auto-selection
    loop, to ``engine=`` forcing on every API layer, and to the CLI's
    ``--engine`` flag — adding an engine is exactly this one call.
    """
    if not backend.name or backend.name == "auto":
        raise EvaluationError(
            f"backend name {backend.name!r} is reserved or empty"
        )
    with _REGISTRY_LOCK:
        if backend.name in _REGISTRY and not replace:
            raise EvaluationError(
                f"backend {backend.name!r} is already registered "
                "(pass replace=True to swap it)"
            )
        _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (primarily for tests registering toys)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def all_backends() -> tuple[EngineBackend, ...]:
    """Every registered backend, in auto-selection order (priority, name)."""
    with _REGISTRY_LOCK:
        backends = list(_REGISTRY.values())
    return tuple(sorted(backends, key=lambda b: (b.priority, b.name)))


def get_backend(name: str) -> EngineBackend:
    """The backend registered under ``name``.

    Raises :class:`~repro.errors.EvaluationError` listing the registered
    names — the single source of the "unknown engine" error on every
    layer (``Query.run``, the service, the CLI)."""
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        have = ", ".join(backend_names()) or "none"
        raise EvaluationError(
            f"unknown engine {name!r} (registered backends: {have})"
        )
    return backend


def resolve_engine(name: Optional[str]) -> Optional[str]:
    """Normalize an ``engine=`` argument to a registered backend name.

    ``None`` and ``"auto"`` mean planner-selected and resolve to ``None``;
    anything else must name a registered backend (validated here, so the
    caller gets the registry-sourced error before any work starts)."""
    if name is None or name == "auto":
        return None
    return get_backend(name).name


# ------------------------------------------------------- shared eligibility


def restricted_output_gate(
    formula: Formula, database: Database
) -> tuple[bool, str]:
    """The conservatism rules shared by every restricted-domain backend.

    A backend that enumerates restricted domains (direct, algebra) agrees
    with the reference natural semantics only when (1) the formula has no
    NATURAL quantifier, (2) every free variable is anchored in a positive
    database atom, and (3) ADOM quantification is not vacuously empty.
    The reasons mirror the planner's historical wording.
    """
    from repro.engine.planner import anchored_free_variables

    kinds = formula.quantifier_kinds()
    if QuantKind.NATURAL in kinds:
        return False, "NATURAL quantifiers need the exact automata engine"
    free = formula.free_variables()
    anchored = anchored_free_variables(formula)
    if free and not free <= anchored:
        loose = sorted(free - anchored)
        return False, (
            f"free variable(s) {loose} not anchored in a positive "
            "database atom; direct enumeration could truncate the output"
        )
    if QuantKind.ADOM in kinds and not database.adom:
        return False, "empty active domain: ADOM anchoring is vacuous"
    return True, "restricted quantifiers with anchored output"


def _fmt_cost(cost: float) -> str:
    from repro.engine.planner import _fmt_cost as fmt

    return fmt(cost)


# ------------------------------------------------------- built-in backends


class DirectBackend(EngineBackend):
    """Tuple-at-a-time enumeration over the restricted quantifier domains
    (:mod:`repro.eval.direct`); caches whole result relations."""

    name = "direct"
    priority = 0

    def eligible(self, formula, structure, database):
        return restricted_output_gate(formula, database)

    def estimate_cost(self, formula, structure, database, slack, planner):
        from repro.engine.planner import estimate_direct_cost

        return estimate_direct_cost(formula, structure, database, slack)

    def decision_cost(self, cost, planner):
        # The ceiling protects against LENGTH-domain blowups: past it the
        # backend drops out of the comparison entirely.
        return cost if cost <= planner.ceiling else float("inf")

    def prepare_forced(self, formula, structure, slack):
        # Mirror the historical Query.result(engine="direct") semantics:
        # collapse NATURAL quantifiers, default slack 1.
        from repro.eval.collapse import collapse

        collapsed = collapse(formula, structure, slack=1 if slack is None else slack)
        return (
            collapsed.formula,
            collapsed.slack,
            "engine forced by caller (formula collapsed)",
        )

    def chosen_reason(self, costs, planner):
        return (
            "restricted quantifiers, anchored output, and a small "
            f"enumeration domain (≈{_fmt_cost(costs[self.name])} checks)"
        )

    def execute(self, plan, database, cache, observer=None):
        from repro.delta.maintenance import promote_result
        from repro.eval.direct import DirectEngine
        from repro.eval.result import QueryResult

        key = formula_key(
            plan.formula,
            plan.structure.name,
            plan.structure.alphabet.symbols,
            plan.slack,
            database_fingerprint(database),
            stage="direct-result",
        )
        cached = cache.get(key)
        if cached is None:
            # The database may be a delta-store version whose ancestors
            # already answered this query; untouched relations + stable
            # adom mean the old result is still exact.
            cached = promote_result(cache, key, plan.formula)
        if cached is not None:
            return QueryResult(*cached)
        result = DirectEngine(
            plan.structure, database, slack=plan.slack
        ).run(plan.formula)
        cache.put(key, (result.variables, result.relation))
        return result


class AutomataBackend(EngineBackend):
    """The exact reference engine (:mod:`repro.eval.automata_engine`):
    handles every query, natural quantifiers and infinite outputs
    included, memoizing each subformula automaton in the shared cache."""

    name = "automata"
    priority = 20

    def eligible(self, formula, structure, database):
        return True, "exact on every query of the calculus"

    def estimate_cost(self, formula, structure, database, slack, planner):
        from repro.engine.planner import estimate_automata_cost

        return estimate_automata_cost(formula, structure, database)

    def decision_cost(self, cost, planner):
        # One state expansion costs as much as `bias` direct checks.
        # The bias models the dense kernel (flat-array products, lazy
        # pipelines, vectorized Hopcroft — see repro/automata/kernel.py),
        # not the legacy dict-of-dicts machinery; see DIRECT_BIAS.
        return cost * planner.bias

    def chosen_reason(self, costs, planner):
        direct = costs.get("direct", float("inf"))
        if direct > planner.ceiling:
            return (
                f"restricted domains too large for enumeration "
                f"(≈{_fmt_cost(direct)} checks > ceiling "
                f"{_fmt_cost(planner.ceiling)})"
            )
        return (
            "automata compilation estimated cheaper than "
            f"enumeration (≈{_fmt_cost(costs[self.name])} states vs "
            f"≈{_fmt_cost(direct)} checks)"
        )

    def execute(self, plan, database, cache, observer=None):
        from repro.eval.automata_engine import AutomataEngine

        engine = AutomataEngine(
            plan.structure,
            database,
            slack=plan.slack,
            cache=cache,
            observer=observer,
        )
        return engine.run(plan.formula)

    def trace_observer(self):
        from repro.engine.explain import TraceObserver

        return TraceObserver()

    def trace_tree(self, plan, observer, seconds):
        return getattr(observer, "root", None)


class AlgebraBackend(EngineBackend):
    """The set-at-a-time RA(M) executor (:mod:`repro.algebra.exec`):
    hash joins over the collapsed form, whole results cached."""

    name = "algebra"
    priority = 10

    def eligible(self, formula, structure, database):
        from repro.algebra.ranf import translation_verdict

        verdict = translation_verdict(formula, structure)
        if not verdict.ok:
            where = f" at {verdict.bail_node}" if verdict.bail_node else ""
            return False, (
                "not range-restricted (RANF translation bailed: "
                f"{verdict.reason}{where})"
            )
        # The gamma-bounded branch tolerates unanchored output (its pair
        # carries the runtime bound check), but vacuous ADOM anchoring is
        # still degenerate — let direct answer it for free.
        if QuantKind.ADOM in formula.quantifier_kinds() and not database.adom:
            return False, "empty active domain: ADOM anchoring is vacuous"
        return True, f"RANF-translatable query ({verdict.branch} branch)"

    def estimate_cost(self, formula, structure, database, slack, planner):
        from repro.algebra import ranf
        from repro.engine.planner import estimate_algebra_cost

        cost = estimate_algebra_cost(formula, structure, database, slack)
        if cost != float("inf"):
            # Fixed compile+rewrite setup, so tiny queries stay direct.
            cost += planner.algebra_setup
            verdict = ranf.translation_verdict(formula, structure)
            if (
                verdict.ok
                and verdict.branch != "collapsed"
                and not ranf.has_translation(
                    formula, structure, database.schema, slack
                )
            ):
                # The RANF pass itself; amortized away once the pair is
                # in the translation cache.
                cost += planner.ranf_setup
        return cost

    def prepare_forced(self, formula, structure, slack):
        # Same restricted semantics as a forced direct engine: collapse
        # NATURAL quantifiers (default slack 1), then require the result
        # to be RANF-translatable — strictly wider than the historical
        # collapsed-form check.  Fail here, at plan time, if even the
        # collapsed formula bails — a clearer error than one
        # mid-execution.
        from repro.algebra.compile import CompileError
        from repro.algebra.ranf import translation_verdict
        from repro.eval.collapse import collapse

        collapsed = collapse(formula, structure, slack=1 if slack is None else slack)
        verdict = translation_verdict(collapsed.formula, structure)
        if not verdict.ok:
            raise CompileError(
                "algebra engine cannot evaluate this query even after "
                f"collapsing: RANF translation bailed: {verdict.reason}"
            )
        return (
            collapsed.formula,
            collapsed.slack,
            "engine forced by caller (formula collapsed)",
        )

    def chosen_reason(self, costs, planner):
        return (
            "RANF-translatable query: set-at-a-time hash joins "
            f"estimated cheapest (≈{_fmt_cost(costs[self.name])} row "
            f"ops vs ≈{_fmt_cost(costs.get('direct', float('inf')))} "
            "direct checks)"
        )

    def execute(self, plan, database, cache, observer=None):
        from repro.algebra.exec import run_algebra
        from repro.automatic.relation import RelationAutomaton
        from repro.engine.explain import AlgebraTrace
        from repro.eval.result import QueryResult

        key = formula_key(
            plan.formula,
            plan.structure.name,
            plan.structure.alphabet.symbols,
            plan.slack,
            database_fingerprint(database),
            stage="algebra-result",
        )
        cached = cache.get(key)
        if cached is not None:
            if isinstance(observer, AlgebraTrace):
                observer.cached = True
            return QueryResult(*cached)
        # Delta-store versions: maintain the previous version's recorded
        # subplan rows through the ΔQ rules instead of recomputing; full
        # runs on tracked versions record their subplans for next time.
        from repro.delta import maintenance

        maintained = maintenance.maintain_algebra_result(plan, database)
        if maintained is not None:
            # Maintained (and whole-result-cached) runs reuse a prior
            # full run's answer, whose "infinite" check already passed.
            columns, rows = maintained
            if isinstance(observer, AlgebraTrace):
                observer.cached = True
        else:
            from repro.algebra.ranf import run_ranf, translation_verdict

            verdict = translation_verdict(plan.formula, plan.structure)
            if verdict.ok and verdict.branch != "collapsed":
                run = run_ranf(
                    plan.formula,
                    plan.structure,
                    database,
                    slack=plan.slack,
                    recorder=maintenance.subplan_recorder(plan.structure, database),
                )
                if isinstance(observer, AlgebraTrace):
                    observer.ranf_branch = run.branch
                    observer.inf_stats = run.inf_stats
                    observer.infinite = run.infinite
                if run.infinite:
                    # The runtime bound certificate failed: the natural
                    # result may be infinite; defer to the exact engine
                    # (correctness fallback, never a wrong answer).
                    from repro.eval.automata_engine import AutomataEngine

                    result = AutomataEngine(
                        plan.structure, database, slack=plan.slack, cache=cache
                    ).run(plan.formula)
                    cache.put(key, (result.variables, result.relation))
                    return result
                columns, rows = run.columns, run.rows
                if isinstance(observer, AlgebraTrace):
                    observer.stats = run.stats
            else:
                columns, rows, stats = run_algebra(
                    plan.formula,
                    plan.structure,
                    database,
                    slack=plan.slack,
                    recorder=maintenance.subplan_recorder(plan.structure, database),
                )
                if isinstance(observer, AlgebraTrace):
                    observer.stats = stats
        relation = RelationAutomaton.from_tuples(
            plan.structure.alphabet, len(columns), rows
        )
        result = QueryResult(columns, relation)
        cache.put(key, (result.variables, result.relation))
        return result

    def trace_observer(self):
        from repro.engine.explain import AlgebraTrace

        return AlgebraTrace()

    def trace_tree(self, plan, observer, seconds):
        from repro.engine.explain import (
            ExplainNode,
            op_stats_to_explain,
            plan_tree_to_explain,
        )

        stats = getattr(observer, "stats", None)
        branch = getattr(observer, "ranf_branch", None)
        inf_stats = getattr(observer, "inf_stats", None)
        if branch is not None and (stats is not None or inf_stats is not None):
            # A RANF pair ran: show both halves under one root, annotated
            # with the branch that fired and the infinity-check outcome.
            children = []
            if inf_stats is not None:
                inf_node = op_stats_to_explain(inf_stats)
                inf_node.annotations["half"] = "inf"
                children.append(inf_node)
            if stats is not None:
                fin_node = op_stats_to_explain(stats)
                fin_node.annotations["half"] = "fin"
                children.append(fin_node)
            notes: dict[str, object] = {"branch": branch}
            if getattr(observer, "infinite", False):
                notes["infinite"] = True
                notes["fallback"] = "automata"
            return ExplainNode(
                f"ranf[{branch}]", "RanfPair", seconds=seconds,
                annotations=notes, children=children,
            )
        if stats is not None:
            return op_stats_to_explain(stats)
        if getattr(observer, "cached", False):
            # Whole-result cache hit: no physical operators ran — show the
            # planner's static tree, marked cached.
            root = plan_tree_to_explain(plan.root)
            root.seconds = seconds
            root.cache_hit = True
            return root
        return None


class CodegenBackend(EngineBackend):
    """Compiled-plan pipelines (:mod:`repro.algebra.codegen`): the
    optimized algebra plan fused into one generated Python closure —
    inlined predicates, hash tables built outside the probe loop, set ops
    on projected streams — cached per canonical fingerprint + schema."""

    name = "codegen"
    priority = 5

    def eligible(self, formula, structure, database):
        from repro.algebra.codegen import shape_supported
        from repro.engine.planner import algebra_eligible

        # Codegen compiles only the finite half of a RANF pair, so it
        # keeps the anchored-output gate: the gamma-bounded branch (whose
        # pair carries a runtime infinity check) stays on the interpreted
        # algebra backend.
        ok, reason = restricted_output_gate(formula, database)
        if not ok:
            return ok, reason
        if not algebra_eligible(formula, structure):
            return False, (
                "not RANF-translatable: codegen compiles exactly the "
                "algebra engine's (widened) regime"
            )
        ok, why = shape_supported(formula, structure, database.schema)
        if not ok:
            return False, f"plan shape not fuseable: {why}"
        return True, "RANF-translatable query with a fuseable plan shape"

    def estimate_cost(self, formula, structure, database, slack, planner):
        from repro.algebra.codegen import has_pipeline
        from repro.engine.planner import CODEGEN_ROW_FACTOR, estimate_algebra_cost

        cost = estimate_algebra_cost(formula, structure, database, slack)
        if cost == float("inf"):
            return cost
        # Fusion removes per-tuple interpreter dispatch, so row work is
        # cheaper than the interpreted executor's; compilation itself is
        # charged only while no closure is cached — the LRU amortizes it
        # away for repeated and prepared queries.
        scaled = cost * CODEGEN_ROW_FACTOR
        if not has_pipeline(formula, structure, database.schema, slack):
            scaled += planner.codegen_setup
            from repro.algebra import ranf

            verdict = ranf.translation_verdict(formula, structure)
            if (
                verdict.ok
                and verdict.branch != "collapsed"
                and not ranf.has_translation(
                    formula, structure, database.schema, slack
                )
            ):
                scaled += planner.ranf_setup
        return scaled

    def prepare_forced(self, formula, structure, slack):
        from repro.algebra.compile import CompileError
        from repro.algebra.ranf import translation_verdict
        from repro.eval.collapse import collapse

        collapsed = collapse(formula, structure, slack=1 if slack is None else slack)
        verdict = translation_verdict(collapsed.formula, structure)
        if not verdict.ok:
            raise CompileError(
                "codegen engine cannot evaluate this query even after "
                f"collapsing: RANF translation bailed: {verdict.reason}"
            )
        return (
            collapsed.formula,
            collapsed.slack,
            "engine forced by caller (formula collapsed)",
        )

    def chosen_reason(self, costs, planner):
        return (
            "fused compiled pipeline estimated cheapest "
            f"(≈{_fmt_cost(costs[self.name])} row ops after fusion vs "
            f"≈{_fmt_cost(costs.get('algebra', float('inf')))} interpreted)"
        )

    def execute(self, plan, database, cache, observer=None):
        from repro.algebra.codegen import get_pipeline
        from repro.algebra.exec import run_algebra
        from repro.automatic.relation import RelationAutomaton
        from repro.delta.maintenance import promote_result
        from repro.engine.explain import CodegenTrace
        from repro.engine.metrics import METRICS
        from repro.eval.result import QueryResult

        key = formula_key(
            plan.formula,
            plan.structure.name,
            plan.structure.alphabet.symbols,
            plan.slack,
            database_fingerprint(database),
            stage="codegen-result",
        )
        cached = cache.get(key)
        if cached is None:
            # Delta-store versions whose walked deltas touch none of the
            # query's relations re-key the old result forward; anything
            # else falls through to a full compiled run — closures are
            # schema-keyed, so row-only deltas reuse the compiled code
            # and only pay the data pass (never a stale answer).
            cached = promote_result(cache, key, plan.formula)
        if cached is not None:
            if isinstance(observer, CodegenTrace):
                observer.cached = True
            return QueryResult(*cached)
        pipeline, detail = get_pipeline(
            plan.formula, plan.structure, database.schema, plan.slack
        )
        if pipeline is None:
            # Structured fallback: unsupported plan shapes run on the
            # interpreted algebra executor instead of failing.
            METRICS.inc("codegen.fallbacks")
            columns, rows, stats = run_algebra(
                plan.formula, plan.structure, database, slack=plan.slack
            )
            if isinstance(observer, CodegenTrace):
                observer.stats = stats
                observer.fallback = detail
        else:
            METRICS.inc("codegen.runs")
            rows, stage_rows = pipeline.run(database)
            columns = pipeline.columns
            if isinstance(observer, CodegenTrace):
                observer.pipeline = pipeline
                observer.stage_rows = stage_rows
                observer.closure_hit = detail == "hit"
        relation = RelationAutomaton.from_tuples(
            plan.structure.alphabet, len(columns), rows
        )
        result = QueryResult(columns, relation)
        cache.put(key, (result.variables, result.relation))
        return result

    def trace_observer(self):
        from repro.engine.explain import CodegenTrace

        return CodegenTrace()

    def trace_tree(self, plan, observer, seconds):
        from repro.engine.explain import (
            ExplainNode,
            op_stats_to_explain,
            plan_tree_to_explain,
        )

        if getattr(observer, "cached", False):
            root = plan_tree_to_explain(plan.root)
            root.seconds = seconds
            root.cache_hit = True
            return root
        stats = getattr(observer, "stats", None)
        if stats is not None:
            root = op_stats_to_explain(stats)
            root.annotations["codegen_fallback"] = getattr(
                observer, "fallback", "unknown"
            )
            return root
        pipeline = getattr(observer, "pipeline", None)
        if pipeline is None:
            return None
        stage_rows = getattr(observer, "stage_rows", None) or []
        children = []
        for i, stage in enumerate(pipeline.stages):
            notes = {"rows": stage_rows[i] if i < len(stage_rows) else "?"}
            if stage["numpy"]:
                notes["numpy"] = True
            children.append(
                ExplainNode(stage["label"], stage["kind"], annotations=notes)
            )
        return ExplainNode(
            f"codegen[{len(pipeline.stages)} fused stages, "
            f"{pipeline.line_count} source lines]",
            "CodegenPipeline",
            seconds=seconds,
            annotations={
                "source_lines": pipeline.line_count,
                "numpy_stages": pipeline.np_stages,
                "closure": "warm" if observer.closure_hit else "compiled",
            },
            children=children,
        )


register_backend(DirectBackend())
register_backend(AlgebraBackend())
register_backend(CodegenBackend())
register_backend(AutomataBackend())
