"""EXPLAIN: annotated plan trees, per-node timings, and run execution.

This module owns the instrumented execution path shared by
:meth:`repro.core.query.Query.run` and :meth:`~repro.core.query.Query.
explain`:

* :func:`execute_plan` runs a :class:`~repro.engine.planner.Plan` through
  the chosen engine, consulting the automaton cache and recording engine
  counters in :data:`~repro.engine.metrics.METRICS`;
* :func:`explain_query` does the same with a trace observer attached and
  returns an :class:`Explain`: the plan, a tree annotated with per-node
  wall time / automaton state + transition counts / cache hits, the
  metrics delta of the run, and the cache statistics.

The tree format (documented in ``docs/explain_and_metrics.md``): for the
automata engine every node of the *term-flattened* formula gets a node
with the compiled automaton's size and whether it came from the cache;
for the direct engine the tree is the planner's static tree (domain-size
annotations) with the total wall time on the root — the direct engine
evaluates per candidate tuple, so per-node times are not meaningful.

Usage::

    from repro import Query, StringDatabase
    db = StringDatabase("01", {"R": {"0110", "001"}})
    e = Query("R(x) & last(x, '0')").explain(db)
    print(e.render())          # plan + annotated tree + counters
    e.to_dict()                # JSON-serializable
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.database.instance import Database
from repro.engine import metrics as metrics_mod
from repro.engine.cache import AutomatonCache, global_cache
from repro.engine.deadline import deadline_scope
from repro.engine.metrics import METRICS
from repro.engine.planner import Plan, Planner
from repro.eval.result import QueryResult
from repro.logic.formulas import Formula
from repro.structures.base import StringStructure


# ------------------------------------------------------------------ the tree


@dataclass
class ExplainNode:
    """One node of the annotated EXPLAIN tree."""

    label: str
    kind: str
    seconds: Optional[float] = None
    states: Optional[int] = None
    transitions: Optional[int] = None
    cache_hit: Optional[bool] = None
    annotations: dict[str, object] = field(default_factory=dict)
    children: list["ExplainNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict[str, object] = {"label": self.label, "kind": self.kind}
        if self.seconds is not None:
            out["seconds"] = round(self.seconds, 6)
        if self.states is not None:
            out["states"] = self.states
        if self.transitions is not None:
            out["transitions"] = self.transitions
        if self.cache_hit is not None:
            out["cache_hit"] = self.cache_hit
        if self.annotations:
            out["annotations"] = dict(self.annotations)
        out["children"] = [c.to_dict() for c in self.children]
        return out

    def render(self, indent: str = "") -> str:
        notes = []
        if self.seconds is not None:
            notes.append(f"{self.seconds * 1000:.2f}ms")
        if self.states is not None:
            notes.append(f"states={self.states}")
        if self.transitions is not None:
            notes.append(f"trans={self.transitions}")
        if self.cache_hit:
            notes.append("cached")
        notes.extend(f"{k}={v}" for k, v in self.annotations.items())
        line = f"{indent}{self.label}" + (f"  [{', '.join(notes)}]" if notes else "")
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)


def _dfa_transition_count(dfa) -> int:
    return sum(len(delta) for delta in dfa.transitions.values())


class TraceObserver:
    """Builds the EXPLAIN tree while the automata engine recurses.

    The engine calls :meth:`enter` before compiling a subformula and
    :meth:`exit` after, with the compiled relation and whether it was a
    cache hit; nesting gives the tree.
    """

    def __init__(self) -> None:
        self.root: Optional[ExplainNode] = None
        self._stack: list[ExplainNode] = []

    def enter(self, formula: Formula) -> None:
        node = ExplainNode(str(formula), type(formula).__name__)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.root = node
        self._stack.append(node)

    def exit(self, formula: Formula, relation, seconds: float, cached: bool) -> None:
        node = self._stack.pop()
        node.seconds = seconds
        node.cache_hit = cached
        node.states = relation.dfa.num_states
        node.transitions = _dfa_transition_count(relation.dfa)


class AlgebraTrace:
    """Captures the algebra executor's physical-operator stats tree.

    Filled by :func:`execute_plan` when the algebra engine actually runs
    (a whole-result cache hit leaves it empty and EXPLAIN falls back to
    the planner's static tree, marked cached).
    """

    def __init__(self) -> None:
        self.stats = None  # Optional[repro.algebra.exec.OpStats]
        self.cached = False
        # RANF-translated runs (repro.algebra.ranf): which branch fired,
        # the stats of the pair's "infinite" half (None when that half is
        # omitted or a cached/maintained result skipped the run), and
        # whether the runtime bound check tripped (automata took over).
        self.ranf_branch = None  # Optional[str]
        self.inf_stats = None  # Optional[repro.algebra.exec.OpStats]
        self.infinite = False


class CodegenTrace:
    """Captures what the codegen backend actually did for one query.

    Exactly one of three shapes is filled: a fused pipeline ran
    (``pipeline`` + per-stage ``stage_rows``, ``closure_hit`` telling a
    warm closure from a fresh compile), the shape was not fuseable and the
    interpreted algebra executor ran instead (``stats`` + the structured
    ``fallback`` reason), or the whole result came from cache/promotion
    (``cached``).
    """

    def __init__(self) -> None:
        self.pipeline = None  # Optional[repro.algebra.codegen.GeneratedPipeline]
        self.stage_rows = None  # Optional[list[int]]
        self.closure_hit = False
        self.stats = None  # Optional[repro.algebra.exec.OpStats] (fallback)
        self.fallback = None  # Optional[str]: why codegen fell back
        self.cached = False


def plan_tree_to_explain(node) -> ExplainNode:
    """Convert a static :class:`~repro.engine.planner.PlanNode` tree."""
    return ExplainNode(
        node.label,
        node.kind,
        annotations=dict(node.annotations),
        children=[plan_tree_to_explain(c) for c in node.children],
    )


def op_stats_to_explain(stats) -> ExplainNode:
    """Convert an :class:`repro.algebra.exec.OpStats` physical tree."""
    return ExplainNode(
        stats.label,
        stats.kind,
        seconds=stats.seconds,
        cache_hit=stats.memo_hit or None,
        annotations={"rows": stats.rows},
        children=[op_stats_to_explain(c) for c in stats.children],
    )


# ---------------------------------------------------------------- execution


def execute_plan(
    plan: Plan,
    database: Database,
    cache: Optional[AutomatonCache] = None,
    observer: object = None,
) -> QueryResult:
    """Run a plan's formula through its chosen engine, with caching.

    How to cache is the backend's business (the automata backend memoizes
    every subformula compilation in ``cache``; direct and algebra memoize
    their whole result relation — their intermediate states are not
    automata).  ``observer`` is whatever the backend's
    :meth:`~repro.engine.backend.EngineBackend.trace_observer` returned,
    or ``None`` outside EXPLAIN.
    """
    from repro.engine.backend import get_backend

    if cache is None:
        cache = global_cache()
    backend = get_backend(plan.engine)
    METRICS.inc(f"engine.{plan.engine}.runs")
    t0 = time.perf_counter()
    try:
        return backend.execute(plan, database, cache, observer)
    finally:
        METRICS.add_time(f"engine.{plan.engine}.seconds", time.perf_counter() - t0)


# ------------------------------------------------------------------- explain


@dataclass
class Explain:
    """Everything :meth:`Query.explain` reports for one run."""

    plan: Plan
    root: ExplainNode
    seconds: float
    counters: dict[str, float]
    cache_stats: dict[str, int]
    variables: tuple[str, ...]
    finite: bool
    tuple_count: Optional[int]

    @property
    def kernel_stats(self) -> dict[str, float]:
        """This run's dense-kernel counters, with the ``kernel.`` prefix
        stripped: interned symbols, dense automata/states built, lazy
        products, short-circuited decisions, minimizations, …"""
        prefix = "kernel."
        return {
            name[len(prefix):]: value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "tree": self.root.to_dict(),
            "seconds": round(self.seconds, 6),
            "counters": dict(self.counters),
            "kernel": self.kernel_stats,
            "cache": dict(self.cache_stats),
            "result": {
                "variables": list(self.variables),
                "finite": self.finite,
                "tuples": self.tuple_count,
            },
        }

    def render(self) -> str:
        cache = self.cache_stats
        shape = (
            f"{self.tuple_count} tuples" if self.finite else "infinite (regular)"
        )
        lines = [
            self.plan.render(),
            "",
            f"executed in {self.seconds * 1000:.2f}ms — "
            f"output({', '.join(self.variables) or 'boolean'}): {shape}",
            f"cache: hits={cache['hits']} misses={cache['misses']} "
            f"size={cache['size']}/{cache['maxsize']}",
        ]
        kernel = self.kernel_stats
        if kernel:
            shown = " ".join(f"{k}={v:g}" for k, v in sorted(kernel.items()))
            lines.append(f"kernel: {shown}")
        lines += [
            "",
            self.root.render(),
        ]
        if self.counters:
            lines.append("")
            lines.append("counters (this run):")
            for name in sorted(self.counters):
                value = self.counters[name]
                shown = f"{value:.6f}" if name.endswith(".seconds") else f"{value:g}"
                lines.append(f"  {name} = {shown}")
        return "\n".join(lines)


def explain_query(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    engine: Optional[str] = None,
    slack: Optional[int] = None,
    cache: Optional[AutomatonCache] = None,
    timeout: Optional[float] = None,
) -> Explain:
    """Plan, execute with tracing, and report (see module docstring).

    ``timeout`` bounds the traced run in wall-clock seconds via
    :mod:`repro.engine.deadline`, raising
    :class:`~repro.errors.EvaluationTimeout` once exceeded.
    """
    from repro.engine.backend import get_backend

    if cache is None:
        cache = global_cache()
    with deadline_scope(timeout):
        plan = Planner(structure, database).plan(formula, slack=slack, force=engine)
        backend = get_backend(plan.engine)
        observer = backend.trace_observer()
        before = METRICS.snapshot()
        t0 = time.perf_counter()
        result = execute_plan(plan, database, cache=cache, observer=observer)
        seconds = time.perf_counter() - t0
    counters = metrics_mod.delta(before, METRICS.snapshot())
    root = backend.trace_tree(plan, observer, seconds)
    if root is None:
        # Backends without per-node instrumentation (e.g. the direct
        # engine, which evaluates per candidate tuple): the planner's
        # static tree with the total wall time on the root.
        root = plan_tree_to_explain(plan.root)
        root.seconds = seconds
    finite = result.is_finite()
    return Explain(
        plan=plan,
        root=root,
        seconds=seconds,
        counters=counters,
        cache_stats=cache.stats(),
        variables=result.variables,
        finite=finite,
        tuple_count=result.count() if finite else None,
    )
