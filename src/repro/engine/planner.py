"""The cost-based query planner: choose an evaluation engine per query.

The library has three engines with one semantics (see
``docs/architecture.md``):

* the **automata engine** — exact on every query, natural quantifiers
  included, at a worst-case exponential automata cost (the paper's PH
  upper bound, Theorem 2);
* the **direct engine** — enumeration over the restricted quantifier
  domains, polynomial in the database for the PREFIX-collapsing calculi
  (Corollaries 2/7) but exponential for S_len's LENGTH domains;
* the **algebra engine** — compiles to RA(M) (Theorem 4/8), fuses
  ``Select(Product)`` into hash equi-joins and runs set-at-a-time
  (:mod:`repro.algebra.exec`); asymptotically the cheapest on
  join-shaped ADOM queries, but it pays a fixed compile+rewrite setup.

Historically callers picked an engine by hand (``Query.run(db,
engine="direct")``).  The planner replaces that choice: it inspects the
formula (quantifier kinds, negation depth, structure) and the database
(active-domain size, prefix-closure size, maximum string length) and
selects the engine expected to be cheaper — *without ever changing the
answer*.  The engines themselves live behind the
:mod:`repro.engine.backend` registry; the planner knows no engine by
name.  It canonicalizes the formula (:mod:`repro.logic.canonical` —
alpha-renaming plus sorted commutative connectives, so equivalent
spellings share one plan and one set of cache entries), then iterates
the registered backends: an **eligibility gate** first, then a **cost
argmin** over the survivors.  The gates are deliberately conservative:

1. a formula with NATURAL quantifiers always goes to the automata engine
   (the reference natural semantics; the direct engine cannot run it);
2. a formula whose free variables are not all *anchored* in a positive
   database atom goes to the automata engine (its output may leave the
   active domain — even be infinite — and direct enumeration would
   silently truncate it);
3. otherwise the engines agree exactly (they share the restricted-domain
   definitions and the slack), and the planner compares cost estimates:
   the product of restricted-domain sizes for the direct engine, a
   state-count heuristic for the automata engine, and cardinality-based
   join costs for the algebra engine.  The algebra engine is only
   *eligible* in rule 3 when every quantifier is ADOM and the flattened
   query is in collapsed form — exactly the regime where Theorem 4's
   equivalence makes its answer slack-independent and equal to the other
   engines'.

Rule 3 is where the paper's complexity landscape becomes operational: a
collapsed RC(S) query sees a polynomial PREFIX domain and goes direct,
an RC(S_len) query over a long string sees the ``|Sigma|^maxlen`` LENGTH
domain blow past :data:`DIRECT_COST_CEILING` and goes to automata, and a
join of two large relations blows past the ceiling *but* fuses into a
linear-time hash join, so it goes to algebra.

Tuning knobs (module constants, also per-:class:`Planner` arguments):
``DIRECT_COST_CEILING`` — hard cap on estimated direct enumeration work;
``DIRECT_BIAS`` — how many direct candidate-checks are assumed to cost as
much as one automata state expansion; ``ALGEBRA_SETUP_COST`` — fixed
compile/rewrite overhead charged to the algebra engine so tiny queries
keep going direct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.database.instance import Database
from repro.engine.backend import (
    EngineBackend,
    all_backends,
    get_backend,
    resolve_engine,
)
from repro.engine.metrics import METRICS
from repro.errors import EvaluationError
from repro.logic.canonical import canonical_fingerprint, canonicalize
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import Var
from repro.logic.transform import to_nnf
from repro.structures.base import StringStructure

#: Estimated direct-engine candidate checks above which the planner always
#: prefers the automata engine (protects against LENGTH-domain blowups).
DIRECT_COST_CEILING = 2_000_000.0

#: One automata state expansion is assumed to cost as much as this many
#: direct candidate checks.  Retuned for the dense integer-coded kernel
#: (:mod:`repro.automata.kernel`): with flat-array products, vectorized
#: Hopcroft and lazy pipelines, a state expansion is ~5× cheaper than the
#: old dict-of-dicts machinery the previous value (64) was measured
#: against, so the automata engine wins ties it used to lose.
DIRECT_BIAS = 24.0

#: Fixed cost (in direct-check units) charged to the algebra engine for
#: compiling the query to RA(M) and running the rewrite fixpoint.  Keeps
#: tiny anchored queries on the direct engine, where enumeration finishes
#: before the algebra compiler would.
ALGEBRA_SETUP_COST = 2_000.0

#: Fixed cost (in direct-check units) charged to the codegen engine when no
#: compiled closure is cached for the query yet: algebra compilation *plus*
#: source emission, ``compile()``, and ``exec``.  Deliberately higher than
#: :data:`ALGEBRA_SETUP_COST` so one-shot queries stay interpreted; the
#: closure cache amortizes it away, so repeated and prepared queries see
#: only the per-row cost and the argmin flips to codegen.
CODEGEN_SETUP_COST = 6_000.0

#: Per-row cost of a fused compiled pipeline relative to the interpreted
#: algebra executor: operator fusion removes the per-tuple dispatch,
#: checker re-entry and intermediate materialization that the interpreter
#: pays at every operator boundary (measured >=2x in bench_codegen.py).
CODEGEN_ROW_FACTOR = 0.5

#: Fixed cost (in direct-check units) charged to the algebra/codegen
#: engines when the query needs the RANF translation
#: (:mod:`repro.algebra.ranf`) and no translated pair is cached yet:
#: the widened compiler does strictly more work than the collapsed-form
#: fast path (verdict analysis, per-quantifier domain constructions, the
#: ``fin``/``inf`` split).  The translation cache amortizes it away, so
#: repeated queries see only the per-row cost.
RANF_SETUP_COST = 1_500.0

_INF = float("inf")


# ------------------------------------------------------------------ plan tree


@dataclass
class PlanNode:
    """One node of the (static) plan tree — mirrors the formula shape."""

    label: str
    kind: str
    annotations: dict[str, object] = field(default_factory=dict)
    children: tuple["PlanNode", ...] = ()

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "annotations": dict(self.annotations),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: str = "") -> str:
        notes = ", ".join(f"{k}={v}" for k, v in self.annotations.items())
        line = f"{indent}{self.label}" + (f"  [{notes}]" if notes else "")
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)


@dataclass
class Plan:
    """The planner's decision for one query on one database.

    ``formula`` is the *canonicalized* formula the chosen engine will
    actually run (for a forced direct/algebra engine additionally
    collapsed); ``slack`` is the restricted-domain headroom the engines
    use.  ``engine`` names a backend registered in
    :mod:`repro.engine.backend` — resolve it with
    :func:`~repro.engine.backend.get_backend`, never by comparing the
    string.  ``costs`` holds one display-unit estimate per registered
    backend (``inf`` where the backend's regime does not apply);
    ``fingerprint`` is the canonical structural fingerprint that keys
    every cache entry this plan will touch.
    """

    engine: str
    reason: str
    forced: bool
    slack: int
    formula: Formula
    structure: StringStructure
    costs: dict[str, float]
    root: PlanNode
    quantifier_kinds: tuple[str, ...]
    negation_depth: int
    anchored_free: bool
    fingerprint: str = ""
    db_stats: dict[str, object] = field(default_factory=dict)
    #: Per-backend ineligibility reasons from the auto gate (empty for
    #: forced plans): why each blocked backend dropped out — the regime
    #: observability the RANF work needs (`algebra: ... RANF translation
    #: bailed: <node>`).
    ineligible: dict[str, str] = field(default_factory=dict)

    # Legacy accessors (pre-registry plans stored one field per engine).
    @property
    def direct_cost(self) -> float:
        return self.costs.get("direct", _INF)

    @property
    def automata_cost(self) -> float:
        return self.costs.get("automata", _INF)

    @property
    def algebra_cost(self) -> float:
        return self.costs.get("algebra", _INF)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "reason": self.reason,
            "forced": self.forced,
            "slack": self.slack,
            "structure": self.structure.name,
            "costs": dict(self.costs),
            "direct_cost": self.direct_cost,
            "automata_cost": self.automata_cost,
            "algebra_cost": self.algebra_cost,
            "fingerprint": self.fingerprint,
            "quantifier_kinds": list(self.quantifier_kinds),
            "negation_depth": self.negation_depth,
            "anchored_free": self.anchored_free,
            "db_stats": dict(self.db_stats),
            "ineligible": dict(self.ineligible),
            "tree": self.root.to_dict(),
        }

    def render(self) -> str:
        mode = "forced" if self.forced else "auto"
        shown = "  ".join(
            f"{name}≈{_fmt_cost(self.costs[name])}" for name in sorted(self.costs)
        )
        lines = [
            f"engine: {self.engine} ({mode}) — {self.reason}",
            f"estimated cost: {shown}  (slack={self.slack})",
        ]
        for name in sorted(self.ineligible):
            lines.append(f"ineligible: {name}: {self.ineligible[name]}")
        lines.append(self.root.render())
        return "\n".join(lines)


def _fmt_cost(cost: float) -> str:
    if cost == _INF:
        return "inf"
    if cost >= 1e5:
        return f"{cost:.2e}"
    return f"{cost:g}"


# ----------------------------------------------------------- anchored analysis


def anchored_free_variables(formula: Formula) -> frozenset[str]:
    """Free variables guaranteed to take *active-domain* values.

    A stricter, value-preserving variant of the classic range-restriction
    analysis: a variable is anchored only when it occurs as a **bare
    variable argument** of a positive database atom (a variable buried in
    a term like ``R(add_last(x, '0'))`` is constrained, but its own value
    need not be in ``adom``).  Conjunction anchors the union, disjunction
    the intersection, negation nothing.
    """
    return _anchored(to_nnf(formula))


def _anchored(nnf: Formula) -> frozenset[str]:
    if isinstance(nnf, RelAtom):
        return frozenset(t.name for t in nnf.args if isinstance(t, Var))
    if isinstance(nnf, And):
        out: frozenset[str] = frozenset()
        for p in nnf.parts:
            out |= _anchored(p)
        return out
    if isinstance(nnf, Or):
        parts = [_anchored(p) for p in nnf.parts]
        out = parts[0]
        for p in parts[1:]:
            out &= p
        return out
    if isinstance(nnf, (Exists, Forall)):
        return _anchored(nnf.body) - {nnf.var}
    return frozenset()


def negation_depth(formula: Formula) -> int:
    """Maximum number of nested negations (after NNF the interesting part
    is negation over quantifiers, which drives automata complement cost)."""
    if isinstance(formula, Not):
        return 1 + negation_depth(formula.inner)
    return max((negation_depth(c) for c in formula.children()), default=0)


# ------------------------------------------------------------- cost estimates


def _geometric(base: int, exponent: int) -> float:
    """``1 + base + ... + base^exponent`` with overflow-safe floats."""
    if exponent < 0:
        return 1.0
    if base <= 1:
        return float(exponent + 1)
    try:
        return float((base ** (exponent + 1) - 1) / (base - 1))
    except OverflowError:
        return _INF


def domain_size_estimate(
    kind: QuantKind, structure: StringStructure, database: Database, slack: int
) -> float:
    """Estimated number of candidate strings one quantifier enumerates."""
    sigma = len(structure.alphabet)
    if kind is QuantKind.ADOM:
        return float(max(len(database.adom), 1))
    if kind is QuantKind.PREFIX:
        closure = database.adom_prefix_closure_size() or 1
        return closure * _geometric(sigma, slack)
    if kind is QuantKind.LENGTH:
        max_len = max(database.max_string_length, 0)
        return _geometric(sigma, max_len + slack)
    # NATURAL: the direct engine cannot enumerate Sigma*.
    return _INF


def estimate_direct_cost(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: int,
) -> float:
    """Estimated candidate checks of the direct engine: the product of the
    output-column domains times the per-tuple evaluation cost (which itself
    multiplies through nested quantifier domains)."""

    def per_tuple(f: Formula) -> float:
        if isinstance(f, (TrueF, FalseF, Atom, RelAtom)):
            return 1.0
        if isinstance(f, Not):
            return per_tuple(f.inner)
        if isinstance(f, (And, Or)):
            return sum(per_tuple(p) for p in f.parts)
        if isinstance(f, (Exists, Forall)):
            dom = domain_size_estimate(f.kind, structure, database, slack)
            inner = per_tuple(f.body)
            if dom == _INF or inner == _INF:
                return _INF
            return dom * inner
        raise EvaluationError(f"cannot cost formula node {f!r}")

    anchored = anchored_free_variables(formula)
    output = 1.0
    for var in sorted(formula.free_variables()):
        kind = (
            QuantKind.ADOM if var in anchored else structure.restricted_kind
        )
        size = domain_size_estimate(kind, structure, database, slack)
        if size == _INF:
            return _INF
        output *= size
    inner = per_tuple(formula)
    return _INF if inner == _INF else output * inner


def estimate_automata_cost(
    formula: Formula, structure: StringStructure, database: Database
) -> float:
    """A state-count heuristic for the automata engine.

    Atoms contribute their presentation size (a small constant) or the
    database trie size; products multiply (capped), projection after which
    a complement occurs models the determinization blowup.  The absolute
    value is meaningless — only the comparison against the (similarly
    heuristic) direct estimate matters.
    """
    sigma = len(structure.alphabet)
    column_factor = float(sigma + 1)
    db_trie = 2.0 + sum(
        len(s) for tup in (
            database.relation(n) for n in database.relation_names
        ) for row in tup for s in row
    )

    def states(f: Formula) -> float:
        if isinstance(f, (TrueF, FalseF)):
            return 1.0
        if isinstance(f, Atom):
            return 4.0
        if isinstance(f, RelAtom):
            return db_trie
        if isinstance(f, Not):
            # Complement is cheap on a DFA, but it forces the downstream
            # product to explore the completed automaton.
            return states(f.inner) + 1.0
        if isinstance(f, (And, Or)):
            acc = 1.0
            for p in f.parts:
                acc = min(acc * states(p), 1e12)
            return acc
        if isinstance(f, (Exists, Forall)):
            inner = states(f.body)
            if f.kind is not QuantKind.NATURAL:
                inner = min(inner * db_trie, 1e12)  # domain-guard product
            # Projection introduces nondeterminism; determinization can
            # square the state count in the worst case — model it gently.
            return min(inner ** 1.2 + 2.0, 1e12)
        raise EvaluationError(f"cannot cost formula node {f!r}")

    return min(states(formula) * column_factor, 1e15)


def algebra_eligible(
    formula: Formula, structure: Optional[StringStructure] = None
) -> bool:
    """True when the set-at-a-time algebra engine provably agrees with the
    other engines on ``formula``.

    With a ``structure``, the regime is everything the RANF translation
    (:mod:`repro.algebra.ranf`) handles: the legacy ADOM-only collapsed
    fragment, anchored queries with restricted PREFIX/LENGTH quantifiers
    compiled directly to algebra, and ``gamma``-bounded queries whose
    unanchored free variables carry a domain-independence certificate
    (:func:`repro.safety.bounded.range_bounded_variables`).  The verdict
    is memoized per canonical fingerprint — negative ones included
    (``planner.eligibility_memo_hits``).

    Without a ``structure`` this is the historical syntactic gate: after
    term flattening the query still only has ADOM quantifiers
    (flattening introduces NATURAL quantifiers for function terms under
    database atoms, which would break this) and is in collapsed form, so
    Theorem 4's calculus↔algebra equivalence applies with every
    quantifier ranging over the *exact* active domain.
    """
    if structure is not None:
        from repro.algebra.ranf import translation_verdict

        return translation_verdict(formula, structure).ok
    from repro.algebra.compile import is_collapsed_form
    from repro.logic.transform import flatten_terms

    flat = flatten_terms(formula)
    if not flat.quantifier_kinds() <= {QuantKind.ADOM}:
        return False
    return is_collapsed_form(flat)


def estimate_algebra_cost(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: int,
) -> float:
    """Estimated row operations of the set-at-a-time algebra executor.

    A textbook cardinality model over the *formula* (cheaper than
    compiling just to cost): relation atoms yield their cardinality,
    conjunction is a hash-join chain (cost = inputs + output rows, output
    estimated with an ``1/adom`` selectivity per shared variable),
    negation adds a difference against an active-domain bound, ADOM
    quantifiers project.  PREFIX/LENGTH quantifiers (the RANF-widened
    regime) charge the per-row candidate construction — body cardinality
    times string length per context column — plus the context-free
    domain part; database-free NATURAL quantifiers fold into selection
    conditions.  Returns ``inf`` when :func:`algebra_eligible` is false.
    Like the direct estimate, the absolute value only matters relative
    to the other engines' estimates.
    """
    if not algebra_eligible(formula, structure):
        return _INF
    adom = float(max(len(database.adom), 1))
    length = float(max(database.max_string_length, 1))
    # Size of the ambient gamma bound: what one column of a database-free
    # condition's candidate relation costs (prefix closure on S/S_left,
    # the exponential length ball on S_len).
    bound_size = domain_size_estimate(
        structure.restricted_kind, structure, database, slack
    )

    def go(f: Formula) -> tuple[float, float]:
        """Returns ``(cost, card)`` — work done and output-row estimate."""
        if isinstance(f, RelAtom):
            n = (
                float(len(database.relation(f.name)))
                if f.name in database.relation_names
                else 0.0
            )
            return (max(n, 1.0), max(n, 1.0))
        if isinstance(f, (Atom, TrueF, FalseF)):
            k = len(f.free_variables())
            if k == 0:
                return (1.0, 1.0)
            # A database-free condition compiles to a selection over the
            # gamma bound's k-th power (the compiler's _condition_plan)
            # and only then joins its anchoring relations — that power is
            # materialized, so it is the honest price.
            size = min(bound_size**k, _INF)
            return (size, max(size / adom, 1.0))
        if isinstance(f, Not):
            cost, card = go(f.inner)
            # Anti-join against the ADOM bound of the negated columns.
            bound = adom ** max(len(f.free_variables()), 1)
            return (cost + card + bound, bound)
        if isinstance(f, And):
            costs_cards = [go(p) for p in f.parts]
            cost = sum(c for c, _ in costs_cards)
            seen: set[str] = set()
            card = 1.0
            for part, (_, k) in zip(f.parts, costs_cards):
                card *= k
                shared = part.free_variables() & seen
                card /= adom ** len(shared)  # equi-join selectivity guess
                seen |= part.free_variables()
                card = max(card, 1.0)
            return (cost + card, card)
        if isinstance(f, Or):
            costs_cards = [go(p) for p in f.parts]
            return (
                sum(c for c, _ in costs_cards),
                sum(k for _, k in costs_cards),
            )
        if isinstance(f, (Exists, Forall)):
            cost, card = go(f.body)
            if f.kind is QuantKind.NATURAL:
                # Database-free scope: compiled into a selection condition.
                return (cost + card, card)
            if f.kind in (QuantKind.PREFIX, QuantKind.LENGTH):
                ctx = max(len(f.free_variables()), 1)
                if f.kind is QuantKind.PREFIX:
                    # Context-free part: a semi-join against the closure.
                    part_a = domain_size_estimate(
                        f.kind, structure, database, slack
                    ) + card
                else:
                    # LENGTH compiles to len_le probes, not down_i — the
                    # exponential domain is never materialized.
                    part_a = card * adom
                expand = card * length * ctx + part_a
                if isinstance(f, Forall):
                    bound = adom ** ctx
                    return (cost + expand + 2 * bound, bound)
                return (cost + expand, max(card, 1.0))
            if isinstance(f, Forall):
                # forall adom x: phi == not exists adom x: not phi — two
                # differences against the bound on top of the body.
                bound = adom ** max(len(f.free_variables()), 1)
                return (cost + card + 2 * bound, bound)
            return (cost + card, max(card / adom, 1.0))
        raise EvaluationError(f"cannot cost formula node {f!r}")

    cost, card = go(formula)
    free = formula.free_variables()
    if free and not free <= anchored_free_variables(formula):
        # gamma-bounded branch: the fin half semi-joins every unanchored
        # output column against the slack-0 gamma bound.
        gamma = float(max(database.adom_prefix_closure_size(), 1))
        cost += card + gamma
    return cost


# ------------------------------------------------------------------- planner


class Planner:
    """Plan queries for one structure + database pair.

    Parameters
    ----------
    structure, database:
        The evaluation context (alphabets must match).
    ceiling, bias, algebra_setup, codegen_setup, ranf_setup:
        Overrides for :data:`DIRECT_COST_CEILING` / :data:`DIRECT_BIAS` /
        :data:`ALGEBRA_SETUP_COST` / :data:`CODEGEN_SETUP_COST` /
        :data:`RANF_SETUP_COST`.
    """

    def __init__(
        self,
        structure: StringStructure,
        database: Database,
        ceiling: float = DIRECT_COST_CEILING,
        bias: float = DIRECT_BIAS,
        algebra_setup: float = ALGEBRA_SETUP_COST,
        codegen_setup: float = CODEGEN_SETUP_COST,
        ranf_setup: float = RANF_SETUP_COST,
    ):
        if structure.alphabet != database.alphabet:
            raise EvaluationError("structure and database alphabets differ")
        self.structure = structure
        self.database = database
        self.ceiling = ceiling
        self.bias = bias
        self.algebra_setup = algebra_setup
        self.codegen_setup = codegen_setup
        self.ranf_setup = ranf_setup

    # ------------------------------------------------------------- planning

    def plan(
        self,
        formula: Formula,
        slack: Optional[int] = None,
        force: Optional[str] = None,
    ) -> Plan:
        """Choose a backend (or honor ``force``) and build the plan tree.

        ``force`` is resolved through the backend registry — an unknown
        name raises :class:`~repro.errors.EvaluationError` listing the
        registered backends.  The formula is canonicalized first, so
        alpha-equivalent and conjunct-reordered spellings produce the
        same plan and share every downstream cache entry.
        """
        METRICS.inc("planner.plans")
        formula = canonicalize(formula)
        force = resolve_engine(force)
        if force is not None:
            backend = get_backend(force)
            prepared, effective, reason = backend.prepare_forced(
                formula, self.structure, slack
            )
            METRICS.inc(f"planner.backend.{backend.name}.forced")
            return self._make_plan(
                prepared,
                engine=backend.name,
                reason=reason,
                forced=True,
                slack=effective,
            )
        plan = self._auto(formula, slack)
        METRICS.inc(f"planner.backend.{plan.engine}.chosen")
        return plan

    def _auto(self, formula: Formula, slack: Optional[int]) -> Plan:
        """Registry iteration: eligibility gate, then cost argmin."""
        effective = slack if slack is not None else 0
        eligible: list[EngineBackend] = []
        blocked: list[tuple[EngineBackend, str]] = []
        for backend in all_backends():
            ok, why = backend.eligible(formula, self.structure, self.database)
            if ok:
                eligible.append(backend)
            else:
                blocked.append((backend, why))
                METRICS.inc(f"planner.backend.{backend.name}.ineligible")
        if not eligible:
            raise EvaluationError(
                "no registered backend is eligible for this query "
                f"({'; '.join(why for _, why in blocked) or 'empty registry'})"
            )
        ineligible = {backend.name: why for backend, why in blocked}
        if len(eligible) == 1:
            # No comparison to make; surface why the alternatives dropped
            # out (the highest-priority blocked backend's reason — for the
            # built-ins, the direct engine's conservatism rules).
            chosen = eligible[0]
            reason = blocked[0][1] if blocked else "only registered backend"
            return self._make_plan(
                formula, engine=chosen.name, reason=reason,
                forced=False, slack=effective, ineligible=ineligible,
            )
        costs = self._costs(formula, effective)
        scaled = {b.name: b.decision_cost(costs[b.name], self) for b in eligible}
        chosen = min(eligible, key=lambda b: (scaled[b.name], b.priority, b.name))
        return self._make_plan(
            formula,
            engine=chosen.name,
            reason=chosen.chosen_reason(costs, self),
            forced=False,
            slack=effective,
            costs=costs,
            ineligible=ineligible,
        )

    # ------------------------------------------------------------ plan build

    def _costs(self, formula: Formula, slack: int) -> dict[str, float]:
        """One display-unit estimate per registered backend (inf allowed)."""
        return {
            backend.name: backend.estimate_cost(
                formula, self.structure, self.database, slack, self
            )
            for backend in all_backends()
        }

    def _make_plan(
        self,
        formula: Formula,
        engine: str,
        reason: str,
        forced: bool,
        slack: int,
        costs: Optional[dict[str, float]] = None,
        ineligible: Optional[dict[str, str]] = None,
    ) -> Plan:
        anchored = anchored_free_variables(formula)
        free = formula.free_variables()
        if costs is None:
            costs = self._costs(formula, slack)
        db = self.database
        return Plan(
            engine=engine,
            reason=reason,
            forced=forced,
            slack=slack,
            formula=formula,
            structure=self.structure,
            costs=costs,
            fingerprint=canonical_fingerprint(formula),
            root=self._node(formula, slack),
            quantifier_kinds=tuple(
                sorted(k.value for k in formula.quantifier_kinds())
            ),
            negation_depth=negation_depth(formula),
            anchored_free=bool(free <= anchored),
            db_stats={
                "adom_size": len(db.adom),
                "prefix_closure_size": db.adom_prefix_closure_size(),
                "max_string_length": db.max_string_length,
                "tuples": db.size,
                "alphabet_size": len(db.alphabet),
            },
            ineligible=dict(ineligible or {}),
        )

    def _node(self, f: Formula, slack: int) -> PlanNode:
        if isinstance(f, (Atom, RelAtom, TrueF, FalseF)):
            kind = "rel-atom" if isinstance(f, RelAtom) else "atom"
            notes: dict[str, object] = {}
            if isinstance(f, RelAtom):
                notes["tuples"] = len(self.database.relation(f.name)) if (
                    f.name in self.database.relation_names
                ) else "?"
            return PlanNode(str(f), kind, notes)
        if isinstance(f, Not):
            return PlanNode("not", "not", {}, (self._node(f.inner, slack),))
        if isinstance(f, (And, Or)):
            label = "and" if isinstance(f, And) else "or"
            return PlanNode(
                label,
                label,
                {"free": ",".join(sorted(f.free_variables())) or "-"},
                tuple(self._node(p, slack) for p in f.parts),
            )
        if isinstance(f, (Exists, Forall)):
            q = "exists" if isinstance(f, Exists) else "forall"
            size = domain_size_estimate(f.kind, self.structure, self.database, slack)
            return PlanNode(
                f"{q} {f.kind.value} {f.var}",
                q,
                {"domain": f"≈{_fmt_cost(size)}"},
                (self._node(f.body, slack),),
            )
        raise EvaluationError(f"cannot plan formula node {f!r}")


def plan_query(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: Optional[int] = None,
    force: Optional[str] = None,
) -> Plan:
    """One-shot convenience wrapper around :class:`Planner`."""
    return Planner(structure, database).plan(formula, slack=slack, force=force)
