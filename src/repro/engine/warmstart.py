"""Warm-start persistence: spill compiled automata to disk, reload lazily.

Every restart of the query service used to cold-start the session-wide
:class:`~repro.engine.cache.AutomatonCache`: the first request for each
query re-ran the products/determinizations/minimizations the previous
process had already paid for, and a fleet restart turned into a
recompilation stampede.  This module closes that gap:

* :meth:`WarmStartStore.spill` writes each cache entry to its own file
  under a warm directory, **keyed by the entry's structural cache key**
  (which already embeds the canonical formula fingerprint, structure,
  alphabet, slack, and — for database-dependent subformulas — the
  content-addressed database fingerprint, see
  :func:`repro.engine.cache.formula_key`).  Re-registering extensionally
  equal data after a restart therefore reproduces the same keys and the
  spill is directly reusable;
* each file is **versioned and checksummed**: a JSON header records the
  format version and the SHA-256 of the pickled payload, and a reader
  that finds a version it does not speak, a checksum mismatch, or a
  truncated file silently treats it as a miss (counted, never fatal) —
  a corrupt spill can cost a recompile, not an outage;
* loading is **lazy**: :meth:`WarmStartStore.attach` installs
  :meth:`WarmStartStore.load` as the cache's miss loader
  (:meth:`~repro.engine.cache.AutomatonCache.attach_loader`), so a
  rebooted server reads exactly the entries its traffic asks for, one
  file per miss, instead of deserializing the whole directory at boot;
* values ride as pickles of the cache's own immutable entries — for the
  automata stage that is ``(RelationAutomaton, variables)`` including
  any memoized dense form, so the flat ``array('i')`` transition tables
  of compiled dense DFAs persist alongside the dict automata.  Values
  that do not pickle (e.g. anything holding a live closure) are simply
  skipped at spill time.

Writes are atomic (temp file + ``os.replace``) so concurrent services
sharing a warm directory can only ever observe whole files.  The store
is deliberately *not* a cache coherence protocol: files are only added
or wholly replaced, and a stale entry is impossible by construction —
keys are content-addressed on both the query and the data.

Usage (the service wires this up from ``ServiceConfig(warm_dir=...)``)::

    from repro.engine.cache import AutomatonCache
    from repro.engine.warmstart import WarmStartStore

    store = WarmStartStore("/var/tmp/repro-warm")
    cache = AutomatonCache()
    store.attach(cache)      # lazy reload on every miss from now on
    ...                      # serve traffic
    store.spill(cache)       # persist what this process compiled
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
import threading
from typing import Any, Hashable, Optional

from repro.engine.cache import AutomatonCache
from repro.engine.metrics import METRICS

__all__ = ["WARM_FORMAT_VERSION", "WarmStartStore", "key_digest"]

#: Bump on any incompatible change to the file layout *or* to the pickled
#: value classes; readers skip files from other versions.
WARM_FORMAT_VERSION = 1

#: First bytes of every warm file, before the JSON header line.
_MAGIC = b"repro-warm\n"


def key_digest(key: Hashable) -> str:
    """Stable filename digest of a structural cache key.

    Cache keys are tuples of strings, symbol tuples, ints, and ``None``
    (see :func:`repro.engine.cache.formula_key`), whose ``repr`` is
    deterministic across processes — unlike ``hash()``, which is
    randomized per interpreter for strings.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class WarmStartStore:
    """A directory of spilled cache entries, one checksummed file each."""

    def __init__(self, directory: str):
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        # Local counters (METRICS carries the session-wide view).
        self.loads = 0
        self.load_misses = 0
        self.load_rejected = 0
        self.spilled = 0
        self.spill_skipped = 0

    # -------------------------------------------------------------- layout

    def path_for(self, key: Hashable) -> str:
        return os.path.join(self.directory, key_digest(key) + ".warm")

    def entry_count(self) -> int:
        """Number of warm files currently on disk."""
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".warm")
            )
        except OSError:
            return 0

    # ---------------------------------------------------------------- load

    def load(self, key: Hashable) -> Optional[Any]:
        """The spilled value for ``key``, or ``None``.

        This is the miss-loader installed by :meth:`attach`.  Every
        failure mode — missing file, foreign format version, checksum
        mismatch, truncated payload, unpicklable content — degrades to a
        plain miss; warm files are an optimization, never a correctness
        dependency.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except OSError:
            with self._lock:
                self.load_misses += 1
            return None
        value = self._decode(raw, key)
        if value is None:
            with self._lock:
                self.load_rejected += 1
            METRICS.inc("warmstart.load_rejected")
            return None
        with self._lock:
            self.loads += 1
        METRICS.inc("warmstart.loads")
        return value

    def _decode(self, raw: bytes, key: Hashable) -> Optional[Any]:
        if not raw.startswith(_MAGIC):
            return None
        body = raw[len(_MAGIC):]
        newline = body.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(body[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        payload = body[newline + 1:]
        if (
            not isinstance(header, dict)
            or header.get("format") != WARM_FORMAT_VERSION
            or header.get("key") != key_digest(key)
            or header.get("len") != len(payload)
            or header.get("sha256") != hashlib.sha256(payload).hexdigest()
        ):
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            # A payload that checksums but does not unpickle means the
            # value classes moved without a format bump; still a miss.
            return None

    def attach(self, cache: AutomatonCache) -> None:
        """Install :meth:`load` as ``cache``'s lazy miss loader."""
        cache.attach_loader(self.load)

    # --------------------------------------------------------------- spill

    def spill_entry(self, key: Hashable, value: Any) -> bool:
        """Persist one entry; returns ``False`` when the value won't pickle
        (skipped, e.g. codegen closures) — an existing file is reused
        as-is (keys are content-addressed, rewrites are redundant)."""
        path = self.path_for(key)
        if os.path.exists(path):
            return True
        try:
            buf = io.BytesIO()
            pickle.dump(value, buf, protocol=pickle.HIGHEST_PROTOCOL)
            payload = buf.getvalue()
        except Exception:
            with self._lock:
                self.spill_skipped += 1
            METRICS.inc("warmstart.spill_skipped")
            return False
        header = json.dumps({
            "format": WARM_FORMAT_VERSION,
            "key": key_digest(key),
            "len": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }, sort_keys=True).encode("utf-8")
        # Atomic publish: a reader either sees the whole file or no file.
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(_MAGIC)
                f.write(header)
                f.write(b"\n")
                f.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        with self._lock:
            self.spilled += 1
        METRICS.inc("warmstart.spilled")
        return True

    def spill(self, cache: AutomatonCache) -> dict:
        """Persist every picklable entry of ``cache``; returns counters."""
        written = skipped = 0
        for key, value in cache.entries():
            if self.spill_entry(key, value):
                written += 1
            else:
                skipped += 1
        return {"written": written, "skipped": skipped}

    # ---------------------------------------------------------------- misc

    def stats(self) -> dict:
        with self._lock:
            return {
                "directory": self.directory,
                "entries": self.entry_count(),
                "loads": self.loads,
                "load_misses": self.load_misses,
                "load_rejected": self.load_rejected,
                "spilled": self.spilled,
                "spill_skipped": self.spill_skipped,
            }

    def __repr__(self) -> str:
        return f"WarmStartStore({self.directory!r})"
