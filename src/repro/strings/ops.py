"""The paper's Section 2 string operations, as plain functions.

Every operation here is total on ``Sigma*`` exactly as the paper defines it;
in particular ``subtract`` (the paper's ``x - y``) and ``trim_first`` (the
paper's ``TRIM_a``) return the empty string rather than failing when their
side condition does not hold.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.strings.alphabet import Alphabet


def is_prefix(x: str, y: str) -> bool:
    """The paper's ``x <<= y``: ``x`` is a (not necessarily strict) prefix of ``y``."""
    return y.startswith(x)


def is_strict_prefix(x: str, y: str) -> bool:
    """The paper's ``x << y``: ``x`` is a strict prefix of ``y``."""
    return len(x) < len(y) and y.startswith(x)


def extends_by_one(x: str, y: str) -> bool:
    """The paper's ``x < y``: ``y`` extends ``x`` by exactly one symbol."""
    return len(y) == len(x) + 1 and y.startswith(x)


def add_last(x: str, a: str) -> str:
    """``l_a(x) = x . a``: append ``a`` as the last symbol."""
    return x + a


def add_first(x: str, a: str) -> str:
    """``f_a(x) = a . x``: prepend ``a`` as the first symbol."""
    return a + x


def last_symbol_is(x: str, a: str) -> bool:
    """The unary predicate ``L_a``: the last symbol of ``x`` is ``a``.

    False on the empty string (which has no last symbol).
    """
    return x.endswith(a) and len(x) > 0


def subtract(x: str, y: str) -> str:
    """The paper's ``x - y``: the relative suffix of ``y`` in ``x``.

    If ``x = y . z`` then ``x - y = z``; otherwise ``x - y`` is the empty
    string.
    """
    if x.startswith(y):
        return x[len(y):]
    return ""


def trim_first(s: str, a: str) -> str:
    """The paper's ``TRIM_a(s)`` (Section 7): remove a single leading ``a``.

    Produces ``s'`` if ``s = a . s'`` and the empty string if the first
    symbol of ``s`` is not ``a`` (in particular on the empty string).
    """
    if s.startswith(a) and len(s) > 0:
        return s[1:]
    return ""


def trim_trailing(s: str, a: str) -> str:
    """SQL's ``TRIM TRAILING a FROM s``: drop all trailing occurrences of ``a``.

    The paper notes (Section 4) that this operation is covered by the
    structure S.
    """
    return s.rstrip(a)


def lcp(x: str, y: str) -> str:
    """``x ^ y``: the longest common prefix of ``x`` and ``y``."""
    n = min(len(x), len(y))
    i = 0
    while i < n and x[i] == y[i]:
        i += 1
    return x[:i]


def lcp_with_set(x: str, strings: Iterable[str]) -> str:
    """``x ^ C``: the longest string among ``x ^ c`` for ``c`` in ``C``.

    Well defined because every ``x ^ c`` is a prefix of ``x`` (Section 2);
    returns the empty string when ``C`` is empty.
    """
    best = ""
    for c in strings:
        common = lcp(x, c)
        if len(common) > len(best):
            best = common
    return best


def equal_length(x: str, y: str) -> bool:
    """The predicate ``el(x, y)``: ``|x| = |y|``."""
    return len(x) == len(y)


def lex_key(x: str, alphabet: Alphabet) -> tuple[int, ...]:
    """Sort key realizing the lexicographic order ``<=_lex`` of Section 4.

    The order is the standard "dictionary" order induced by the alphabet's
    symbol order, with a prefix preceding its extensions (this is exactly the
    first-order definition the paper gives over ``<<=`` and ``l_a``).
    """
    return tuple(alphabet.index(c) for c in x)


def lex_le(x: str, y: str, alphabet: Alphabet) -> bool:
    """``x <=_lex y`` relative to ``alphabet``'s symbol order."""
    return lex_key(x, alphabet) <= lex_key(y, alphabet)


def lex_lt(x: str, y: str, alphabet: Alphabet) -> bool:
    """``x <_lex y`` relative to ``alphabet``'s symbol order."""
    return lex_key(x, alphabet) < lex_key(y, alphabet)


def prefixes(x: str) -> Iterator[str]:
    """All prefixes of ``x``, shortest first (including ``\"\"`` and ``x``)."""
    for i in range(len(x) + 1):
        yield x[:i]


def prefix_closure(strings: Iterable[str]) -> frozenset[str]:
    """``prefix(C)``: the prefix-closure of a set of strings."""
    closed: set[str] = set()
    for s in strings:
        for p in prefixes(s):
            closed.add(p)
    return frozenset(closed)


def down_closure(strings: Iterable[str], alphabet: Alphabet) -> frozenset[str]:
    """The paper's ``down(C)``: all strings no longer than some member of ``C``.

    Exponential in the longest member of ``C``; this is the semantics of the
    RA(S_len) operator the paper calls "very expensive ... unavoidable"
    (Section 6.2).
    """
    max_len = max((len(s) for s in strings), default=-1)
    if max_len < 0:
        return frozenset()
    return frozenset(alphabet.strings_up_to(max_len))


def d_distance(s: str, strings: Iterable[str]) -> int:
    """The paper's ``d(s, C) = |s| - |s ^ C|`` (Section 6.1).

    Measures how far ``s`` sticks out beyond the set ``C``; the safety
    lemmas bound this quantity for outputs of safe queries.
    """
    return len(s) - len(lcp_with_set(s, strings))
