"""Finite, ordered alphabets.

The paper fixes a finite alphabet ``Sigma`` and works over ``Sigma*``.  An
:class:`Alphabet` is an ordered sequence of distinct one-character symbols;
the order matters because the lexicographic order ``<=_lex`` (Section 4 of
the paper) is defined relative to it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import AlphabetError


class Alphabet:
    """A finite ordered alphabet of single-character symbols.

    Parameters
    ----------
    symbols:
        Iterable of distinct one-character strings; iteration order fixes
        the symbol order used by lexicographic comparisons.

    Examples
    --------
    >>> sigma = Alphabet("01")
    >>> sigma.contains_string("0110")
    True
    >>> list(sigma.strings_of_length(2))
    ['00', '01', '10', '11']
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[str]):
        syms = tuple(symbols)
        if not syms:
            raise AlphabetError("an alphabet must contain at least one symbol")
        for s in syms:
            if not isinstance(s, str) or len(s) != 1:
                raise AlphabetError(f"alphabet symbols must be single characters, got {s!r}")
        if len(set(syms)) != len(syms):
            raise AlphabetError(f"alphabet symbols must be distinct, got {syms!r}")
        self._symbols = syms
        self._index = {s: i for i, s in enumerate(syms)}

    @property
    def symbols(self) -> tuple[str, ...]:
        """The symbols in order."""
        return self._symbols

    def index(self, symbol: str) -> int:
        """0-based rank of ``symbol`` in the alphabet order."""
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"symbol {symbol!r} not in alphabet {self}") from None

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(self._symbols)!r})"

    def contains_string(self, word: str) -> bool:
        """True iff every character of ``word`` belongs to this alphabet."""
        return all(c in self._index for c in word)

    def check_string(self, word: str) -> str:
        """Return ``word`` unchanged, raising :class:`AlphabetError` if invalid."""
        if not isinstance(word, str):
            raise AlphabetError(f"expected a string over {self}, got {word!r}")
        if not self.contains_string(word):
            raise AlphabetError(f"string {word!r} is not over alphabet {self}")
        return word

    def strings_of_length(self, n: int) -> Iterator[str]:
        """Yield all strings of length exactly ``n``, in lexicographic order."""
        if n < 0:
            return
        if n == 0:
            yield ""
            return
        for prefix in self.strings_of_length(n - 1):
            for s in self._symbols:
                yield prefix + s

    def strings_up_to(self, n: int) -> Iterator[str]:
        """Yield all strings of length at most ``n``, shortest first.

        This enumerates the set written ``Sigma^{<=n}`` in the paper; it has
        ``(|Sigma|^{n+1} - 1) / (|Sigma| - 1)`` elements, so callers should
        keep ``n`` small (this growth is exactly the paper's point about the
        cost of the ``down`` operator of RA(S_len)).
        """
        for length in range(n + 1):
            yield from self.strings_of_length(length)

    def count_up_to(self, n: int) -> int:
        """Number of strings of length at most ``n`` (size of ``Sigma^{<=n}``)."""
        k = len(self._symbols)
        if k == 1:
            return n + 1
        return (k ** (n + 1) - 1) // (k - 1)


#: The binary alphabet ``{0, 1}`` used throughout the paper's examples.
BINARY = Alphabet("01")

#: A small letter alphabet convenient for examples.
ABC = Alphabet("abc")
