"""String kernel: alphabets and the paper's Section 2 string operations.

This package implements the primitive vocabulary of *String Operations in
Query Languages* (PODS 2001): the alphabet abstraction, the prefix order on
Sigma*, the add-first/add-last/trim functions, relative suffix, longest
common prefix, length comparison, lexicographic order, and the closure
operators (prefix-closure, down-closure) used in the safety analysis.
"""

from repro.strings.alphabet import Alphabet, BINARY, ABC
from repro.strings.ops import (
    add_first,
    add_last,
    d_distance,
    down_closure,
    equal_length,
    extends_by_one,
    is_prefix,
    is_strict_prefix,
    last_symbol_is,
    lcp,
    lcp_with_set,
    lex_key,
    lex_le,
    lex_lt,
    prefix_closure,
    prefixes,
    subtract,
    trim_first,
    trim_trailing,
)

__all__ = [
    "ABC",
    "Alphabet",
    "BINARY",
    "add_first",
    "add_last",
    "d_distance",
    "down_closure",
    "equal_length",
    "extends_by_one",
    "is_prefix",
    "is_strict_prefix",
    "last_symbol_is",
    "lcp",
    "lcp_with_set",
    "lex_key",
    "lex_le",
    "lex_lt",
    "prefix_closure",
    "prefixes",
    "subtract",
    "trim_first",
    "trim_trailing",
]
