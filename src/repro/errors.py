"""Exception hierarchy for the ``repro`` (strqlib) library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish parse errors from semantic ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class AlphabetError(ReproError):
    """A string or symbol does not belong to the expected alphabet."""


class ParseError(ReproError):
    """A textual query, regex, or pattern could not be parsed.

    Attributes
    ----------
    text:
        The input being parsed.
    position:
        0-based offset at which the error was detected (``-1`` if unknown).
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0:
            return f"{base} (at offset {self.position} in {self.text!r})"
        return base


class SignatureError(ReproError):
    """A formula uses a predicate or function outside the structure's signature.

    Raised e.g. when an ``el`` (equal-length) atom appears in a query that is
    declared to be an RC(S) query: the paper's languages are defined by their
    signatures and the library enforces them.
    """


class EvaluationError(ReproError):
    """A query could not be evaluated under the requested semantics."""


class UnsafeQueryError(EvaluationError):
    """A query's output on the given database is infinite.

    The offending (regular) output can still be inspected: evaluation engines
    attach the output automaton where available.
    """


class EvaluationTimeout(EvaluationError):
    """Evaluation exceeded its deadline and was cooperatively cancelled.

    Raised from the checkpoints threaded through both engines and the
    automata hot loops (see :mod:`repro.engine.deadline`) when a
    ``timeout=`` was requested on :meth:`repro.core.query.Query.run` or a
    per-request deadline was set by the query service.  The work done so
    far is discarded; the request is safe to retry (possibly with a larger
    budget).

    Attributes
    ----------
    timeout:
        The requested budget in seconds (``None`` if the deadline was
        constructed from an absolute expiry).
    elapsed:
        Seconds actually spent before the checkpoint fired.
    """

    def __init__(self, message: str, timeout: "float | None" = None,
                 elapsed: "float | None" = None):
        super().__init__(message)
        self.timeout = timeout
        self.elapsed = elapsed


class ServiceError(ReproError):
    """Base class for query-service request failures (repro.service)."""


class QueueFullError(ServiceError):
    """Admission control rejected a request: the bounded queue is full.

    Raised under ``backpressure="reject"``, by non-blocking submissions
    (``submit(..., nowait=True)``), and by the async front end's fair
    scheduler when an item's admission timeout runs out.  The request
    was never enqueued, so it is always safe to retry after backing off.
    """


class ServiceClosedError(ServiceError):
    """The service is draining or shut down and accepts no new requests."""


class QuotaExceededError(ServiceError):
    """A per-client token-bucket quota rejected the request.

    Raised by the async front end (:mod:`repro.service.server`) when a
    client has exhausted its request-rate budget under
    ``backpressure="reject"``.  The request was never admitted, so it is
    always safe to retry after backing off for roughly
    ``retry_after`` seconds.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class RequestCancelledError(ServiceError):
    """The request was cancelled before completion.

    Raised on behalf of requests whose submitter went away — typically a
    streaming client that disconnected mid-answer.  Queued work is
    skipped entirely; in-flight work is cancelled cooperatively through
    its deadline.  Retryable: the query itself was fine, only this
    submission was abandoned.
    """


class ClientReadTimeoutError(ServiceError):
    """A client-side read deadline expired waiting for a response.

    Raised by :class:`repro.service.client.ServiceClient` (and its async
    sibling) when the server accepted the connection but no response line
    arrived within ``read_timeout`` seconds — a hung or wedged server no
    longer blocks the caller forever.  The connection is left in an
    unusable half-read state and is closed; open a fresh client and
    resend (``retryable`` is ``True``: the request may or may not have
    executed, and every protocol op is either read-only or idempotent
    at-least-once from the client's point of view).
    """

    retryable = True
    code = "client_timeout"


class ShardError(ServiceError):
    """A sharded execution could not produce a complete answer.

    Raised by the shard coordinator (:mod:`repro.shard`) when a shard
    worker is unreachable, exits mid-request, misses its per-shard
    deadline, or returns an error — the coordinator never silently
    drops a shard's rows, so any incomplete gather surfaces as this
    error instead of a partial result.

    Attributes
    ----------
    retryable:
        ``True`` (the default) for transport-level failures — the
        coordinator restarts dead workers, so a retry can succeed.
        ``False`` when a shard reported a non-retryable query error
        (the retry would deterministically fail again) or the
        coordinator was asked to run against an unsharded database.
    shard:
        Index of the failing shard (``None`` when not tied to one).
    """

    def __init__(self, message: str, retryable: bool = True,
                 shard: "int | None" = None):
        super().__init__(message)
        self.retryable = retryable
        self.shard = shard


class ArityError(ReproError):
    """A relation was used with the wrong number of arguments."""


class UndecidableError(ReproError):
    """The requested analysis is undecidable for this language.

    Raised e.g. when asking for a state-safety *decision* in RC_concat
    (Corollary 1 of the paper); bounded semi-decision procedures are offered
    instead.
    """
