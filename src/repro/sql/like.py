"""SQL ``LIKE`` patterns.

``LIKE`` patterns use ``%`` (any string), ``_`` (any single symbol) and
literal symbols, with an optional escape character.  Every LIKE language
is **star-free** — which is why ``LIKE`` fits inside RC(S) (Section 4 of
the paper: S-definable subsets of ``Sigma*`` are exactly the star-free
languages).  The test suite verifies star-freeness of compiled patterns
through the Schuetzenberger checker.
"""

from __future__ import annotations

import functools

from repro.automata.dfa import DFA
from repro.automata.kernel import DenseDFA
from repro.automata.regex import (
    AnySymbol,
    Concat,
    Epsilon,
    Literal,
    Regex,
    Star,
)
from repro.errors import ParseError
from repro.logic.dsl import matches
from repro.logic.formulas import Atom
from repro.logic.terms import TermLike
from repro.strings.alphabet import Alphabet

#: Characters that must be escaped when a LIKE pattern is re-rendered as a
#: library regex.
_REGEX_SPECIAL = set("|()[]*+?.\\")


def parse_like(pattern: str, escape: str | None = None) -> Regex:
    """Parse a LIKE pattern into a regex AST.

    ``escape`` is SQL's optional escape character (``LIKE '50\\%' ESCAPE
    '\\'`` matches the literal string ``50%``).
    """
    parts: list[Regex] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape:
            if i + 1 >= len(pattern):
                raise ParseError("dangling escape in LIKE pattern", pattern, i)
            parts.append(Literal(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            parts.append(Star(AnySymbol()))
        elif ch == "_":
            parts.append(AnySymbol())
        else:
            parts.append(Literal(ch))
        i += 1
    if not parts:
        return Epsilon()
    node = parts[0]
    for p in parts[1:]:
        node = Concat(node, p)
    return node


def like_to_regex_text(pattern: str, escape: str | None = None) -> str:
    """Render a LIKE pattern as library regex text (for ``matches`` atoms)."""
    return str(parse_like(pattern, escape))


def compile_like(pattern: str, alphabet: Alphabet, escape: str | None = None) -> DFA:
    """Minimal DFA of a LIKE pattern over ``alphabet``."""
    return parse_like(pattern, escape).to_dfa(alphabet)


@functools.lru_cache(maxsize=256)
def compile_like_dense(
    pattern: str, alphabet: Alphabet, escape: str | None = None
) -> DenseDFA:
    """Minimal dense automaton of a LIKE pattern, cached per pattern.

    The matcher-facing variant: the whole compile chain (Thompson NFA →
    bitmask subset construction → dense Hopcroft) stays in the kernel,
    and repeated predicates — a LIKE filter applied row by row — hit the
    cache instead of recompiling.
    """
    return parse_like(pattern, escape).to_dense_dfa(alphabet)


def like_matches(value: str, pattern: str, alphabet: Alphabet, escape: str | None = None) -> bool:
    """Direct LIKE matching on the cached dense automaton."""
    return compile_like_dense(pattern, alphabet, escape).accepts(value)


def like_atom(term: TermLike, pattern: str, escape: str | None = None) -> Atom:
    """The RC(S) atom expressing ``term LIKE pattern``.

    Because LIKE languages are star-free, the resulting ``matches`` atom is
    accepted by the S signature — the paper's point that LIKE needs no more
    than RC(S).
    """
    return matches(term, like_to_regex_text(pattern, escape))
