"""SQL3 ``SIMILAR TO`` patterns (the standard the paper cites as [21]).

``SIMILAR`` extends LIKE with full regular-expression power: ``|``,
``*``, ``+``, ``?``, grouping, character classes — "essentially grep"
(Section 4).  SIMILAR languages are regular but need not be star-free,
so SIMILAR lives in RC(S_reg)/RC(S_len) but not in RC(S): the library
enforces exactly that through the structures' pattern scopes.

The translation to the library's regex syntax maps ``%`` to ``.*`` and
``_`` to ``.``; everything else is shared syntax.
"""

from __future__ import annotations

import functools

from repro.automata.dfa import DFA
from repro.automata.kernel import DenseDFA
from repro.automata.regex import compile_regex, parse_regex
from repro.errors import ParseError
from repro.logic.dsl import matches
from repro.logic.formulas import Atom
from repro.logic.terms import TermLike
from repro.strings.alphabet import Alphabet


def similar_to_regex_text(pattern: str) -> str:
    """Translate a SIMILAR TO pattern into library regex text."""
    out: list[str] = []
    i = 0
    in_class = False
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\":
            if i + 1 >= len(pattern):
                raise ParseError("dangling escape in SIMILAR pattern", pattern, i)
            out.append("\\" + pattern[i + 1])
            i += 2
            continue
        if in_class:
            out.append(ch)
            if ch == "]":
                in_class = False
            i += 1
            continue
        if ch == "[":
            in_class = True
            out.append(ch)
        elif ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(ch)
        i += 1
    if in_class:
        raise ParseError("unterminated class in SIMILAR pattern", pattern, len(pattern))
    text = "".join(out)
    parse_regex(text)  # validate eagerly for a better error position
    return text


def compile_similar(pattern: str, alphabet: Alphabet) -> DFA:
    """Minimal DFA of a SIMILAR TO pattern."""
    return compile_regex(similar_to_regex_text(pattern), alphabet)


@functools.lru_cache(maxsize=256)
def compile_similar_dense(pattern: str, alphabet: Alphabet) -> DenseDFA:
    """Minimal dense automaton of a SIMILAR TO pattern, cached.

    Matcher-facing twin of :func:`compile_similar`: compiles through the
    kernel (no dict-DFA intermediates) and caches per pattern so
    row-at-a-time predicate evaluation never recompiles.
    """
    return parse_regex(similar_to_regex_text(pattern)).to_dense_dfa(alphabet)


def similar_matches(value: str, pattern: str, alphabet: Alphabet) -> bool:
    """Direct SIMILAR TO matching on the cached dense automaton."""
    return compile_similar_dense(pattern, alphabet).accepts(value)


def similar_atom(term: TermLike, pattern: str) -> Atom:
    """The RC(S_reg) atom expressing ``term SIMILAR TO pattern``."""
    return matches(term, similar_to_regex_text(pattern))
