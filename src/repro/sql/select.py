"""A mini-SQL front end compiled into the string calculi.

The paper's point of departure: SQL mixes string pattern matching and
relational operations in ad-hoc, non-compositional ways, and the calculi
RC(S) <= RC(S_reg) <= RC(S_len) are the principled target model.  This
module makes the correspondence concrete: a small SQL dialect is parsed
and translated into a calculus formula, and the translator reports the
**weakest structure** that supports the query:

* plain comparisons, prefix tests and LIKE -> S;
* SIMILAR TO -> S_reg;
* LENGTH comparisons -> S_len.

Grammar (case-insensitive keywords)::

    query   := SELECT items FROM tables [WHERE cond]
    items   := colref {"," colref}
    tables  := NAME alias {"," NAME alias}
    colref  := alias "." INT            -- 1-based column of a table
    cond    := disj
    disj    := conj {OR conj}
    conj    := atom {AND atom}
    atom    := NOT atom | "(" cond ")"
             | colref LIKE STRING | colref NOT LIKE STRING
             | colref SIMILAR TO STRING
             | colref ("=" | "<>" | "<" | "<=") (colref | STRING)
             | PREFIX "(" colref "," colref ")"
             | LENGTH "(" colref ")" ("=" | "<=" | "<") LENGTH "(" colref ")"

``<`` / ``<=`` on strings are lexicographic (SQL's ORDER-BY comparators).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.database.schema import Schema
from repro.errors import ParseError
from repro.logic.dsl import (
    and_,
    el,
    eq,
    exists_adom,
    len_le,
    len_lt,
    lex_le,
    lex_lt,
    lit,
    not_,
    or_,
    prefix,
    rel,
)
from repro.logic.formulas import Formula
from repro.logic.terms import Var
from repro.sql.like import like_to_regex_text
from repro.sql.similar import similar_to_regex_text
from repro.logic.dsl import matches as matches_atom

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|=|<|\(|\)|,|\.)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "like", "similar",
    "to", "prefix", "length", "escape",
}


@dataclass
class _Tok:
    kind: str
    text: str
    pos: int

    @property
    def lower(self) -> str:
        return self.text.lower()


def _tokenize(text: str) -> list[_Tok]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        if m.lastgroup != "ws":
            tokens.append(_Tok(m.lastgroup or "", m.group(), pos))
        pos = m.end()
    tokens.append(_Tok("eof", "", len(text)))
    return tokens


@dataclass(frozen=True)
class TranslatedQuery:
    """A SELECT query translated to the calculus."""

    formula: Formula
    output_variables: tuple[str, ...]
    structure_name: str  # weakest structure supporting the query


class _SelectParser:
    def __init__(self, text: str, schema: Schema):
        self.text = text
        self.schema = schema
        self.tokens = _tokenize(text)
        self.idx = 0
        self.tables: dict[str, str] = {}  # alias -> relation name
        self.needs: set[str] = set()  # {"reg", "len"}

    # -- plumbing ------------------------------------------------------------

    def peek(self) -> _Tok:
        return self.tokens[self.idx]

    def advance(self) -> _Tok:
        tok = self.tokens[self.idx]
        self.idx += 1
        return tok

    def expect_kw(self, word: str) -> None:
        tok = self.advance()
        if tok.lower != word:
            raise ParseError(f"expected {word.upper()}, found {tok.text!r}", self.text, tok.pos)

    def expect_op(self, op: str) -> None:
        tok = self.advance()
        if tok.text != op:
            raise ParseError(f"expected {op!r}, found {tok.text!r}", self.text, tok.pos)

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.peek().pos)

    # -- grammar ---------------------------------------------------------

    def parse(self) -> TranslatedQuery:
        self.expect_kw("select")
        items = [self._colref()]
        while self.peek().text == ",":
            self.advance()
            items.append(self._colref())
        self.expect_kw("from")
        self._tables()
        condition: Formula | None = None
        if self.peek().lower == "where":
            self.advance()
            condition = self._disj()
        if self.peek().kind != "eof":
            raise self.error(f"trailing input {self.peek().text!r}")
        return self._translate(items, condition)

    def _tables(self) -> None:
        while True:
            name_tok = self.advance()
            if name_tok.kind != "name" or name_tok.lower in _KEYWORDS:
                raise ParseError("expected table name", self.text, name_tok.pos)
            alias_tok = self.advance()
            if alias_tok.kind != "name" or alias_tok.lower in _KEYWORDS:
                raise ParseError("expected table alias", self.text, alias_tok.pos)
            if alias_tok.text in self.tables:
                raise ParseError(f"duplicate alias {alias_tok.text!r}", self.text, alias_tok.pos)
            if name_tok.text not in self.schema:
                raise ParseError(f"unknown table {name_tok.text!r}", self.text, name_tok.pos)
            self.tables[alias_tok.text] = name_tok.text
            if self.peek().text == ",":
                self.advance()
                continue
            return

    def _colref(self) -> tuple[str, int]:
        alias_tok = self.advance()
        if alias_tok.kind != "name":
            raise ParseError("expected column reference", self.text, alias_tok.pos)
        self.expect_op(".")
        col_tok = self.advance()
        if col_tok.kind != "number":
            raise ParseError("expected column number", self.text, col_tok.pos)
        return alias_tok.text, int(col_tok.text)

    def _disj(self) -> Formula:
        parts = [self._conj()]
        while self.peek().lower == "or":
            self.advance()
            parts.append(self._conj())
        return or_(*parts)

    def _conj(self) -> Formula:
        parts = [self._atom()]
        while self.peek().lower == "and":
            self.advance()
            parts.append(self._atom())
        return and_(*parts)

    def _atom(self) -> Formula:
        tok = self.peek()
        if tok.lower == "not":
            self.advance()
            return not_(self._atom())
        if tok.text == "(":
            self.advance()
            inner = self._disj()
            self.expect_op(")")
            return inner
        if tok.lower == "prefix":
            self.advance()
            self.expect_op("(")
            a = self._term()
            self.expect_op(",")
            b = self._term()
            self.expect_op(")")
            return prefix(a, b)
        if tok.lower == "length":
            return self._length_atom()
        left = self._term()
        op_tok = self.advance()
        if op_tok.lower == "like" or (op_tok.lower == "not" and self.peek().lower == "like"):
            negated = op_tok.lower == "not"
            if negated:
                self.advance()  # LIKE
            pattern = self._string()
            escape = None
            if self.peek().lower == "escape":
                self.advance()
                escape = self._string()
                if len(escape) != 1:
                    raise self.error("ESCAPE requires a single character")
            atom = matches_atom(left, like_to_regex_text(pattern, escape))
            return not_(atom) if negated else atom
        if op_tok.lower == "similar":
            self.expect_kw("to")
            pattern = self._string()
            self.needs.add("reg")
            return matches_atom(left, similar_to_regex_text(pattern))
        if op_tok.text in ("=", "<>", "<", "<="):
            right = self._term()
            if op_tok.text == "=":
                return eq(left, right)
            if op_tok.text == "<>":
                return not_(eq(left, right))
            if op_tok.text == "<":
                return lex_lt(left, right)
            return lex_le(left, right)
        raise ParseError(f"unexpected {op_tok.text!r}", self.text, op_tok.pos)

    def _length_atom(self) -> Formula:
        self.expect_kw("length")
        self.expect_op("(")
        a = self._term()
        self.expect_op(")")
        op_tok = self.advance()
        if op_tok.text not in ("=", "<=", "<"):
            raise ParseError("expected =, <= or < after LENGTH()", self.text, op_tok.pos)
        self.expect_kw("length")
        self.expect_op("(")
        b = self._term()
        self.expect_op(")")
        self.needs.add("len")
        if op_tok.text == "=":
            return el(a, b)
        if op_tok.text == "<=":
            return len_le(a, b)
        return len_lt(a, b)

    def _term(self):
        tok = self.peek()
        if tok.kind == "string":
            self.advance()
            return lit(self._unquote(tok.text))
        alias, column = self._colref()
        return Var(self._var(alias, column))

    def _string(self) -> str:
        tok = self.advance()
        if tok.kind != "string":
            raise ParseError("expected string literal", self.text, tok.pos)
        return self._unquote(tok.text)

    @staticmethod
    def _unquote(raw: str) -> str:
        return raw[1:-1].replace("''", "'")

    def _var(self, alias: str, column: int) -> str:
        if alias not in self.tables:
            raise self.error(f"unknown alias {alias!r}")
        table = self.tables[alias]
        arity = self.schema.arity(table)
        if not 1 <= column <= arity:
            raise self.error(f"column {column} out of range for {table} (arity {arity})")
        return f"{alias}_{column}"

    # -- translation -------------------------------------------------------

    def _translate(
        self, items: list[tuple[str, int]], condition: Formula | None
    ) -> TranslatedQuery:
        atoms = []
        all_vars: list[str] = []
        for alias, table in self.tables.items():
            arity = self.schema.arity(table)
            names = [self._var(alias, c) for c in range(1, arity + 1)]
            all_vars.extend(names)
            atoms.append(rel(table, *names))
        body = and_(*atoms) if atoms else None
        if condition is not None:
            body = condition if body is None else body & condition
        assert body is not None
        output = tuple(self._var(alias, c) for alias, c in items)
        for v in sorted(set(all_vars) - set(output), reverse=True):
            body = exists_adom(v, body)
        structure_name = "S"
        if "len" in self.needs:
            structure_name = "S_len"
        elif "reg" in self.needs:
            structure_name = "S_reg"
        return TranslatedQuery(body, output, structure_name)


def translate_select(sql: str, schema: Schema) -> TranslatedQuery:
    """Parse and translate a SELECT statement against ``schema``."""
    return _SelectParser(sql, schema).parse()
