"""SQL front end: LIKE, SIMILAR TO, and a mini-SELECT translator."""

from repro.sql.like import (
    compile_like,
    like_atom,
    like_matches,
    like_to_regex_text,
    parse_like,
)
from repro.sql.select import TranslatedQuery, translate_select
from repro.sql.similar import (
    compile_similar,
    similar_atom,
    similar_matches,
    similar_to_regex_text,
)

__all__ = [
    "TranslatedQuery",
    "compile_like",
    "compile_similar",
    "like_atom",
    "like_matches",
    "like_to_regex_text",
    "parse_like",
    "similar_atom",
    "similar_matches",
    "similar_to_regex_text",
    "translate_select",
]
