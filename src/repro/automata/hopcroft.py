"""Hopcroft's O(n log n) DFA minimization.

An alternative to the simple Moore partition refinement in
:meth:`repro.automata.dfa.DFA.minimize`; asymptotically better on the
large convolution automata the relation engine produces.  Differentially
tested against Moore on random automata; exposed as
:func:`hopcroft_minimize` and switchable engine-wide via
:func:`use_hopcroft`.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.automata.dfa import DFA
from repro.engine.deadline import checkpoint


def hopcroft_minimize(dfa: DFA) -> DFA:
    """Minimal DFA for the same language (canonical, trimmed)."""
    total = dfa.completed().canonical()
    n = total.num_states
    if n == 0:  # pragma: no cover - canonical always has a start state
        return total
    syms = sorted(total.alphabet, key=repr)
    # Inverse transition table: inv[sym][target] = list of sources.
    inv: dict[object, dict[int, list[int]]] = {s: defaultdict(list) for s in syms}
    for q in range(n):
        for s in syms:
            inv[s][total.transitions[q][s]].append(q)

    accepting = set(total.accepting)
    non_accepting = set(range(n)) - accepting
    # Partition as a list of blocks; worklist of (block index, symbol).
    blocks: list[set[int]] = []
    block_of = [0] * n
    for block in (accepting, non_accepting):
        if block:
            index = len(blocks)
            blocks.append(set(block))
            for q in block:
                block_of[q] = index
    worklist: deque[tuple[int, object]] = deque(
        (b, s) for b in range(len(blocks)) for s in syms
    )
    while worklist:
        checkpoint()
        splitter_index, symbol = worklist.popleft()
        splitter = blocks[splitter_index]
        # Predecessors of the splitter under `symbol`.
        preds: set[int] = set()
        for target in splitter:
            preds.update(inv[symbol][target])
        if not preds:
            continue
        # Group predecessors by their current block and split.
        touched: dict[int, set[int]] = defaultdict(set)
        for q in preds:
            touched[block_of[q]].add(q)
        for b_index, inside in touched.items():
            block = blocks[b_index]
            if len(inside) == len(block):
                continue  # no split
            outside = block - inside
            # Keep the larger part in place; the smaller becomes new.
            if len(inside) <= len(outside):
                small, large = inside, outside
            else:
                small, large = outside, inside
            blocks[b_index] = large
            new_index = len(blocks)
            blocks.append(small)
            for q in small:
                block_of[q] = new_index
            for s in syms:
                worklist.append((new_index, s))

    transitions: dict[object, dict[object, object]] = {}
    accepting_blocks = set()
    for b_index, block in enumerate(blocks):
        representative = next(iter(block))
        transitions[b_index] = {
            s: block_of[total.transitions[representative][s]] for s in syms
        }
        if representative in accepting:
            accepting_blocks.add(b_index)
    mini = DFA(
        total.alphabet,
        range(len(blocks)),
        block_of[total.start],
        accepting_blocks,
        transitions,
    )
    return mini.trim().canonical()


#: The Moore implementation, stashed before any switching.
_ORIGINAL_MINIMIZE = DFA.minimize


def use_hopcroft(enabled: bool = True) -> None:
    """Globally switch :meth:`DFA.minimize` to Hopcroft's algorithm.

    Mostly useful for the ablation benchmark; the default Moore
    implementation is kept as default because it is simpler to audit.
    Call with ``False`` to restore Moore.
    """
    if enabled:
        DFA.minimize = lambda self: hopcroft_minimize(self)  # type: ignore[method-assign]
    else:
        DFA.minimize = _ORIGINAL_MINIMIZE  # type: ignore[method-assign]
