"""Boolean operations and equivalence on DFAs, kernel-backed.

The combinators here keep the historical dict-DFA signatures but run on
:mod:`repro.automata.kernel`: products are lazy dense pipelines (only
reachable, non-pruned product states are ever built) and equivalence is
a union-find Hopcroft–Karp merge with **no product construction at
all** — the previous implementation materialized a full symmetric-
difference product just to check its emptiness.  The original eager
construction survives as :func:`repro.automata.legacy.product` for
benchmarks and differential tests.

``_product`` remains importable for callers that want an explicit
acceptance combiner; it maps the combiner onto the kernel's named modes
when possible and falls back to a callable-mode pipeline otherwise.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.automata import kernel
from repro.automata.dfa import DFA
from repro.engine.metrics import METRICS


def _mode_of(keep: Callable[[bool, bool], bool]) -> str:
    """Classify a binary acceptance combiner by its truth table."""
    table = (keep(False, False), keep(False, True), keep(True, False), keep(True, True))
    return {
        (False, False, False, True): "and",
        (False, True, True, True): "or",
        (False, False, True, False): "diff",
        (False, True, True, False): "xor",
    }.get(table, "")


def _product(left: DFA, right: DFA, keep: Callable[[bool, bool], bool]) -> DFA:
    """Lazy product over the union alphabet (kernel-backed).

    ``keep(in_left, in_right)`` decides acceptance of a product state.
    Unlike the legacy eager construction, product states whose every
    component is dead are never built, and for ``and``/``diff``-shaped
    combiners states that can no longer accept are pruned — the result
    recognizes the same language with (possibly) fewer states.
    """
    METRICS.inc("automata.products")
    mode = _mode_of(keep)
    if not mode:
        # Arbitrary combiner: kernel callable mode.  The kernel never
        # materializes all-dead states, matching `keep`'s reachable set.
        mode = lambda flags: keep(flags[0], flags[1])  # noqa: E731
    pipeline = kernel.ProductPipeline(
        [kernel.to_dense(left), kernel.to_dense(right)], mode
    )
    dense = pipeline.materialize()
    METRICS.inc("automata.product_states", dense.num_states)
    return dense.to_dfa()


def intersection(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) & L(right)``."""
    return kernel.product_dfa(left, right, "and")


def union(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) | L(right)``."""
    return kernel.product_dfa(left, right, "or")


def difference(left: DFA, right: DFA) -> DFA:
    """DFA for ``L(left) \\ L(right)``."""
    return kernel.product_dfa(left, right, "diff")


def symmetric_difference_empty(left: DFA, right: DFA) -> bool:
    """True iff the two automata accept exactly the same language.

    Decided by union-find Hopcroft–Karp state merging — near-linear in
    the reachable merged pairs, with cooperative deadline checkpoints —
    instead of building the symmetric-difference product.
    """
    return kernel.equivalent_dfa(left, right)


def equivalent(left: DFA, right: DFA) -> bool:
    """Language equivalence over the union alphabet."""
    return symmetric_difference_empty(left, right)
