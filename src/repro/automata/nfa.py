"""Nondeterministic finite automata with epsilon transitions.

Used as the intermediate form for Thompson construction (regexes) and for
the projection step of convolution automata (which is inherently
nondeterministic); :meth:`NFA.determinize` converts back to :class:`DFA`
by the subset construction.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Sequence
from typing import Optional

from repro.automata.dfa import DFA
from repro.engine.deadline import checkpoint

Symbol = Hashable
State = Hashable


class _Epsilon:
    """Singleton label for epsilon transitions."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EPSILON"


#: The epsilon transition label.
EPSILON = _Epsilon()


class NFA:
    """A nondeterministic finite automaton with epsilon moves.

    Parameters
    ----------
    alphabet:
        Symbols of the language (``EPSILON`` must not be listed).
    states, starts, accepting:
        State sets; multiple start states are allowed.
    transitions:
        Mapping ``state -> {label -> set of states}`` where a label is a
        symbol or ``EPSILON``.
    """

    __slots__ = ("alphabet", "states", "starts", "accepting", "transitions")

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        starts: Iterable[State],
        accepting: Iterable[State],
        transitions: dict[State, dict[Symbol, set[State]]],
    ):
        self.alphabet = frozenset(alphabet)
        if EPSILON in self.alphabet:
            raise ValueError("EPSILON may not be an alphabet symbol")
        self.states = frozenset(states)
        self.starts = frozenset(starts)
        self.accepting = frozenset(accepting)
        self.transitions = {
            q: {sym: set(targets) for sym, targets in delta.items() if targets}
            for q, delta in transitions.items()
        }

    @classmethod
    def from_dfa(cls, dfa: DFA) -> "NFA":
        """View a DFA as an NFA (shared alphabet and state names)."""
        transitions = {
            q: {sym: {t} for sym, t in delta.items()}
            for q, delta in dfa.transitions.items()
        }
        return cls(dfa.alphabet, dfa.states, [dfa.start], dfa.accepting, transitions)

    # ------------------------------------------------------------------ runs

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """All states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        queue = deque(closure)
        while queue:
            q = queue.popleft()
            for t in self.transitions.get(q, {}).get(EPSILON, ()):  # type: ignore[arg-type]
                if t not in closure:
                    closure.add(t)
                    queue.append(t)
        return frozenset(closure)

    def move(self, states: Iterable[State], symbol: Symbol) -> frozenset[State]:
        """One-symbol successor set (without closing under epsilon)."""
        out: set[State] = set()
        for q in states:
            out |= self.transitions.get(q, {}).get(symbol, set())
        return frozenset(out)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        current = self.epsilon_closure(self.starts)
        for sym in word:
            current = self.epsilon_closure(self.move(current, sym))
            if not current:
                return False
        return bool(current & self.accepting)

    # --------------------------------------------------------- constructions

    def determinize(self) -> DFA:
        """Subset construction; the result is canonical and trimmed."""
        start = self.epsilon_closure(self.starts)
        seen: dict[frozenset[State], int] = {start: 0}
        transitions: dict[State, dict[Symbol, State]] = {}
        accepting: set[int] = set()
        queue = deque([start])
        if start & self.accepting:
            accepting.add(0)
        while queue:
            # Subset construction can be exponential; honor deadlines.
            checkpoint()
            subset = queue.popleft()
            sid = seen[subset]
            delta: dict[Symbol, State] = {}
            for sym in self.alphabet:
                target = self.epsilon_closure(self.move(subset, sym))
                if not target:
                    continue
                if target not in seen:
                    seen[target] = len(seen)
                    queue.append(target)
                    if target & self.accepting:
                        accepting.add(seen[target])
                delta[sym] = seen[target]
            if delta:
                transitions[sid] = delta
        return DFA(self.alphabet, range(len(seen)), 0, accepting, transitions)

    def to_min_dfa(self) -> DFA:
        """Determinize then minimize (the usual pipeline).

        Runs on the dense kernel: bitmask subset construction feeding a
        dense Hopcroft pass, converted to a dict DFA only at the end
        (with the dense form attached for downstream kernel ops).
        :meth:`determinize` keeps the legacy dict-of-frozensets path for
        callers that need subset states.
        """
        from repro.automata import kernel

        return kernel.determinize_minimized(self)

    def reversed(self) -> "NFA":
        """NFA for the reversal of the language."""
        transitions: dict[State, dict[Symbol, set[State]]] = {}
        for q, delta in self.transitions.items():
            for sym, targets in delta.items():
                for t in targets:
                    transitions.setdefault(t, {}).setdefault(sym, set()).add(q)
        return NFA(self.alphabet, self.states, self.accepting, self.starts, transitions)

    def __repr__(self) -> str:
        return f"NFA(states={len(self.states)}, alphabet={len(self.alphabet)})"
