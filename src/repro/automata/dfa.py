"""Deterministic finite automata over arbitrary hashable symbols.

Transitions may be *partial*: a missing transition is an implicit dead
state.  This keeps convolution automata (whose alphabets are large column
sets) small.  Operations that require totality (complement, minimization,
the transition monoid) complete the automaton first.

States may be arbitrary hashable objects; :meth:`DFA.canonical` renumbers
them to dense integers, which all construction-heavy code calls eagerly to
keep hashing cheap.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Optional

from repro.engine.deadline import checkpoint

Symbol = Hashable
State = Hashable

#: Reserved state used internally as the dead (sink) state when completing.
_DEAD = ("__dead__",)


class DFA:
    """An immutable deterministic finite automaton.

    Parameters
    ----------
    alphabet:
        Iterable of symbols; the automaton's language is over exactly these.
    states:
        Iterable of states (hashables).
    start:
        The initial state (must be in ``states``).
    accepting:
        Iterable of accepting states.
    transitions:
        Mapping ``state -> {symbol -> state}``; may be partial.
    """

    __slots__ = (
        "alphabet",
        "states",
        "start",
        "accepting",
        "transitions",
        "_finite_cache",
        "_completed_cache",
        "_canonical_cache",
        "_dense_cache",
    )

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        start: State,
        accepting: Iterable[State],
        transitions: dict[State, dict[Symbol, State]],
    ):
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.states: frozenset[State] = frozenset(states)
        self.start: State = start
        self.accepting: frozenset[State] = frozenset(accepting)
        self.transitions: dict[State, dict[Symbol, State]] = {
            q: dict(delta) for q, delta in transitions.items() if delta
        }
        # DFAs are immutable, so derived forms are memoized invalidation-
        # free: chained complement()/minimize()/product calls would
        # otherwise rebuild the same completed/canonical/dense automaton
        # once per call (each a fresh O(|Q|·|Σ|) copy).
        self._finite_cache: Optional[bool] = None
        self._completed_cache: Optional["DFA"] = None
        self._canonical_cache: Optional["DFA"] = None
        self._dense_cache = None  # repro.automata.kernel.DenseDFA
        if start not in self.states:
            raise ValueError(f"start state {start!r} not among states")
        if not self.accepting <= self.states:
            raise ValueError("accepting states must be a subset of states")

    # ------------------------------------------------------------------ core

    def step(self, state: State, symbol: Symbol) -> Optional[State]:
        """Target of the transition, or ``None`` (implicit dead state)."""
        return self.transitions.get(state, {}).get(symbol)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Run the automaton on ``word`` (any sequence of symbols)."""
        q: Optional[State] = self.start
        for sym in word:
            q = self.step(q, sym)
            if q is None:
                return False
        return q in self.accepting

    @property
    def num_states(self) -> int:
        return len(self.states)

    def __repr__(self) -> str:
        return (
            f"DFA(states={self.num_states}, alphabet={len(self.alphabet)}, "
            f"accepting={len(self.accepting)})"
        )

    # ------------------------------------------------------- transformations

    def canonical(self) -> "DFA":
        """Renumber states to ``0..n-1`` in BFS order from the start state.

        Unreachable states are dropped.  Two canonicalized, minimized DFAs
        over the same alphabet accept the same language iff they are
        structurally identical.  The result is memoized (DFAs are
        immutable) and is its own canonical form.
        """
        if self._canonical_cache is not None:
            return self._canonical_cache
        order: dict[State, int] = {self.start: 0}
        queue = deque([self.start])
        sym_order = sorted(self.alphabet, key=repr)
        while queue:
            q = queue.popleft()
            delta = self.transitions.get(q, {})
            for sym in sym_order:
                target = delta.get(sym)
                if target is not None and target not in order:
                    order[target] = len(order)
                    queue.append(target)
        transitions = {
            order[q]: {sym: order[t] for sym, t in delta.items() if t in order}
            for q, delta in self.transitions.items()
            if q in order
        }
        accepting = [order[q] for q in self.accepting if q in order]
        result = DFA(self.alphabet, range(len(order)), 0, accepting, transitions)
        result._canonical_cache = result
        self._canonical_cache = result
        return result

    def completed(self) -> "DFA":
        """Return an equivalent DFA with a total transition function.

        Memoized: chained boolean operations complete the same automaton
        repeatedly, and each completion is a full table copy.
        """
        if self._completed_cache is not None:
            return self._completed_cache
        if self._is_complete():
            self._completed_cache = self
            return self
        states = set(self.states) | {_DEAD}
        transitions: dict[State, dict[Symbol, State]] = {}
        for q in states:
            delta = dict(self.transitions.get(q, {}))
            for sym in self.alphabet:
                delta.setdefault(sym, _DEAD)
            transitions[q] = delta
        result = DFA(self.alphabet, states, self.start, self.accepting, transitions)
        result._completed_cache = result
        self._completed_cache = result
        return result

    def _is_complete(self) -> bool:
        return all(
            len(self.transitions.get(q, {})) == len(self.alphabet) for q in self.states
        )

    def complement(self) -> "DFA":
        """DFA for ``Sigma* \\ L`` (over this automaton's alphabet)."""
        total = self.completed()
        return DFA(
            total.alphabet,
            total.states,
            total.start,
            total.states - total.accepting,
            total.transitions,
        ).trim_unreachable()

    def trim_unreachable(self) -> "DFA":
        """Drop states unreachable from the start state."""
        return self.canonical()

    def trim(self) -> "DFA":
        """Keep only states that are both reachable and co-reachable.

        The resulting (possibly partial) DFA accepts the same language; its
        transition graph contains a cycle iff the language is infinite.
        """
        reachable = self._reachable_states()
        coreachable = self._coreachable_states()
        useful = reachable & coreachable
        if self.start not in useful:
            # Empty language: a single non-accepting state.
            return DFA(self.alphabet, [0], 0, [], {})
        transitions = {
            q: {sym: t for sym, t in delta.items() if t in useful}
            for q, delta in self.transitions.items()
            if q in useful
        }
        return DFA(self.alphabet, useful, self.start, self.accepting & useful, transitions)

    def _reachable_states(self) -> set[State]:
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            q = queue.popleft()
            for t in self.transitions.get(q, {}).values():
                if t not in seen:
                    seen.add(t)
                    queue.append(t)
        return seen

    def _coreachable_states(self) -> set[State]:
        back: dict[State, set[State]] = {}
        for q, delta in self.transitions.items():
            for t in delta.values():
                back.setdefault(t, set()).add(q)
        seen = set(self.accepting)
        queue = deque(self.accepting)
        while queue:
            q = queue.popleft()
            for p in back.get(q, ()):  # predecessors
                if p not in seen:
                    seen.add(p)
                    queue.append(p)
        return seen

    def minimize(self) -> "DFA":
        """Moore partition-refinement minimization (on the completed DFA)."""
        total = self.completed().canonical()
        states = sorted(total.states)  # dense ints after canonical()
        syms = sorted(total.alphabet, key=repr)
        # Initial partition: accepting vs non-accepting.
        block_of = {q: (1 if q in total.accepting else 0) for q in states}
        while True:
            # Each refinement round is O(n * |alphabet|); check the
            # cooperative deadline between rounds.
            checkpoint()
            signature = {
                q: (block_of[q], tuple(block_of[total.transitions[q][s]] for s in syms))
                for q in states
            }
            new_ids: dict[tuple, int] = {}
            new_block_of = {}
            for q in states:
                sig = signature[q]
                if sig not in new_ids:
                    new_ids[sig] = len(new_ids)
                new_block_of[q] = new_ids[sig]
            if len(new_ids) == len(set(block_of.values())):
                block_of = new_block_of
                break
            block_of = new_block_of
        n_blocks = len(set(block_of.values()))
        transitions: dict[State, dict[Symbol, State]] = {b: {} for b in range(n_blocks)}
        accepting = set()
        for q in states:
            b = block_of[q]
            for s in syms:
                transitions[b][s] = block_of[total.transitions[q][s]]
            if q in total.accepting:
                accepting.add(b)
        mini = DFA(total.alphabet, range(n_blocks), block_of[total.start], accepting, transitions)
        return mini.trim().canonical()

    def to_dense(self, table=None):
        """The dense integer-coded form (memoized; see
        :mod:`repro.automata.kernel`).  Automata produced by the kernel
        carry their dense form already, so chained operations convert
        once at the boundary and never re-walk the dict tables."""
        from repro.automata import kernel

        return kernel.to_dense(self, table)

    def map_symbols(self, mapping) -> "DFA":
        """Relabel symbols through ``mapping`` (must be injective on alphabet)."""
        new_alpha = {mapping(s) for s in self.alphabet}
        if len(new_alpha) != len(self.alphabet):
            raise ValueError("symbol mapping must be injective")
        transitions = {
            q: {mapping(sym): t for sym, t in delta.items()}
            for q, delta in self.transitions.items()
        }
        return DFA(new_alpha, self.states, self.start, self.accepting, transitions)

    # --------------------------------------------------------- language info

    def is_empty(self) -> bool:
        """True iff the accepted language is empty."""
        return not self.trim().accepting

    def is_finite_language(self) -> bool:
        """True iff the accepted language is finite.

        Finite iff the trimmed automaton (reachable and co-reachable states
        only) has an acyclic transition graph.
        """
        if self._finite_cache is None:
            self._finite_cache = not _has_cycle(self.trim())
        return self._finite_cache

    def count_words(self) -> int:
        """Number of accepted words; raises ``ValueError`` if infinite."""
        trimmed = self.trim()
        if _has_cycle(trimmed):
            raise ValueError("language is infinite")
        order = _topological_order(trimmed)
        paths: dict[State, int] = {q: 0 for q in trimmed.states}
        paths[trimmed.start] = 1
        for q in order:
            for t in trimmed.transitions.get(q, {}).values():
                paths[t] += paths[q]
        return sum(paths[q] for q in trimmed.accepting)

    def count_words_of_length(self, n: int) -> int:
        """Number of accepted words of length exactly ``n``."""
        counts = {self.start: 1}
        for _ in range(n):
            nxt: dict[State, int] = {}
            for q, c in counts.items():
                for t in self.transitions.get(q, {}).values():
                    nxt[t] = nxt.get(t, 0) + c
            counts = nxt
        return sum(c for q, c in counts.items() if q in self.accepting)

    def iter_words(self, max_length: Optional[int] = None) -> Iterator[tuple[Symbol, ...]]:
        """Enumerate accepted words, shortest first.

        If ``max_length`` is ``None`` the language must be finite (the
        trimmed automaton bounds word lengths by its state count).
        """
        trimmed = self.trim()
        if max_length is None:
            if _has_cycle(trimmed):
                raise ValueError("language is infinite; pass max_length")
            max_length = trimmed.num_states  # longest simple path bound
        sym_order = sorted(trimmed.alphabet, key=repr)
        frontier: list[tuple[State, tuple[Symbol, ...]]] = [(trimmed.start, ())]
        for length in range(max_length + 1):
            for q, word in frontier:
                if q in trimmed.accepting:
                    yield word
            if length == max_length:
                break
            nxt = []
            for q, word in frontier:
                delta = trimmed.transitions.get(q, {})
                for sym in sym_order:
                    t = delta.get(sym)
                    if t is not None:
                        nxt.append((t, word + (sym,)))
            frontier = nxt

    def iter_strings(self, max_length: Optional[int] = None) -> Iterator[str]:
        """Like :meth:`iter_words` but joins character symbols into strings."""
        for word in self.iter_words(max_length):
            yield "".join(word)

    def shortest_word(self) -> Optional[tuple[Symbol, ...]]:
        """A shortest accepted word, or ``None`` if the language is empty."""
        for word in self.iter_words(max_length=self.num_states + 1):
            return word
        return None

    def language_up_to(self, n: int) -> set[str]:
        """All accepted strings of length at most ``n`` (character alphabets)."""
        return set(self.iter_strings(max_length=n))


def _has_cycle(dfa: DFA) -> bool:
    """Cycle detection (iterative DFS with colors) on a DFA's state graph."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {q: WHITE for q in dfa.states}
    for root in dfa.states:
        if color[root] != WHITE:
            continue
        stack: list[tuple[State, Iterator[State]]] = [
            (root, iter(set(dfa.transitions.get(root, {}).values())))
        ]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for t in it:
                if color[t] == GRAY:
                    return True
                if color[t] == WHITE:
                    color[t] = GRAY
                    stack.append((t, iter(set(dfa.transitions.get(t, {}).values()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def _topological_order(dfa: DFA) -> list[State]:
    """Topological order of an acyclic DFA's state graph.

    In-degrees count *transitions* (multi-edges included), matching the
    per-transition decrements below.
    """
    indeg: dict[State, int] = {q: 0 for q in dfa.states}
    for q in dfa.states:
        for t in dfa.transitions.get(q, {}).values():
            indeg[t] += 1
    queue = deque(q for q in dfa.states if indeg[q] == 0)
    order = []
    while queue:
        q = queue.popleft()
        order.append(q)
        for t in dfa.transitions.get(q, {}).values():
            indeg[t] -= 1
            if indeg[t] == 0:
                queue.append(t)
    if len(order) != len(dfa.states):
        raise ValueError("graph has a cycle")
    return order
