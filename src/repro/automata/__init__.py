"""Finite-automata substrate.

Deterministic and nondeterministic finite automata over arbitrary hashable
symbol alphabets (plain characters for ordinary languages, *column tuples*
for the convolution automata of :mod:`repro.automatic`), regular-expression
compilation, and the language analyses the paper relies on:

* emptiness / finiteness / counting / enumeration of languages (used by the
  safety engine: a query is safe on ``D`` iff its output language is finite);
* Schuetzenberger's aperiodicity test for **star-freeness** (Section 4 of the
  paper: subsets of ``Sigma*`` definable over S are exactly the star-free
  languages, and over S_len / S_reg exactly the regular languages).

The hot paths (products, minimization, subset construction, equivalence)
run on the dense integer-coded kernel in :mod:`repro.automata.kernel`;
the dict-of-dicts :class:`DFA` remains the building/interchange format,
converted at the boundaries via ``DFA.to_dense()`` /
``DenseDFA.to_dfa()``.
"""

from repro.automata.dfa import DFA
from repro.automata.kernel import (
    DenseDFA,
    ProductPipeline,
    SymbolTable,
    to_dense,
)
from repro.automata.nfa import NFA, EPSILON
from repro.automata.ops import (
    difference,
    equivalent,
    intersection,
    symmetric_difference_empty,
    union,
)
from repro.automata.builders import (
    contains_factor_dfa,
    dfa_all_strings,
    dfa_empty_language,
    dfa_from_finite_language,
    dfa_length_at_most,
    dfa_length_exactly,
    dfa_single_word,
    ends_with_dfa,
    starts_with_dfa,
)
from repro.automata.regex import Regex, compile_regex, parse_regex
from repro.automata.aperiodic import is_aperiodic, is_star_free, transition_monoid

__all__ = [
    "DFA",
    "DenseDFA",
    "EPSILON",
    "NFA",
    "ProductPipeline",
    "Regex",
    "SymbolTable",
    "compile_regex",
    "contains_factor_dfa",
    "dfa_all_strings",
    "dfa_empty_language",
    "dfa_from_finite_language",
    "dfa_length_at_most",
    "dfa_length_exactly",
    "dfa_single_word",
    "difference",
    "ends_with_dfa",
    "equivalent",
    "intersection",
    "is_aperiodic",
    "is_star_free",
    "parse_regex",
    "starts_with_dfa",
    "symmetric_difference_empty",
    "to_dense",
    "transition_monoid",
    "union",
]
