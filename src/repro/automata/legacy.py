"""The legacy dict-of-dicts product construction, kept as a reference.

:mod:`repro.automata.ops` used to build every boolean combination with
this eager pairwise product over hashable ``(left, right)`` state tuples.
The hot paths now run on :mod:`repro.automata.kernel`; this module keeps
the original construction importable for two reasons:

* ``benchmarks/bench_kernel.py`` measures the kernel *against* it — the
  speedup ratio is the machine-portable number the regression gate
  tracks;
* the differential test suites (``tests/test_kernel.py``) use it as the
  independent oracle the kernel must agree with.

Do not route production code through this module.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.automata.dfa import DFA
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS


def product(left: DFA, right: DFA, keep: Callable[[bool, bool], bool]) -> DFA:
    """Eager product construction over the union alphabet.

    ``keep(in_left, in_right)`` decides acceptance of a product state.
    Missing transitions are treated as moves to an (implicit) rejecting
    dead state, which the construction materializes as ``None`` components.
    """
    alphabet = left.alphabet | right.alphabet
    lt = left.completed()
    rt = right.completed()
    # Completed automata may still lack symbols absent from their own
    # alphabet; treat those as dead.
    start = (lt.start, rt.start)
    seen = {start: 0}
    transitions: dict[int, dict[object, int]] = {}
    accepting: set[int] = set()
    queue = deque([start])

    def is_acc(pair) -> bool:
        lq, rq = pair
        return keep(lq in lt.accepting, rq in rt.accepting)

    if is_acc(start):
        accepting.add(0)
    while queue:
        # Products are the engine's combinatorial blowup point; check the
        # cooperative deadline once per state expanded so a request with a
        # tight budget cannot disappear into an exponential construction.
        checkpoint()
        pair = queue.popleft()
        sid = seen[pair]
        lq, rq = pair
        delta: dict[object, int] = {}
        for sym in alphabet:
            ltarget = lt.step(lq, sym) if lq is not None else None
            rtarget = rt.step(rq, sym) if rq is not None else None
            target = (ltarget, rtarget)
            if ltarget is None and rtarget is None:
                continue
            if target not in seen:
                seen[target] = len(seen)
                queue.append(target)
                if is_acc(target):
                    accepting.add(seen[target])
            delta[sym] = seen[target]
        if delta:
            transitions[sid] = delta
    METRICS.inc("automata.products")
    METRICS.inc("automata.product_states", len(seen))
    return DFA(alphabet, range(len(seen)), 0, accepting, transitions)
