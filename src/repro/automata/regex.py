"""Regular expressions: AST, parser, and Thompson compilation to automata.

Supported syntax (POSIX-flavoured, over a given :class:`Alphabet`):

``a``          a literal symbol
``.``          any single alphabet symbol
``[abc]``      symbol class; ``[^abc]`` negated class
``(r)``        grouping
``rs``         concatenation
``r|s``        alternation
``r*``         Kleene star
``r+``         one or more
``r?``         optional
``\\x``        escaped literal (use for ``| ( ) [ ] * + ? . \\``)

The empty regex denotes the empty *string* (epsilon), not the empty
language.  ``compile_regex`` produces a minimal DFA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA
from repro.errors import ParseError
from repro.strings.alphabet import Alphabet

_SPECIAL = set("|()[]*+?.\\")


class Regex:
    """Base class of regex AST nodes; use the parser to build instances."""

    def to_nfa(self, alphabet: Alphabet) -> NFA:
        """Thompson construction."""
        builder = _ThompsonBuilder(alphabet)
        start, accept = builder.build(self)
        return NFA(
            alphabet.symbols,
            range(builder.count),
            [start],
            [accept],
            builder.transitions,
        )

    def to_dfa(self, alphabet: Alphabet) -> DFA:
        """Minimal DFA for this regex over ``alphabet``."""
        return self.to_nfa(alphabet).to_min_dfa()

    def to_dense_dfa(self, alphabet: Alphabet):
        """Minimal :class:`~repro.automata.kernel.DenseDFA` for this regex.

        Stays in the dense kernel end to end (bitmask subset
        construction + dense Hopcroft); use this when the caller only
        needs to *run* the automaton, e.g. the SQL pattern matchers.
        """
        from repro.automata import kernel

        return kernel.determinize_minimized_dense(self.to_nfa(alphabet))


@dataclass(frozen=True)
class Epsilon(Regex):
    """Matches only the empty string."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Literal(Regex):
    """Matches a single fixed symbol."""

    symbol: str

    def __str__(self) -> str:
        return "\\" + self.symbol if self.symbol in _SPECIAL else self.symbol


@dataclass(frozen=True)
class AnySymbol(Regex):
    """Matches any single alphabet symbol (the ``.`` wildcard)."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class SymbolClass(Regex):
    """Matches one symbol from ``symbols`` (or its complement if negated)."""

    symbols: frozenset[str]
    negated: bool = False

    def __str__(self) -> str:
        inner = "".join(sorted(self.symbols))
        return f"[^{inner}]" if self.negated else f"[{inner}]"


@dataclass(frozen=True)
class Concat(Regex):
    left: Regex
    right: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.left)}{_wrap(self.right)}"


@dataclass(frozen=True)
class Union(Regex):
    left: Regex
    right: Regex

    def __str__(self) -> str:
        return f"{self.left}|{self.right}"


@dataclass(frozen=True)
class Star(Regex):
    inner: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


@dataclass(frozen=True)
class Plus(Regex):
    inner: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


@dataclass(frozen=True)
class Optional_(Regex):
    inner: Regex

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}?"


def _wrap(node: Regex) -> str:
    if isinstance(node, (Union, Concat)):
        return f"({node})"
    return str(node)


class _ThompsonBuilder:
    """Allocates NFA fragments for each AST node."""

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet
        self.count = 0
        self.transitions: dict[int, dict[object, set[int]]] = {}

    def _new_state(self) -> int:
        state = self.count
        self.count += 1
        return state

    def _add(self, src: int, label: object, dst: int) -> None:
        self.transitions.setdefault(src, {}).setdefault(label, set()).add(dst)

    def build(self, node: Regex) -> tuple[int, int]:
        if isinstance(node, Epsilon):
            s, t = self._new_state(), self._new_state()
            self._add(s, EPSILON, t)
            return s, t
        if isinstance(node, Literal):
            if node.symbol not in self.alphabet:
                # A literal outside the alphabet matches nothing.
                return self._new_state(), self._new_state()
            s, t = self._new_state(), self._new_state()
            self._add(s, node.symbol, t)
            return s, t
        if isinstance(node, AnySymbol):
            s, t = self._new_state(), self._new_state()
            for a in self.alphabet:
                self._add(s, a, t)
            return s, t
        if isinstance(node, SymbolClass):
            s, t = self._new_state(), self._new_state()
            if node.negated:
                symbols = [a for a in self.alphabet if a not in node.symbols]
            else:
                symbols = [a for a in node.symbols if a in self.alphabet]
            for a in symbols:
                self._add(s, a, t)
            return s, t
        if isinstance(node, Concat):
            ls, lt = self.build(node.left)
            rs, rt = self.build(node.right)
            self._add(lt, EPSILON, rs)
            return ls, rt
        if isinstance(node, Union):
            ls, lt = self.build(node.left)
            rs, rt = self.build(node.right)
            s, t = self._new_state(), self._new_state()
            self._add(s, EPSILON, ls)
            self._add(s, EPSILON, rs)
            self._add(lt, EPSILON, t)
            self._add(rt, EPSILON, t)
            return s, t
        if isinstance(node, Star):
            inner_s, inner_t = self.build(node.inner)
            s, t = self._new_state(), self._new_state()
            self._add(s, EPSILON, inner_s)
            self._add(s, EPSILON, t)
            self._add(inner_t, EPSILON, inner_s)
            self._add(inner_t, EPSILON, t)
            return s, t
        if isinstance(node, Plus):
            return self.build(Concat(node.inner, Star(node.inner)))
        if isinstance(node, Optional_):
            return self.build(Union(node.inner, Epsilon()))
        raise TypeError(f"unknown regex node {node!r}")


class _RegexParser:
    """Recursive-descent parser for the syntax documented in the module."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> Regex:
        node = self._union()
        if self.pos != len(self.text):
            raise ParseError("trailing input in regex", self.text, self.pos)
        return node

    def _peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _union(self) -> Regex:
        node = self._concat()
        while self._peek() == "|":
            self.pos += 1
            node = Union(node, self._concat())
        return node

    def _concat(self) -> Regex:
        parts: list[Regex] = []
        while self._peek() not in ("", "|", ")"):
            parts.append(self._postfix())
        if not parts:
            return Epsilon()
        node = parts[0]
        for p in parts[1:]:
            node = Concat(node, p)
        return node

    def _postfix(self) -> Regex:
        node = self._atom()
        while True:
            c = self._peek()
            if c == "*":
                node = Star(node)
            elif c == "+":
                node = Plus(node)
            elif c == "?":
                node = Optional_(node)
            else:
                return node
            self.pos += 1

    def _atom(self) -> Regex:
        c = self._peek()
        if c == "(":
            self.pos += 1
            node = self._union()
            if self._peek() != ")":
                raise ParseError("expected ')'", self.text, self.pos)
            self.pos += 1
            return node
        if c == "[":
            return self._symbol_class()
        if c == ".":
            self.pos += 1
            return AnySymbol()
        if c == "\\":
            self.pos += 1
            if self.pos >= len(self.text):
                raise ParseError("dangling escape", self.text, self.pos)
            sym = self.text[self.pos]
            self.pos += 1
            return Literal(sym)
        if c in ("", "|", ")", "*", "+", "?", "]"):
            raise ParseError(f"unexpected {c!r}", self.text, self.pos)
        self.pos += 1
        return Literal(c)

    def _symbol_class(self) -> Regex:
        assert self._peek() == "["
        self.pos += 1
        negated = False
        if self._peek() == "^":
            negated = True
            self.pos += 1
        symbols: set[str] = set()
        while self._peek() not in ("]", ""):
            c = self._peek()
            if c == "\\":
                self.pos += 1
                if self.pos >= len(self.text):
                    raise ParseError("dangling escape in class", self.text, self.pos)
                c = self.text[self.pos]
            self.pos += 1
            symbols.add(c)
        if self._peek() != "]":
            raise ParseError("unterminated symbol class", self.text, self.pos)
        self.pos += 1
        if not symbols and not negated:
            raise ParseError("empty symbol class", self.text, self.pos)
        return SymbolClass(frozenset(symbols), negated)


def parse_regex(text: str) -> Regex:
    """Parse ``text`` into a :class:`Regex` AST."""
    return _RegexParser(text).parse()


def compile_regex(text: str, alphabet: Alphabet) -> DFA:
    """Parse and compile ``text`` to a minimal DFA over ``alphabet``."""
    return parse_regex(text).to_dfa(alphabet)
